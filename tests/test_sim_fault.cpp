// FaultyTransport: deterministic unit behavior against a mock inner
// SocketOps, then end-to-end fault campaigns over the real epoll loop —
// split reads, byte-at-a-time transfer, short writes, EAGAIN storms,
// mid-frame resets, and accept failures. The protocol contract (every
// admitted request answered, FIFO order, byte-identical replies) must
// hold under every recoverable fault mix.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/server.hpp"
#include "serve/tcp.hpp"
#include "serve_tcp_testlib.hpp"
#include "sim/fault.hpp"

namespace {

using namespace archline::serve;
using archline::sim::FaultCounters;
using archline::sim::FaultScript;
using archline::sim::FaultyTransport;
using archline::sim::ShardedFaultyTransport;
using serve_tcp_testlib::TcpTransport;
using serve_tcp_testlib::connect_to;
using serve_tcp_testlib::read_lines;
using serve_tcp_testlib::send_all;
using serve_tcp_testlib::wait_for_eof;

const char* kPredict =
    R"({"type":"predict","platform":"GTX Titan","flops":1e9,"intensity":4})";

ServerOptions small_options() {
  ServerOptions o;
  o.threads = 2;
  o.queue_capacity = 64;
  o.cache_capacity = 128;
  o.cache_shards = 4;
  return o;
}

// ---- Unit: deterministic decisions over a mock inner ----------------------

/// Inner SocketOps that always succeeds and records the lengths it was
/// asked to move — what the fault layer's cuts look like from below.
class RecordingOps final : public SocketOps {
 public:
  int accept(int) noexcept override { return 99; }
  ssize_t recv(int, char* buf, std::size_t len) noexcept override {
    recv_lens.push_back(len);
    std::memset(buf, 'x', len);
    return static_cast<ssize_t>(len);
  }
  ssize_t send(int, const char*, std::size_t len) noexcept override {
    send_lens.push_back(len);
    return static_cast<ssize_t>(len);
  }
  std::vector<std::size_t> recv_lens;
  std::vector<std::size_t> send_lens;
};

TEST(SimFault, DefaultScriptIsTransparent) {
  RecordingOps inner;
  FaultyTransport faulty(FaultScript{}, inner);
  char buf[256];
  EXPECT_EQ(faulty.accept(5), 99);
  EXPECT_EQ(faulty.recv(5, buf, sizeof buf),
            static_cast<ssize_t>(sizeof buf));
  EXPECT_EQ(faulty.send(5, buf, 100), 100);
  EXPECT_EQ(inner.recv_lens, (std::vector<std::size_t>{256}));
  EXPECT_EQ(inner.send_lens, (std::vector<std::size_t>{100}));
  EXPECT_EQ(faulty.counters().injected(), 0u);
}

TEST(SimFault, SameSeedSameDecisions) {
  // Two transports with identical scripts must cut/fail identically
  // call for call — the property every "repro from seed" claim rests on.
  FaultScript script;
  script.seed = 42;
  script.split_read = 0.5;
  script.short_write = 0.5;
  script.eagain = 0.2;
  script.reset = 0.05;
  script.accept_fail = 0.3;
  for (int round = 0; round < 2; ++round) {
    RecordingOps inner_a, inner_b;
    FaultyTransport a(script, inner_a);
    FaultyTransport b(script, inner_b);
    char buf[512];
    std::vector<long> results_a, results_b;
    for (int i = 0; i < 200; ++i) {
      results_a.push_back(a.recv(3, buf, sizeof buf));
      results_a.push_back(a.send(3, buf, 300));
      results_a.push_back(a.accept(3));
      results_b.push_back(b.recv(3, buf, sizeof buf));
      results_b.push_back(b.send(3, buf, 300));
      results_b.push_back(b.accept(3));
    }
    EXPECT_EQ(results_a, results_b);
    EXPECT_EQ(inner_a.recv_lens, inner_b.recv_lens);
    EXPECT_EQ(inner_a.send_lens, inner_b.send_lens);
    EXPECT_EQ(a.counters().injected(), b.counters().injected());
    EXPECT_GT(a.counters().injected(), 0u);
  }
}

TEST(SimFault, SplitReadsNeverReturnZero) {
  // A zero-length recv means EOF to the loop; the fault layer must
  // never fabricate one, no matter how aggressive the script.
  RecordingOps inner;
  FaultScript script;
  script.seed = 7;
  script.split_read = 1.0;
  script.short_write = 1.0;
  FaultyTransport faulty(script, inner);
  char buf[64];
  for (int i = 0; i < 500; ++i) {
    EXPECT_GT(faulty.recv(3, buf, sizeof buf), 0);
    EXPECT_GT(faulty.send(3, buf, sizeof buf), 0);
    // Length-1 ops cannot be cut further, only passed through.
    EXPECT_EQ(faulty.recv(3, buf, 1), 1);
  }
  for (const std::size_t len : inner.recv_lens) EXPECT_GE(len, 1u);
  for (const std::size_t len : inner.send_lens) EXPECT_GE(len, 1u);
}

TEST(SimFault, MaxChunkCapsEveryTransfer) {
  RecordingOps inner;
  FaultScript script;
  script.max_chunk = 3;
  FaultyTransport faulty(script, inner);
  char buf[1024];
  EXPECT_EQ(faulty.recv(3, buf, sizeof buf), 3);
  EXPECT_EQ(faulty.send(3, buf, 500), 3);
  EXPECT_EQ(faulty.recv(3, buf, 2), 2);  // below the cap: untouched
}

TEST(SimFault, InjectedErrorsSetErrno) {
  RecordingOps inner;
  FaultScript script;
  script.seed = 3;
  script.eagain = 1.0;
  FaultyTransport eagain(script, inner);
  char buf[8];
  errno = 0;
  EXPECT_EQ(eagain.recv(3, buf, sizeof buf), -1);
  EXPECT_EQ(errno, EAGAIN);

  script.eagain = 0.0;
  script.reset = 1.0;
  FaultyTransport reset(script, inner);
  errno = 0;
  EXPECT_EQ(reset.send(3, buf, sizeof buf), -1);
  EXPECT_EQ(errno, ECONNRESET);

  script.reset = 0.0;
  script.accept_fail = 1.0;
  FaultyTransport nofd(script, inner);
  errno = 0;
  EXPECT_EQ(nofd.accept(3), -1);
  EXPECT_EQ(errno, EMFILE);
  EXPECT_TRUE(inner.recv_lens.empty());  // faults short-circuit the inner
  EXPECT_TRUE(inner.send_lens.empty());
}

// ---- Unit: scatter-gather sends -------------------------------------------

/// Inner SocketOps recording every sendv gather list it receives.
class GatherRecordingOps final : public SocketOps {
 public:
  int accept(int) noexcept override { return 99; }
  ssize_t recv(int, char* buf, std::size_t len) noexcept override {
    std::memset(buf, 'x', len);
    return static_cast<ssize_t>(len);
  }
  ssize_t send(int, const char*, std::size_t len) noexcept override {
    return static_cast<ssize_t>(len);
  }
  ssize_t sendv(int, const struct iovec* iov, int iovcnt) noexcept override {
    std::vector<std::size_t> lens;
    std::size_t total = 0;
    for (int i = 0; i < iovcnt; ++i) {
      lens.push_back(iov[i].iov_len);
      total += iov[i].iov_len;
    }
    calls.push_back(std::move(lens));
    return static_cast<ssize_t>(total);
  }
  std::vector<std::vector<std::size_t>> calls;
};

TEST(SimFault, BaseSendvDefaultRoutesThroughSend) {
  // SocketOps implementations that only override send() (every mock
  // written before writev batching) still work: the base sendv default
  // forwards the first non-empty segment through send(), which is a
  // legal short write the loop already handles.
  RecordingOps inner;
  char a[3], b[5];
  struct iovec iov[3] = {{a, 0}, {a, sizeof a}, {b, sizeof b}};
  EXPECT_EQ(inner.sendv(7, iov, 3), 3);
  EXPECT_EQ(inner.send_lens, (std::vector<std::size_t>{3}));
}

TEST(SimFault, SendvCutsApplyToTheWholeGatherList) {
  // A short-write cut applies to the TOTAL gathered length, and the
  // forwarded list is a byte-exact prefix: whole leading segments, then
  // at most one trimmed segment, never a zero-length one.
  GatherRecordingOps inner;
  FaultScript script;
  script.seed = 11;
  script.short_write = 1.0;
  FaultyTransport faulty(script, inner);
  char a[40], b[1], c[200];
  struct iovec iov[3] = {{a, sizeof a}, {b, sizeof b}, {c, sizeof c}};
  const std::size_t seg[3] = {sizeof a, sizeof b, sizeof c};
  const std::size_t total = sizeof a + sizeof b + sizeof c;
  for (int i = 0; i < 200; ++i) {
    const ssize_t n = faulty.sendv(7, iov, 3);
    ASSERT_GT(n, 0);
    ASSERT_LT(static_cast<std::size_t>(n), total);  // p=1: always cut
    const auto& fwd = inner.calls.back();
    std::size_t fwd_total = 0, at = 0;
    for (std::size_t j = 0; j < fwd.size(); ++j, ++at) {
      ASSERT_GT(fwd[j], 0u);
      // Prefix property: all but the last forwarded segment are whole.
      if (j + 1 < fwd.size()) ASSERT_EQ(fwd[j], seg[at]);
      else ASSERT_LE(fwd[j], seg[at]);
      fwd_total += fwd[j];
    }
    EXPECT_EQ(fwd_total, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(faulty.counters().short_writes.load(), 200u);
}

TEST(SimFault, SendvEmptyGatherListIsANoOp) {
  GatherRecordingOps inner;
  FaultScript script;
  script.seed = 12;
  script.short_write = 1.0;
  FaultyTransport faulty(script, inner);
  char a[1];
  struct iovec iov[2] = {{a, 0}, {a, 0}};
  EXPECT_EQ(faulty.sendv(7, iov, 2), 0);
  EXPECT_TRUE(inner.calls.empty());
}

TEST(SimFault, ShardedTransportGivesEachThreadItsOwnStream) {
  // Each calling thread gets an independent deterministic child; the
  // totals aggregate across all of them.
  GatherRecordingOps inner;
  FaultScript script;
  script.seed = 13;
  script.split_read = 0.5;
  ShardedFaultyTransport sharded(script, inner);
  char buf[256];
  for (int i = 0; i < 50; ++i) (void)sharded.recv(3, buf, sizeof buf);
  std::thread other([&] {
    char local[256];
    for (int i = 0; i < 50; ++i) (void)sharded.recv(3, local, sizeof local);
  });
  other.join();
  EXPECT_EQ(sharded.thread_count(), 2u);
  const auto totals = sharded.totals();
  EXPECT_EQ(totals.recv_calls, 100u);
  EXPECT_GT(totals.split_reads, 0u);
}

// ---- End to end: the epoll loop under fire --------------------------------

/// Runs `count` pipelined predicts through a faulty transport and
/// checks the full protocol contract survived.
void run_pipelined_campaign(FaultyTransport& faulty, int count,
                            ServerOptions options = small_options()) {
  TcpOptions tcp;
  tcp.socket_ops = &faulty;
  tcp.poll_interval_ms = 5;
  TcpTransport transport(options, tcp);
  const int fd = connect_to(transport.port());
  ASSERT_GE(fd, 0);
  std::string block;
  for (int i = 0; i < count; ++i) {
    Json req = Json::object();
    req.set("type", "predict");
    req.set("platform", "GTX Titan");
    req.set("id", i);
    req.set("intensity", 1.0 + i);
    block += req.dump();
    block += '\n';
  }
  ASSERT_TRUE(send_all(fd, block));
  const auto lines = read_lines(fd, static_cast<std::size_t>(count));
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::string& line = lines[static_cast<std::size_t>(i)];
    const Json body = Json::parse(line);
    EXPECT_TRUE(body.bool_or("ok", false)) << line;
    EXPECT_EQ(body.number_or("id", -1), i);  // FIFO order held
  }
  ::close(fd);
}

TEST(SimFault, SplitReadsPreserveFraming) {
  // Reads chopped at arbitrary byte offsets — requests re-assemble
  // across recv calls, including splits inside JSON tokens.
  FaultScript script;
  script.seed = 101;
  script.split_read = 0.9;
  FaultyTransport faulty(script);
  run_pipelined_campaign(faulty, 20);
  EXPECT_GT(faulty.counters().split_reads.load(), 0u);
}

TEST(SimFault, ShortWritesPreserveResponses) {
  // Writes cut short — responses must re-assemble byte-exact on the
  // client through the loop's EPOLLOUT re-arm path.
  FaultScript script;
  script.seed = 202;
  script.short_write = 0.9;
  FaultyTransport faulty(script);
  run_pipelined_campaign(faulty, 20);
  EXPECT_GT(faulty.counters().short_writes.load(), 0u);
}

TEST(SimFault, EagainStormStillMakesProgress) {
  // 60% of reads and writes spuriously fail with EAGAIN; the
  // level-triggered loop must keep retrying until everything flows.
  FaultScript script;
  script.seed = 303;
  script.eagain = 0.6;
  FaultyTransport faulty(script);
  run_pipelined_campaign(faulty, 12);
  EXPECT_GT(faulty.counters().eagains.load(), 0u);
}

TEST(SimFault, ByteAtATimeTransferStillWorks) {
  // The ultimate framing torture: every recv and send moves one byte.
  FaultScript script;
  script.seed = 404;
  script.max_chunk = 1;
  FaultyTransport faulty(script);
  run_pipelined_campaign(faulty, 4);
  EXPECT_GT(faulty.counters().recv_calls.load(), 100u);
}

TEST(SimFault, EverythingAtOnce) {
  // All recoverable faults stacked — the regression net for the
  // connection-lifecycle bug class.
  FaultScript script;
  script.seed = 505;
  script.split_read = 0.5;
  script.short_write = 0.5;
  script.eagain = 0.3;
  FaultyTransport faulty(script);
  run_pipelined_campaign(faulty, 16);
  EXPECT_GT(faulty.counters().injected(), 0u);
}

TEST(SimFault, MidFrameResetClosesConnectionAndCounts) {
  // Every recv/send resets: the first event on the connection kills it.
  // The loop must destroy the connection exactly once (gauge returns to
  // zero) and survive to serve nothing else.
  FaultScript script;
  script.seed = 606;
  script.reset = 1.0;
  FaultyTransport faulty(script);
  TcpOptions tcp;
  tcp.socket_ops = &faulty;
  tcp.poll_interval_ms = 5;
  TcpTransport transport(small_options(), tcp);
  const int fd = connect_to(transport.port());
  ASSERT_GE(fd, 0);
  (void)send_all(fd, std::string(kPredict) + "\n");
  // The server tears the connection down; because its receive buffer
  // still holds the unread request, the close surfaces to the client as
  // an RST, not a clean FIN — either way recv stops, which is all this
  // waits for. The metrics counters below are updated before the
  // server-side close, so they are settled once recv returns.
  (void)wait_for_eof(fd);
  ::close(fd);
  EXPECT_GT(faulty.counters().resets.load(), 0u);
  const auto snap = transport.server().metrics().snapshot();
  EXPECT_EQ(snap.connections_accepted, 1u);
  EXPECT_EQ(snap.connections_open, 0u);
}

TEST(SimFault, AcceptFailuresDelayButNeverLoseConnections) {
  // Half of all accepts fail with EMFILE. The pending connection stays
  // in the listen backlog and the level-triggered listen fd re-fires,
  // so every client is eventually admitted and served.
  FaultScript script;
  script.seed = 707;
  script.accept_fail = 0.5;
  FaultyTransport faulty(script);
  TcpOptions tcp;
  tcp.socket_ops = &faulty;
  tcp.poll_interval_ms = 5;
  TcpTransport transport(small_options(), tcp);
  for (int i = 0; i < 8; ++i) {
    const int fd = connect_to(transport.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(send_all(fd, std::string(kPredict) + "\n"));
    const auto lines = read_lines(fd, 1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_TRUE(Json::parse(lines[0]).bool_or("ok", false));
    ::close(fd);
  }
  const auto snap = transport.server().metrics().snapshot();
  EXPECT_EQ(snap.connections_accepted, 8u);
}

TEST(SimFault, HundredsOfRepliesThroughShortWritesStayLinear) {
  // Regression for the quadratic flush path: with the peer reading
  // slowly and 90% of writes cut short (≤128 bytes each), a pipeline of
  // 400 replies used to erase the front of the outbound buffer on EVERY
  // partial send — O(bytes²) memmove traffic that turned this exact
  // campaign into seconds of copying. The cursor-based buffers make it
  // proportional to bytes moved; the generous wall-clock bound only
  // trips on a quadratic regression.
  FaultScript script;
  script.seed = 808;
  script.short_write = 0.9;
  script.max_chunk = 128;
  FaultyTransport faulty(script);
  ServerOptions options = small_options();
  options.queue_capacity = 1024;  // the whole pipeline fits the lane
  options.cache_capacity = 1024;
  const auto t0 = std::chrono::steady_clock::now();
  run_pipelined_campaign(faulty, 400, options);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GT(faulty.counters().short_writes.load(), 100u);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            30);
}

// ---- End to end: sharded loops under fire ---------------------------------

/// `conns` clients, each pipelining `per_conn` predicts with distinct
/// ids, against a sharded loop behind `ops`. Per-connection FIFO and
/// byte-level protocol correctness must survive whatever `ops` injects.
void run_sharded_campaign(SocketOps& ops, TcpOptions tcp, int conns,
                          int per_conn) {
  tcp.socket_ops = &ops;
  tcp.poll_interval_ms = 5;
  TcpTransport transport(small_options(), tcp);
  std::vector<int> fds;
  for (int c = 0; c < conns; ++c) {
    const int fd = connect_to(transport.port());
    ASSERT_GE(fd, 0);
    std::string block;
    for (int i = 0; i < per_conn; ++i) {
      Json req = Json::object();
      req.set("type", "predict");
      req.set("platform", "GTX Titan");
      req.set("id", c * 1000 + i);
      req.set("intensity", 1.0 + i);
      block += req.dump();
      block += '\n';
    }
    ASSERT_TRUE(send_all(fd, block));
    fds.push_back(fd);
  }
  for (int c = 0; c < conns; ++c) {
    const auto lines =
        read_lines(fds[static_cast<std::size_t>(c)],
                   static_cast<std::size_t>(per_conn));
    ASSERT_EQ(lines.size(), static_cast<std::size_t>(per_conn));
    for (int i = 0; i < per_conn; ++i) {
      const Json body = Json::parse(lines[static_cast<std::size_t>(i)]);
      EXPECT_TRUE(body.bool_or("ok", false)) << lines[static_cast<std::size_t>(i)];
      EXPECT_EQ(body.number_or("id", -1), c * 1000 + i);
    }
    ::close(fds[static_cast<std::size_t>(c)]);
  }
}

TEST(SimFault, ShardedHandoffLoopSurvivesEverythingAtOnce) {
  // Four shards in deterministic handoff mode, eight connections spread
  // round-robin — every shard thread runs its own fault stream and
  // every connection still gets its replies back in order.
  FaultScript script;
  script.seed = 909;
  script.split_read = 0.5;
  script.short_write = 0.5;
  script.eagain = 0.3;
  ShardedFaultyTransport faulty(script);
  TcpOptions tcp;
  tcp.shards = 4;
  tcp.use_reuseport = false;
  run_sharded_campaign(faulty, tcp, 8, 8);
  EXPECT_GT(faulty.totals().injected(), 0u);
  // Round-robin placement guarantees every shard served connections, so
  // every shard thread must have drawn from its own stream.
  EXPECT_EQ(faulty.thread_count(), 4u);
}

TEST(SimFault, ShardedReuseportLoopSurvivesEverythingAtOnce) {
  // Same campaign with kernel SO_REUSEPORT placement: the spread is the
  // kernel's choice, so only correctness and fault totals are asserted.
  FaultScript script;
  script.seed = 910;
  script.split_read = 0.5;
  script.short_write = 0.5;
  script.eagain = 0.3;
  ShardedFaultyTransport faulty(script);
  TcpOptions tcp;
  tcp.shards = 4;
  run_sharded_campaign(faulty, tcp, 8, 8);
  EXPECT_GT(faulty.totals().injected(), 0u);
  EXPECT_GE(faulty.thread_count(), 1u);
  EXPECT_LE(faulty.thread_count(), 4u);
}

}  // namespace
