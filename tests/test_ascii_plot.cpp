// Tests for the terminal plot renderer.

#include <gtest/gtest.h>

#include <stdexcept>

#include "report/ascii_plot.hpp"

namespace {

using archline::report::AsciiPlot;
using archline::report::AxisScale;
using archline::report::Series;

TEST(AsciiPlot, TooSmallCanvasThrows) {
  EXPECT_THROW(AsciiPlot("t", 4, 2), std::invalid_argument);
}

TEST(AsciiPlot, MismatchedSeriesThrows) {
  AsciiPlot p("t");
  Series s;
  s.x = {1.0, 2.0};
  s.y = {1.0};
  EXPECT_THROW(p.add_series(s), std::invalid_argument);
}

TEST(AsciiPlot, EmptyPlotSaysNoData) {
  AsciiPlot p("empty");
  EXPECT_NE(p.render().find("no plottable data"), std::string::npos);
}

TEST(AsciiPlot, TitleAppears) {
  AsciiPlot p("My Figure");
  Series s{.name = "a", .glyph = '*', .x = {1.0, 2.0}, .y = {1.0, 2.0}};
  p.add_series(s);
  EXPECT_NE(p.render().find("My Figure"), std::string::npos);
}

TEST(AsciiPlot, GlyphsAppearOnCanvas) {
  AsciiPlot p("t");
  p.add_series(Series{.name = "a", .glyph = '#', .x = {1.0, 4.0},
                      .y = {1.0, 2.0}});
  EXPECT_NE(p.render().find('#'), std::string::npos);
}

TEST(AsciiPlot, LegendListsSeries) {
  AsciiPlot p("t");
  p.add_series(Series{.name = "model", .glyph = '-', .x = {1.0, 2.0},
                      .y = {1.0, 1.0}});
  p.add_series(Series{.name = "measured", .glyph = 'o', .x = {1.0, 2.0},
                      .y = {2.0, 2.0}});
  const std::string out = p.render();
  EXPECT_NE(out.find("[-] model"), std::string::npos);
  EXPECT_NE(out.find("[o] measured"), std::string::npos);
}

TEST(AsciiPlot, LogScaleSkipsNonPositive) {
  AsciiPlot p("t");
  p.set_x_scale(AxisScale::Log2);
  p.add_series(Series{.name = "a", .glyph = '*', .x = {0.0, -1.0, 2.0, 4.0},
                      .y = {1.0, 1.0, 1.0, 2.0}});
  // Renders without throwing; bad points simply skipped.
  EXPECT_NE(p.render().find('*'), std::string::npos);
}

TEST(AsciiPlot, IntensityAxisUsesFractionLabels) {
  AsciiPlot p("t");
  p.set_x_scale(AxisScale::Log2);
  p.add_series(Series{.name = "a", .glyph = '*', .x = {0.125, 512.0},
                      .y = {1.0, 2.0}});
  const std::string out = p.render();
  EXPECT_NE(out.find("1/8"), std::string::npos);
  EXPECT_NE(out.find("512"), std::string::npos);
}

TEST(AsciiPlot, XLabelShown) {
  AsciiPlot p("t");
  p.set_x_label("Intensity (flop:Byte)");
  p.add_series(Series{.name = "a", .glyph = '*', .x = {1.0, 2.0},
                      .y = {1.0, 2.0}});
  EXPECT_NE(p.render().find("Intensity (flop:Byte)"), std::string::npos);
}

TEST(AsciiPlot, ConstantSeriesDoesNotCrash) {
  AsciiPlot p("t");
  p.add_series(Series{.name = "a", .glyph = '*', .x = {1.0, 2.0, 3.0},
                      .y = {5.0, 5.0, 5.0}});
  EXPECT_FALSE(p.render().empty());
}

TEST(AsciiPlot, LogYScaleRenders) {
  AsciiPlot p("t");
  p.set_y_scale(AxisScale::Log2);
  p.add_series(Series{.name = "a", .glyph = '*', .x = {1.0, 2.0, 3.0},
                      .y = {1.0, 1024.0, 32.0}});
  EXPECT_NE(p.render().find('*'), std::string::npos);
}

}  // namespace
