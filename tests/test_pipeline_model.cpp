// Tests for the pipeline-efficiency (tuning landscape) model.

#include <gtest/gtest.h>

#include <stdexcept>

#include "platforms/platform_db.hpp"
#include "sim/pipeline_model.hpp"

namespace {

namespace si = archline::sim;
namespace pl = archline::platforms;
namespace co = archline::core;

si::TuningTraits traits() {
  si::TuningTraits t;
  t.best_flop_fraction = 0.8;
  t.best_mem_fraction = 0.7;
  t.fma_required = true;
  t.max_vector = 8;
  t.loop_overhead = 2.0;
  t.asm_gain = 0.1;
  t.prefetch_gain = 0.25;
  t.max_unroll = 32;
  return t;
}

TEST(PipelineModel, BestConfigAchievesBestFraction) {
  const si::TuningTraits t = traits();
  const si::TuneConfig best = si::best_config(t);
  EXPECT_NEAR(si::flop_efficiency(t, best), 0.8, 1e-12);
  EXPECT_NEAR(si::mem_efficiency(t, best), 0.7, 1e-12);
}

TEST(PipelineModel, NoConfigExceedsBestFraction) {
  const si::TuningTraits t = traits();
  for (int unroll : {1, 2, 4, 8, 16, 32})
    for (int vw : {1, 2, 4, 8})
      for (bool fma : {false, true}) {
        const si::TuneConfig c{.unroll = unroll, .fma = fma,
                               .vector_width = vw, .prefetch = true,
                               .asm_tuned = true};
        EXPECT_LE(si::flop_efficiency(t, c), 0.8 + 1e-12);
        EXPECT_LE(si::mem_efficiency(t, c), 0.7 + 1e-12);
      }
}

TEST(PipelineModel, MissingFmaHalvesFlopRate) {
  const si::TuningTraits t = traits();
  si::TuneConfig c = si::best_config(t);
  const double with = si::flop_efficiency(t, c);
  c.fma = false;
  EXPECT_NEAR(si::flop_efficiency(t, c), with / 2.0, 1e-12);
}

TEST(PipelineModel, FmaOptionalWhenNotRequired) {
  si::TuningTraits t = traits();
  t.fma_required = false;
  si::TuneConfig c = si::best_config(t);
  const double with = si::flop_efficiency(t, c);
  c.fma = false;
  EXPECT_DOUBLE_EQ(si::flop_efficiency(t, c), with);
}

TEST(PipelineModel, UnrollingMonotone) {
  const si::TuningTraits t = traits();
  double prev = 0.0;
  for (int unroll : {1, 2, 4, 8, 16, 32}) {
    si::TuneConfig c = si::best_config(t);
    c.unroll = unroll;
    const double eff = si::flop_efficiency(t, c);
    EXPECT_GT(eff, prev);
    prev = eff;
  }
}

TEST(PipelineModel, VectorWidthScalesFlopSide) {
  const si::TuningTraits t = traits();
  si::TuneConfig narrow = si::best_config(t);
  narrow.vector_width = 1;
  si::TuneConfig wide = si::best_config(t);
  EXPECT_NEAR(si::flop_efficiency(t, wide) / si::flop_efficiency(t, narrow),
              8.0, 1e-9);
}

TEST(PipelineModel, PrefetchMattersForMemoryNotFlops) {
  const si::TuningTraits t = traits();
  si::TuneConfig c = si::best_config(t);
  const double mem_with = si::mem_efficiency(t, c);
  const double flop_with = si::flop_efficiency(t, c);
  c.prefetch = false;
  EXPECT_LT(si::mem_efficiency(t, c), mem_with);
  EXPECT_DOUBLE_EQ(si::flop_efficiency(t, c), flop_with);
}

TEST(PipelineModel, AsmTuningMatters) {
  const si::TuningTraits t = traits();
  si::TuneConfig c = si::best_config(t);
  const double with = si::flop_efficiency(t, c);
  c.asm_tuned = false;
  EXPECT_LT(si::flop_efficiency(t, c), with);
}

TEST(PipelineModel, OutOfRangeConfigThrows) {
  const si::TuningTraits t = traits();
  si::TuneConfig c = si::best_config(t);
  c.unroll = 0;
  EXPECT_THROW((void)si::flop_efficiency(t, c), std::invalid_argument);
  c = si::best_config(t);
  c.vector_width = 100;
  EXPECT_THROW((void)si::flop_efficiency(t, c), std::invalid_argument);
}

TEST(TraitsFor, OptimumMatchesTableISustainedFraction) {
  for (const pl::PlatformSpec& spec : pl::all_platforms()) {
    const si::TuningTraits t =
        si::traits_for(spec, co::Precision::Single);
    EXPECT_NEAR(t.best_flop_fraction, spec.sustained_flop_fraction(), 1e-12)
        << spec.name;
    EXPECT_NEAR(t.best_mem_fraction, spec.sustained_bandwidth_fraction(),
                1e-12)
        << spec.name;
  }
}

TEST(TraitsFor, GpuHasWiderVectorsThanMobileCpu) {
  const si::TuningTraits gpu =
      si::traits_for(pl::platform("GTX Titan"), co::Precision::Single);
  const si::TuningTraits cpu =
      si::traits_for(pl::platform("Arndale CPU"), co::Precision::Single);
  EXPECT_GT(gpu.max_vector, cpu.max_vector);
}

TEST(TraitsFor, DoubleHalvesCpuVectorWidth) {
  const si::TuningTraits sp =
      si::traits_for(pl::platform("Desktop CPU"), co::Precision::Single);
  const si::TuningTraits dp =
      si::traits_for(pl::platform("Desktop CPU"), co::Precision::Double);
  EXPECT_EQ(sp.max_vector, 2 * dp.max_vector);
}

}  // namespace
