// Online-fit layer tests: RLS convergence against the generator and the
// offline solver, forgetting-factor tracking of a mid-stream parameter
// shift, and the OnlineStore / BackgroundResolver concurrency contract
// (run under TSan in CI: concurrent observe / published / resolve must
// be race-free by construction).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <span>
#include <thread>
#include <vector>

#include "fit/model_fit.hpp"
#include "fit/online/resolver.hpp"
#include "fit/online/rls.hpp"
#include "fit/online/snapshot.hpp"
#include "microbench/suite.hpp"
#include "stats/rng.hpp"

namespace {

using namespace archline;
using fit::online::OnlineFitOptions;
using fit::online::OnlineStore;
using fit::online::RlsFilter;
using fit::online::Sample;

/// Ground-truth generator machine for the streams below. Deliberately
/// NOT a Table I platform: convergence is judged against these numbers.
struct Generator {
  double tau_flop = 2e-11;   // 50 Gflop/s
  double tau_mem = 1.5e-10;  // ~6.7 GB/s
  double eps_flop = 5e-11;
  double eps_mem = 4e-10;
  double pi1 = 3.0;
};

/// One measurement tuple at the given problem size and arithmetic
/// intensity [flop/B], with multiplicative lognormal noise on the
/// measured energy. Time is exact: noise on a REGRESSOR (t multiplies
/// pi1 in the linear form) is an errors-in-variables problem that biases
/// any least-squares estimator — a property of the data, not the filter
/// — so the convergence tests keep it out of the regressors.
Sample make_sample(const Generator& g, double flops, double intensity,
                   double noise_sigma, stats::Rng& rng) {
  const double bytes = flops / intensity;
  const double t = std::max(flops * g.tau_flop, bytes * g.tau_mem);
  const double e = flops * g.eps_flop + bytes * g.eps_mem + g.pi1 * t;
  Sample s;
  s.flops = flops;
  s.bytes = bytes;
  s.seconds = t;
  s.joules = e * rng.lognormal(0.0, noise_sigma);
  return s;
}

/// A sweep over problem size AND intensity, straddling the machine
/// balance point. Both axes must vary: constant flops would leave the
/// regressors (W, Q, t) nearly collinear (W constant, t piecewise
/// proportional to Q) and no estimator could separate the constants.
std::vector<Sample> make_stream(const Generator& g, std::size_t n,
                                double noise_sigma, std::uint64_t seed) {
  static constexpr double kIntensities[] = {0.25, 0.5, 1, 2, 4, 8, 16, 32};
  static constexpr double kFlops[] = {5e7, 1e8, 2e8, 4e8};
  stats::Rng rng(seed, 11);
  std::vector<Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(make_sample(g, kFlops[(i / 8) % 4], kIntensities[i % 8],
                              noise_sigma, rng));
  return out;
}

double rel_err(double got, double want) {
  return std::abs(got - want) / std::abs(want);
}

TEST(OnlineFit, RlsConvergesToGeneratorConstants) {
  const Generator g;
  RlsFilter filter(0.998);
  for (const Sample& s : make_stream(g, 2000, 0.01, 42)) filter.observe(s);

  const auto est = filter.estimate();
  EXPECT_EQ(est.count, 2000u);
  EXPECT_GT(est.effective_count, 100.0);
  // Linear energy constants: the exactly-linear part, tight tolerance.
  EXPECT_LT(rel_err(est.eps_flop, g.eps_flop), 0.05) << est.eps_flop;
  EXPECT_LT(rel_err(est.eps_mem, g.eps_mem), 0.05) << est.eps_mem;
  EXPECT_LT(rel_err(est.pi1, g.pi1), 0.05) << est.pi1;
  // Time constants come from decayed sustained peaks over exact times.
  EXPECT_LT(rel_err(est.tau_flop, g.tau_flop), 0.10) << est.tau_flop;
  EXPECT_LT(rel_err(est.tau_mem, g.tau_mem), 0.10) << est.tau_mem;
  // Standard errors must be finite, positive, and small relative to the
  // estimates after 2000 tuples at 1% noise.
  EXPECT_GT(est.se_eps_flop, 0.0);
  EXPECT_LT(est.se_eps_flop, 0.25 * est.eps_flop);
  EXPECT_GT(est.se_pi1, 0.0);
  EXPECT_LT(est.se_pi1, 0.25 * est.pi1);
}

TEST(OnlineFit, RlsMatchesOfflineSolverOnTheSameStream) {
  const Generator g;
  const auto stream = make_stream(g, 512, 0.005, 7);

  RlsFilter filter(1.0);  // no forgetting: closest analog of batch LS
  std::vector<microbench::Observation> obs;
  obs.reserve(stream.size());
  char label[64];
  for (const Sample& s : stream) {
    filter.observe(s);
    microbench::Observation o;
    o.kernel.flops = s.flops;
    o.kernel.bytes = s.bytes;
    // Same labeling scheme as OnlineStore::resolve(): repeats of one
    // workload average, distinct workloads stay distinct kernels.
    std::snprintf(label, sizeof label, "%.9g/%.9g", s.flops, s.bytes);
    o.kernel.label = label;
    o.seconds = s.seconds;
    o.joules = s.joules;
    o.watts = s.joules / s.seconds;
    obs.push_back(o);
  }

  // Uncapped: the generator never drives power anywhere near a cap, so
  // fitting delta_pi would only add an unidentifiable degree of freedom
  // (the serve-layer e2e test covers Capped parity with resolve()).
  fit::FitOptions opt;
  opt.kind = fit::ModelKind::Uncapped;
  opt.nm_evaluations = 8000;
  opt.lm_iterations = 60;
  const fit::FitResult solved = fit::fit_observations(obs, opt);
  const auto est = filter.estimate();

  // Both estimators see the identical stream. RLS lands tight on the
  // linear constants; the solver pins the time side.
  EXPECT_LT(rel_err(est.eps_flop, g.eps_flop), 0.05);
  EXPECT_LT(rel_err(est.eps_mem, g.eps_mem), 0.05);
  EXPECT_LT(rel_err(est.pi1, g.pi1), 0.05);
  EXPECT_LT(rel_err(solved.machine.tau_flop, g.tau_flop), 0.25)
      << solved.machine.tau_flop;
  EXPECT_LT(rel_err(solved.machine.tau_mem, g.tau_mem), 0.25)
      << solved.machine.tau_mem;
  // Raw energy constants can trade off against pi1 inside the nonlinear
  // solver (the paper anchors pi1 with a measured idle hint for exactly
  // this reason), so the two estimators are compared on what they
  // PREDICT: modeled energy for each workload in the sweep must agree.
  for (double intensity : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double w = 1e8;
    const double q = w / intensity;
    const double t = std::max(w * g.tau_flop, q * g.tau_mem);
    const double e_rls = w * est.eps_flop + q * est.eps_mem + est.pi1 * t;
    const double e_solved = w * solved.machine.eps_flop +
                            q * solved.machine.eps_mem +
                            solved.machine.pi1 * t;
    EXPECT_LT(rel_err(e_rls, e_solved), 0.20) << "intensity " << intensity;
  }
}

TEST(OnlineFit, ForgettingTracksMidStreamShift) {
  Generator before;
  Generator after;  // the "hardware drifted": costlier flops, lower idle
  after.eps_flop = 2.0 * before.eps_flop;
  after.eps_mem = 0.5 * before.eps_mem;
  after.pi1 = 0.5 * before.pi1;

  // lambda = 0.95 => effective memory ~20 tuples: 300 post-shift tuples
  // are ~15 memory constants, plenty to forget the old regime. Noise is
  // kept small because a fast filter's steady-state variance scales
  // with noise / sqrt(effective window) — the assertion targets the
  // SHIFT being forgotten, not the noise floor.
  RlsFilter filter(0.95);
  for (const Sample& s : make_stream(before, 300, 0.003, 1)) filter.observe(s);
  const auto mid = filter.estimate();
  EXPECT_LT(rel_err(mid.eps_flop, before.eps_flop), 0.10);

  for (const Sample& s : make_stream(after, 300, 0.003, 2)) filter.observe(s);
  const auto end = filter.estimate();
  EXPECT_LT(rel_err(end.eps_flop, after.eps_flop), 0.10) << end.eps_flop;
  EXPECT_LT(rel_err(end.eps_mem, after.eps_mem), 0.10) << end.eps_mem;
  EXPECT_LT(rel_err(end.pi1, after.pi1), 0.10) << end.pi1;
  // An infinite-memory filter over the same shifted stream stays stuck
  // between the regimes — the forgetting factor is what tracks.
  RlsFilter stuck(1.0);
  for (const Sample& s : make_stream(before, 300, 0.003, 1)) stuck.observe(s);
  for (const Sample& s : make_stream(after, 300, 0.003, 2)) stuck.observe(s);
  EXPECT_GT(rel_err(stuck.estimate().eps_flop, after.eps_flop),
            rel_err(end.eps_flop, after.eps_flop));
}

TEST(OnlineFit, StoreResolvePublishesBlendedSnapshot) {
  OnlineFitOptions opt;
  opt.nm_evaluations = 2000;
  opt.lm_iterations = 30;
  OnlineStore store(opt);
  const Generator g;
  const auto stream = make_stream(g, 64, 0.005, 9);

  ASSERT_TRUE(store.known("GTX Titan"));
  EXPECT_EQ(store.published("GTX Titan"), nullptr);
  EXPECT_EQ(store.resolve("GTX Titan"), nullptr)  // below the floor
      << "resolve must refuse an empty window";

  store.observe("GTX Titan", std::span<const Sample>(stream));
  EXPECT_EQ(store.observations("GTX Titan"), 64u);

  const auto snap = store.resolve("GTX Titan");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch, 1u);
  EXPECT_TRUE(snap->resolved);
  EXPECT_EQ(snap->window_observations, 64u);
  EXPECT_EQ(store.generation(), 1u);
  EXPECT_EQ(store.published("GTX Titan"), snap);
  // The published machine blends RLS linear constants over the solver's.
  EXPECT_DOUBLE_EQ(snap->machine.eps_flop, snap->rls.eps_flop);
  EXPECT_DOUBLE_EQ(snap->machine.eps_mem, snap->rls.eps_mem);
  EXPECT_LT(rel_err(snap->machine.eps_flop, g.eps_flop), 0.10);
  EXPECT_LT(rel_err(snap->machine.pi1, g.pi1), 0.10);

  // Re-solving with no new tuples re-publishes (epoch 2) but the dirty
  // list no longer offers the platform to the background sweep.
  EXPECT_TRUE(store.dirty_platforms().empty());
  const auto snap2 = store.resolve("GTX Titan");
  ASSERT_NE(snap2, nullptr);
  EXPECT_EQ(snap2->epoch, 2u);
  EXPECT_EQ(store.generation(), 2u);
}

TEST(OnlineFit, BackgroundResolverSweepsDirtyPlatforms) {
  OnlineFitOptions opt;
  opt.nm_evaluations = 500;
  opt.lm_iterations = 10;
  OnlineStore store(opt);
  const Generator g;
  const auto stream = make_stream(g, 32, 0.005, 5);
  store.observe("GTX Titan", std::span<const Sample>(stream));
  store.observe("Xeon Phi", std::span<const Sample>(stream));
  ASSERT_EQ(store.dirty_platforms().size(), 2u);

  fit::online::BackgroundResolver resolver(store, 1);
  resolver.start();
  resolver.poke();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((store.generation() < 2 || resolver.sweeps() < 1) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  resolver.stop();

  EXPECT_GE(resolver.sweeps(), 1u);
  EXPECT_EQ(resolver.failed_resolves(), 0u);
  EXPECT_GE(store.generation(), 2u);
  ASSERT_NE(store.published("GTX Titan"), nullptr);
  ASSERT_NE(store.published("Xeon Phi"), nullptr);
  EXPECT_TRUE(store.dirty_platforms().empty());
  EXPECT_EQ(store.stats().platforms_fitted, 2u);
  EXPECT_GE(store.stats().last_resolve_s, 0.0);
}

// The TSan target: hammer one platform with concurrent ingest, reads,
// and re-solves while the background resolver sweeps. Assertions are
// deliberately coarse — the point is that the sanitizer sees the locking
// discipline hold under real contention.
TEST(OnlineFit, ConcurrentObserveReadResolveIsRaceFree) {
  OnlineFitOptions opt;
  opt.nm_evaluations = 300;
  opt.lm_iterations = 8;
  opt.forgetting = 0.99;
  OnlineStore store(opt);
  const Generator g;
  fit::online::BackgroundResolver resolver(store, 1);
  resolver.start();

  constexpr int kWriters = 3;
  constexpr int kBatches = 50;
  constexpr int kBatchSize = 8;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w)
    threads.emplace_back([&, w] {
      for (int b = 0; b < kBatches; ++b) {
        const auto batch = make_stream(
            g, kBatchSize, 0.01,
            static_cast<std::uint64_t>(w) * 1000 + static_cast<std::uint64_t>(b));
        store.observe("GTX Titan", std::span<const Sample>(batch));
      }
    });
  threads.emplace_back([&] {  // reader
    while (!stop.load(std::memory_order_acquire)) {
      if (const auto snap = store.published("GTX Titan")) {
        EXPECT_GE(snap->epoch, 1u);
      }
      (void)store.stats();
      (void)store.dirty_platforms();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  threads.emplace_back([&] {  // synchronous forced refits
    for (int i = 0; i < 10; ++i) {
      try {
        (void)store.resolve("GTX Titan");
      } catch (const std::exception&) {
        // Degenerate early windows can make the solve throw — the
        // documented resolve() contract; the serve layer maps it to
        // fit_failed and the background resolver counts and skips it.
      }
      resolver.poke();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();
  resolver.stop();

  EXPECT_EQ(store.observations("GTX Titan"),
            static_cast<std::uint64_t>(kWriters) * kBatches * kBatchSize);
  EXPECT_GE(store.generation(), 1u);
  const auto snap = store.published("GTX Titan");
  ASSERT_NE(snap, nullptr);
  EXPECT_GE(snap->epoch, 1u);
}

}  // namespace
