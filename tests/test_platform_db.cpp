// Tests for the Table I platform registry.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "core/analysis.hpp"
#include "platforms/platform_db.hpp"

namespace {

namespace co = archline::core;
namespace pl = archline::platforms;

TEST(PlatformDb, HasTwelvePlatforms) {
  EXPECT_EQ(pl::all_platforms().size(), 12u);
}

TEST(PlatformDb, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (const pl::PlatformSpec& p : pl::all_platforms()) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate " << p.name;
  }
}

TEST(PlatformDb, LookupByName) {
  const pl::PlatformSpec& p = pl::platform("GTX Titan");
  EXPECT_EQ(p.processor, "NVIDIA GK110 (Kepler)");
  EXPECT_TRUE(pl::has_platform("Xeon Phi"));
  EXPECT_FALSE(pl::has_platform("GTX 9090"));
}

TEST(PlatformDb, UnknownNameThrows) {
  EXPECT_THROW((void)pl::platform("nope"), std::out_of_range);
}

TEST(PlatformDb, EverySpecValidates) {
  for (const pl::PlatformSpec& p : pl::all_platforms())
    EXPECT_NO_THROW(p.validate()) << p.name;
}

TEST(PlatformDb, DoublePrecisionAvailability) {
  // Table I note 2: three GPUs lack double support.
  EXPECT_FALSE(pl::platform("NUC GPU").has_double());
  EXPECT_FALSE(pl::platform("APU GPU").has_double());
  EXPECT_FALSE(pl::platform("Arndale GPU").has_double());
  EXPECT_TRUE(pl::platform("GTX Titan").has_double());
  EXPECT_TRUE(pl::platform("Desktop CPU").has_double());
}

TEST(PlatformDb, SevenPlatformsMarkedSignificantInPaper) {
  int marked = 0;
  for (const pl::PlatformSpec& p : pl::all_platforms())
    if (p.ks_significant_in_paper) ++marked;
  EXPECT_EQ(marked, 7);
}

TEST(PlatformDb, AsteriskPlatformsMatchTableNote1) {
  // "In four cases ... fitted constant power is less than observed idle."
  int starred = 0;
  for (const pl::PlatformSpec& p : pl::all_platforms()) {
    if (p.pi1_below_idle) {
      ++starred;
      EXPECT_LT(p.pi1, p.idle_power) << p.name;
    }
  }
  EXPECT_EQ(starred, 4);
}

TEST(PlatformDb, SustainedFractionsWithinUnity) {
  for (const pl::PlatformSpec& p : pl::all_platforms()) {
    EXPECT_GT(p.sustained_flop_fraction(), 0.3) << p.name;
    EXPECT_LE(p.sustained_flop_fraction(), 1.001) << p.name;
    EXPECT_GT(p.sustained_bandwidth_fraction(), 0.2) << p.name;
    EXPECT_LE(p.sustained_bandwidth_fraction(), 1.001) << p.name;
  }
}

TEST(PlatformDb, Fig5SustainedAnnotations) {
  // Spot checks against Fig. 5: Titan "[81%] flops, [83%] bw";
  // Arndale CPU "[58%], [31%]".
  EXPECT_NEAR(pl::platform("GTX Titan").sustained_flop_fraction(), 0.81,
              0.01);
  EXPECT_NEAR(pl::platform("GTX Titan").sustained_bandwidth_fraction(), 0.83,
              0.01);
  EXPECT_NEAR(pl::platform("Arndale CPU").sustained_flop_fraction(), 0.58,
              0.01);
  EXPECT_NEAR(pl::platform("Arndale CPU").sustained_bandwidth_fraction(),
              0.31, 0.01);
}

TEST(PlatformDb, MachineConversionUsesSustainedThroughput) {
  const pl::PlatformSpec& p = pl::platform("Xeon Phi");
  const co::MachineParams m = p.machine();
  EXPECT_DOUBLE_EQ(m.peak_flops(), p.flop_sp.throughput);
  EXPECT_DOUBLE_EQ(m.peak_bandwidth(), p.mem_stream.throughput);
  EXPECT_DOUBLE_EQ(m.pi1, 180.0);
  EXPECT_DOUBLE_EQ(m.delta_pi, 36.1);
}

TEST(PlatformDb, DoubleMachineOnSupportedPlatform) {
  const co::MachineParams m =
      pl::platform("GTX Titan").machine(co::Precision::Double);
  EXPECT_NEAR(m.peak_flops() / 1e9, 1600.0, 1.0);
}

TEST(PlatformDb, DoubleMachineOnUnsupportedPlatformThrows) {
  EXPECT_THROW((void)pl::platform("Arndale GPU").machine(
                   co::Precision::Double),
               std::invalid_argument);
}

TEST(PlatformDb, CacheLevelAccess) {
  const pl::PlatformSpec& phi = pl::platform("Xeon Phi");
  EXPECT_TRUE(phi.has_level(co::MemLevel::L1));
  EXPECT_TRUE(phi.has_level(co::MemLevel::L2));
  EXPECT_TRUE(phi.has_level(co::MemLevel::DRAM));
  const co::MachineParams l1 = phi.machine_at_level(co::MemLevel::L1);
  EXPECT_NEAR(l1.peak_bandwidth() / 1e9, 2890.0, 1.0);
}

TEST(PlatformDb, MissingCacheLevelThrows) {
  const pl::PlatformSpec& nuc_gpu = pl::platform("NUC GPU");
  EXPECT_FALSE(nuc_gpu.has_level(co::MemLevel::L1));
  EXPECT_THROW((void)nuc_gpu.machine_at_level(co::MemLevel::L1),
               std::invalid_argument);
}

TEST(PlatformDb, InclusiveCostOrderingHoldsEverywhere) {
  // §V-B sanity property: eps_L1 <= eps_L2 <= eps_mem for every platform.
  for (const pl::PlatformSpec& p : pl::all_platforms()) {
    if (p.mem_l1 && p.mem_l2) {
      EXPECT_LE(p.mem_l1->energy_per_op, p.mem_l2->energy_per_op) << p.name;
    }
    if (p.mem_l2) {
      EXPECT_LE(p.mem_l2->energy_per_op, p.mem_stream.energy_per_op)
          << p.name;
    }
  }
}

TEST(PlatformDb, RandomAccessCostsAnOrderOfMagnitudeAboveStream) {
  // §V-B: "we expect this cost to be at least an order of magnitude
  // higher than eps_mem, as table I reflects" — comparing J per access
  // against J per streamed byte (the paper's nJ-vs-pJ framing).
  for (const pl::PlatformSpec& p : pl::all_platforms()) {
    if (!p.has_random_access()) continue;
    EXPECT_GT(p.random_access().energy_per_op,
              10.0 * p.mem_stream.energy_per_op)
        << p.name;
  }
}

TEST(PlatformDb, XeonPhiCheapestRandomAccess) {
  // §VI: "random memory access is on the Xeon Phi at least one order of
  // magnitude less energy per access than any other platform".
  const double phi = pl::platform("Xeon Phi").random_access().energy_per_op;
  for (const pl::PlatformSpec& p : pl::all_platforms()) {
    if (p.name == "Xeon Phi" || !p.has_random_access()) continue;
    EXPECT_GT(p.random_access().energy_per_op, 8.0 * phi) << p.name;
  }
}

TEST(PlatformDb, EfficiencyOrderingMatchesFig5Panels) {
  const auto order = pl::by_peak_efficiency();
  ASSERT_EQ(order.size(), 12u);
  EXPECT_EQ(order.front()->name, "GTX Titan");
  EXPECT_EQ(order[1]->name, "GTX 680");
  EXPECT_EQ(order.back()->name, "Desktop CPU");
  // Monotone nonincreasing efficiency down the list.
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(co::peak_flops_per_joule(order[i - 1]->machine()),
              co::peak_flops_per_joule(order[i]->machine()));
}

TEST(PlatformDb, PlatformNamesMatchesRegistryOrder) {
  const auto names = pl::platform_names();
  ASSERT_EQ(names.size(), 12u);
  EXPECT_EQ(names.front(), "Desktop CPU");
  EXPECT_EQ(names.back(), "Arndale GPU");
}

TEST(PlatformDb, DeviceClassStrings) {
  EXPECT_STREQ(pl::to_string(pl::DeviceClass::Manycore), "manycore");
  EXPECT_STREQ(pl::to_string(pl::DeviceClass::MobileGpu), "mobile GPU");
}

}  // namespace
