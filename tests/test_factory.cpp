// Tests for the platform -> SimMachine factory and the ground-truth
// machines' fidelity to the published model parameters.

#include <gtest/gtest.h>

#include "core/roofline.hpp"
#include "platforms/platform_db.hpp"
#include "sim/factory.hpp"

namespace {

namespace co = archline::core;
namespace pl = archline::platforms;
namespace si = archline::sim;

TEST(Factory, BuildsEveryPlatform) {
  for (const pl::PlatformSpec& spec : pl::all_platforms()) {
    const si::SimMachine m = si::make_machine(spec);
    EXPECT_EQ(m.name(), spec.name);
  }
}

TEST(Factory, CostsMatchPublishedConstants) {
  const pl::PlatformSpec& spec = pl::platform("GTX Titan");
  const si::SimMachine m = si::make_machine(spec);
  EXPECT_DOUBLE_EQ(m.config().sp.eps, spec.flop_sp.energy_per_op);
  EXPECT_DOUBLE_EQ(m.config().dram.eps_byte, spec.mem_stream.energy_per_op);
  EXPECT_DOUBLE_EQ(m.config().pi1, spec.pi1);
  EXPECT_DOUBLE_EQ(m.config().delta_pi, spec.delta_pi);
}

TEST(Factory, OptionalLevelsFollowSpec) {
  const si::SimMachine nuc_gpu = si::make_machine(pl::platform("NUC GPU"));
  EXPECT_FALSE(nuc_gpu.config().l1.has_value());
  EXPECT_FALSE(nuc_gpu.config().l2.has_value());
  EXPECT_FALSE(nuc_gpu.config().random.has_value());
  EXPECT_FALSE(nuc_gpu.config().dp.has_value());

  const si::SimMachine phi = si::make_machine(pl::platform("Xeon Phi"));
  EXPECT_TRUE(phi.config().l1.has_value());
  EXPECT_TRUE(phi.config().l2.has_value());
  EXPECT_TRUE(phi.config().random.has_value());
  EXPECT_TRUE(phi.config().dp.has_value());
}

TEST(Factory, IdealPhysicsMatchesRooflineForAllPlatforms) {
  // The simulator's noise-free physics must agree with the model built
  // from the same published constants (outside droop platforms).
  for (const pl::PlatformSpec& spec : pl::all_platforms()) {
    if (spec.name == "Arndale GPU") continue;  // intentional droop mismatch
    const si::SimMachine machine = si::make_machine(spec);
    const co::MachineParams params = spec.machine();
    for (const double intensity : {0.25, 2.0, 16.0, 128.0}) {
      const co::Workload w = co::Workload::from_intensity(1e11, intensity);
      si::KernelDesc k;
      k.label = "fidelity";
      k.flops = w.flops;
      k.bytes = w.bytes;
      const double t_sim = machine.ideal_time(k);
      const double t_model = co::time(params, w);
      EXPECT_NEAR(t_sim, t_model, 1e-9 * t_model)
          << spec.name << " I=" << intensity;
    }
  }
}

TEST(Factory, ArndaleGpuDroopsOnlyInCapRegion) {
  const pl::PlatformSpec& spec = pl::platform("Arndale GPU");
  const si::SimMachine machine = si::make_machine(spec);
  const co::MachineParams params = spec.machine();
  // Memory-bound point (I = 0.25 < B_tau- ~ 0.68): no droop.
  {
    const co::Workload w = co::Workload::from_intensity(1e9, 0.25);
    si::KernelDesc k;
    k.label = "mb";
    k.flops = w.flops;
    k.bytes = w.bytes;
    EXPECT_NEAR(machine.ideal_time(k), co::time(params, w),
                1e-9 * co::time(params, w));
  }
  // Cap-bound point: simulator runs longer than the model predicts.
  {
    const co::Workload w = co::Workload::from_intensity(1e9, 2.0);
    si::KernelDesc k;
    k.label = "cap";
    k.flops = w.flops;
    k.bytes = w.bytes;
    EXPECT_GT(machine.ideal_time(k), co::time(params, w) * 1.005);
    // ... but within the paper's "always less than 15%" bound.
    EXPECT_LT(machine.ideal_time(k), co::time(params, w) * 1.15);
  }
}

TEST(Factory, NonidealityProfiles) {
  EXPECT_GT(si::default_nonidealities(pl::platform("NUC GPU"))
                .noise.os_burst_rate_hz,
            0.0);
  EXPECT_GT(si::default_nonidealities(pl::platform("Arndale GPU"))
                .noise.cap_droop_eta,
            0.0);
  EXPECT_DOUBLE_EQ(si::default_nonidealities(pl::platform("GTX Titan"))
                       .noise.cap_droop_eta,
                   0.0);
}

TEST(Factory, RailsFollowDeviceClass) {
  EXPECT_EQ(si::make_machine(pl::platform("GTX 580")).config().rails.size(),
            3u);  // slot + 6-pin + 8-pin
  EXPECT_EQ(si::make_machine(pl::platform("Desktop CPU")).config()
                .rails.size(),
            2u);  // ATX + motherboard
  EXPECT_EQ(si::make_machine(pl::platform("PandaBoard ES")).config()
                .rails.size(),
            1u);  // DC brick
}

TEST(Factory, CacheCapacitiesPositiveWhereConfigured) {
  for (const pl::PlatformSpec& spec : pl::all_platforms()) {
    const si::SimMachine m = si::make_machine(spec);
    if (m.config().l1) {
      EXPECT_GT(m.config().l1->capacity_bytes, 0.0);
    }
    if (m.config().l2) {
      EXPECT_GT(m.config().l2->capacity_bytes, 0.0);
    }
  }
}

TEST(Factory, NoiseFreeProfileUsable) {
  si::NonidealityProfile quiet;
  quiet.noise.time_rel_sd = 0.0;
  quiet.noise.power_rel_sd = 0.0;
  const si::SimMachine m =
      si::make_machine(pl::platform("Xeon Phi"), quiet);
  archline::stats::Rng rng(1);
  si::KernelDesc k;
  k.label = "quiet";
  k.flops = 1e12;
  k.bytes = 1e10;
  const si::RunResult r1 = m.run(k, rng);
  EXPECT_NEAR(r1.true_time, m.ideal_time(k), 1e-12);
}

TEST(Factory, DefaultCapacitiesByClass) {
  EXPECT_GT(si::default_l2_capacity(pl::DeviceClass::DesktopGpu),
            si::default_l1_capacity(pl::DeviceClass::DesktopGpu));
  EXPECT_GT(si::default_l2_capacity(pl::DeviceClass::ServerCpu),
            si::default_l1_capacity(pl::DeviceClass::ServerCpu));
}

}  // namespace
