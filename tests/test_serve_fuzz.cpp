// In-process fuzz harness tests: mutation-engine determinism, reply
// validation, a seeded smoke campaign through Server::handle_into
// (the CI ASan job re-runs the same campaign at 50k iterations via
// tools/serve_fuzz), and the JSON codec round-trip property
// dump(parse(x)) == dump(parse(dump(parse(x)))) over mutated corpus
// lines — serializer output must be a fixed point of parse∘dump, or
// the response cache and the loadgen's byte-identity replay both lie.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/json.hpp"
#include "serve/server.hpp"
#include "sim/fuzz.hpp"
#include "stats/rng.hpp"

#ifndef ARCHLINE_TEST_DATA_DIR
#define ARCHLINE_TEST_DATA_DIR "tests/data"
#endif

namespace {

using namespace archline::sim;
using archline::serve::Json;
using archline::serve::JsonError;
using archline::serve::Server;
using archline::serve::ServerOptions;
using archline::stats::Rng;

std::vector<std::string> golden_corpus() {
  const std::vector<std::string> corpus = load_corpus(
      std::string(ARCHLINE_TEST_DATA_DIR) + "/serve_golden_requests.txt");
  EXPECT_GE(corpus.size(), 60u);
  return corpus;
}

TEST(ServeFuzz, MutationEngineIsDeterministic) {
  const auto corpus = golden_corpus();
  for (std::uint64_t seed : {1ull, 42ull, 12345ull}) {
    Rng a(seed), b(seed);
    for (int i = 0; i < 200; ++i)
      EXPECT_EQ(mutate_line(corpus, a, 4), mutate_line(corpus, b, 4));
  }
}

TEST(ServeFuzz, MutantsDifferFromCorpus) {
  // Not a tautology: an engine whose operators all no-op (e.g. every
  // offset lands out of range) would fuzz nothing. Most mutants must
  // actually differ from every corpus line.
  const auto corpus = golden_corpus();
  Rng rng(9);
  int changed = 0;
  constexpr int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    const std::string m = mutate_line(corpus, rng, 4);
    bool in_corpus = false;
    for (const std::string& line : corpus)
      if (line == m) in_corpus = true;
    if (!in_corpus) ++changed;
  }
  EXPECT_GT(changed, kTrials / 2);
}

TEST(ServeFuzz, ReplyValidatorAcceptsProtocolReplies) {
  EXPECT_TRUE(reply_acceptable(R"({"ok":true,"type":"predict"})", nullptr));
  EXPECT_TRUE(reply_acceptable(
      R"({"ok":false,"error":"parse_error","message":"x"})", nullptr));
  EXPECT_TRUE(reply_acceptable(
      R"({"ok":false,"error":"deadline_exceeded"})", nullptr));
}

TEST(ServeFuzz, ReplyValidatorRejectsContractViolations) {
  std::string why;
  EXPECT_FALSE(reply_acceptable("", &why));
  EXPECT_FALSE(reply_acceptable("not json", &why));
  EXPECT_FALSE(reply_acceptable(R"(["ok"])", &why));           // not object
  EXPECT_FALSE(reply_acceptable(R"({"type":"x"})", &why));     // no ok
  EXPECT_FALSE(reply_acceptable(R"({"ok":"yes"})", &why));     // not bool
  EXPECT_FALSE(reply_acceptable(R"({"ok":false})", &why));     // no error
  EXPECT_FALSE(
      reply_acceptable(R"({"ok":false,"error":"made_up_code"})", &why));
  EXPECT_EQ(why, "unknown error code: made_up_code");
  EXPECT_FALSE(reply_acceptable("{\"ok\":true}\n{\"ok\":true}", &why));
}

TEST(ServeFuzz, SmokeCampaignIsCleanAndReproducible) {
  // A scaled-down version of the CI fuzz smoke stage. Every reply must
  // honor the protocol contract, and a finding-free campaign must
  // produce identical tallies when re-run from the same seed.
  const auto corpus = golden_corpus();
  FuzzOptions options;
  options.seed = 1;
  options.iterations = 3000;
  Server server;
  const FuzzReport first = run_fuzz(server, corpus, options);
  EXPECT_EQ(first.iterations, options.iterations);
  for (const FuzzFinding& f : first.findings)
    ADD_FAILURE() << "iteration " << f.iteration << ": " << f.why
                  << "\n  input: " << f.input << "\n  reply: " << f.reply;
  EXPECT_GT(first.ok_replies, 0u);     // some mutants stay valid
  EXPECT_GT(first.error_replies, 0u);  // most do not

  Server fresh;  // identical config, cold cache
  const FuzzReport second = run_fuzz(fresh, corpus, options);
  EXPECT_EQ(second.ok_replies, first.ok_replies);
  EXPECT_EQ(second.error_replies, first.error_replies);
  EXPECT_EQ(second.findings.size(), first.findings.size());
}

TEST(ServeFuzz, IterationsAreIndependentOfCampaignStart) {
  // Iteration k must generate the same input whether the campaign
  // started at 0 or at k — the property that lets a finding reproduce
  // with --begin k --iters 1.
  const auto corpus = golden_corpus();
  for (const std::size_t k : {0u, 17u, 999u}) {
    Rng direct(1, k);
    const std::string expected = mutate_line(corpus, direct, 4);
    Rng again(1, k);
    EXPECT_EQ(mutate_line(corpus, again, 4), expected);
  }
}

// ---- JSON codec round-trip property ---------------------------------------

TEST(ServeFuzz, DumpParseDumpIsAFixedPoint) {
  // For every mutant that parses at all: dump(parse(x)) must equal
  // dump(parse(dump(parse(x)))). If the serializer ever emits bytes its
  // own parser reads back differently (number formatting, escapes),
  // cached replies and replayed replies diverge.
  const auto corpus = golden_corpus();
  Rng rng(77);
  int parsed_count = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::string mutant = mutate_line(corpus, rng, 4);
    Json first;
    try {
      first = Json::parse(mutant);
    } catch (const JsonError&) {
      continue;  // only round-trippable inputs participate
    }
    ++parsed_count;
    const std::string once = first.dump();
    std::string twice;
    ASSERT_NO_THROW(twice = Json::parse(once).dump())
        << "serializer output failed to re-parse: " << once;
    EXPECT_EQ(once, twice) << "round-trip mismatch for input: " << mutant;
  }
  // The corpus seeds real requests, so a healthy fraction must parse.
  EXPECT_GT(parsed_count, 100);
}

TEST(ServeFuzz, NumberFormattingRoundTrips) {
  // The serializer's number format is the usual escape/precision trap;
  // pin the edge cases explicitly.
  for (const double v : {0.0, -0.0, 1.0, -1.5, 0.1, 1e-308, 1e308,
                         9007199254740991.0,  // 2^53 - 1
                         9007199254740993.0,  // 2^53 + 1: not integral-exact
                         3.141592653589793, 2.2250738585072014e-308}) {
    const std::string once = Json(v).dump();
    const std::string twice = Json::parse(once).dump();
    EXPECT_EQ(once, twice) << "for value " << v;
  }
}

}  // namespace
