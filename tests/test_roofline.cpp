// Tests for the capped energy-roofline predictions, eqs. (1)-(7),
// including the paper's hand-checkable numbers.

#include <gtest/gtest.h>

#include <cmath>

#include "core/machine_params.hpp"
#include "core/roofline.hpp"

namespace {

namespace co = archline::core;

// Published GTX Titan (SP) and Arndale GPU machines.
co::MachineParams titan() {
  return co::make_machine_gflops(4020.0, 30.4, 239.0, 267.0, 123.0, 164.0);
}
co::MachineParams arndale_gpu() {
  return co::make_machine_gflops(33.0, 84.2, 8.39, 518.0, 1.28, 4.83);
}
// A simple machine with friendly numbers for exact assertions:
// 1 Gflop/s at 1 nJ/flop, 1 GB/s at 2 nJ/B, pi1 = 1 W, cap = 10 W.
co::MachineParams toy(double delta_pi = 10.0) {
  co::MachineParams m;
  m.tau_flop = 1e-9;
  m.eps_flop = 1e-9;
  m.tau_mem = 1e-9;
  m.eps_mem = 2e-9;
  m.pi1 = 1.0;
  m.delta_pi = delta_pi;
  return m;
}

TEST(Time, ComputeBoundUsesFlopTerm) {
  const co::Workload w{.flops = 100e9, .bytes = 1e9};
  // toy: t_flop = 100 s, t_mem = 1 s, cap time = (100+2)/10 = 10.2 s.
  EXPECT_DOUBLE_EQ(co::time(toy(), w), 100.0);
  EXPECT_EQ(co::regime(toy(), w), co::Regime::Compute);
}

TEST(Time, MemoryBoundUsesByteTerm) {
  const co::Workload w{.flops = 1e9, .bytes = 100e9};
  // t_flop = 1 s, t_mem = 100 s, cap = (1 + 200)/10 = 20.1 s.
  EXPECT_DOUBLE_EQ(co::time(toy(), w), 100.0);
  EXPECT_EQ(co::regime(toy(), w), co::Regime::Memory);
}

TEST(Time, CapBoundUsesEnergyTerm) {
  const co::Workload w{.flops = 10e9, .bytes = 10e9};
  // t_flop = t_mem = 10 s; active energy = 10 + 20 = 30 J; cap 2 W -> 15 s.
  const co::MachineParams m = toy(2.0);
  EXPECT_DOUBLE_EQ(co::time(m, w), 15.0);
  EXPECT_EQ(co::regime(m, w), co::Regime::PowerCap);
}

TEST(Time, UncappedIgnoresEnergyTerm) {
  const co::Workload w{.flops = 10e9, .bytes = 10e9};
  EXPECT_DOUBLE_EQ(co::time(toy().without_cap(), w), 10.0);
}

TEST(Energy, SumsComponentsPlusConstant) {
  const co::Workload w{.flops = 10e9, .bytes = 5e9};
  // t_flop = 10 s (max); E = 10 J + 10 J + 1 W * 10 s = 30 J.
  EXPECT_DOUBLE_EQ(co::energy(toy(), w), 30.0);
}

TEST(AvgPower, IsEnergyOverTime) {
  const co::Workload w{.flops = 10e9, .bytes = 5e9};
  EXPECT_DOUBLE_EQ(co::avg_power(toy(), w), 3.0);
}

TEST(TimePerFlop, MatchesEq4AtRegimes) {
  const co::MachineParams m = toy();
  // Compute-bound at I >= B_tau = 1: T/W = tau_flop.
  EXPECT_DOUBLE_EQ(co::time_per_flop(m, 8.0), 1e-9);
  // Memory-bound at I = 1/4: T/W = tau_flop * B/I = 4 ns.
  EXPECT_DOUBLE_EQ(co::time_per_flop(m, 0.25), 4e-9);
}

TEST(TimePerFlop, CapTermDominatesUnderTightCap) {
  const co::MachineParams m = toy(1.0);
  // At I = 1: free term = 1; cap term = (pi_flop/dpi)(1+B_eps/I)
  //   = (1/1)(1+2) = 3 -> T/W = 3 ns.
  EXPECT_DOUBLE_EQ(co::time_per_flop(m, 1.0), 3e-9);
}

TEST(Performance, ReciprocalOfTimePerFlop) {
  const co::MachineParams m = titan();
  for (const double intensity : {0.25, 1.0, 16.0, 128.0})
    EXPECT_DOUBLE_EQ(co::performance(m, intensity),
                     1.0 / co::time_per_flop(m, intensity));
}

TEST(Performance, ApproachesPeakAtHighIntensity) {
  const co::MachineParams m = titan();
  EXPECT_NEAR(co::performance(m, 1e6), m.peak_flops(), 1e7);
}

TEST(Bandwidth, ApproachesPeakAtLowIntensity) {
  const co::MachineParams m = titan();
  EXPECT_NEAR(co::bandwidth(m, 1e-6), m.peak_bandwidth(), 1e6);
}

TEST(EnergyPerFlop, MatchesEq2) {
  const co::MachineParams m = toy();
  // I = 1: E/W = eps_f (1 + 2/1) + pi1 * T/W = 3e-9 + 1*1e-9 = 4e-9.
  EXPECT_DOUBLE_EQ(co::energy_per_flop(m, 1.0), 4e-9);
}

TEST(EnergyEfficiency, DecreasesWithDecreasingIntensity) {
  const co::MachineParams m = titan();
  EXPECT_GT(co::energy_efficiency(m, 64.0), co::energy_efficiency(m, 1.0));
  EXPECT_GT(co::energy_efficiency(m, 1.0), co::energy_efficiency(m, 0.125));
}

TEST(AvgPowerClosedForm, HighIntensityLimitIsFlopPower) {
  const co::MachineParams m = titan();
  EXPECT_NEAR(co::avg_power_closed_form(m, 1e9), m.pi1 + m.pi_flop(), 1e-3);
}

TEST(AvgPowerClosedForm, LowIntensityLimitIsMemPower) {
  const co::MachineParams m = titan();
  EXPECT_NEAR(co::avg_power_closed_form(m, 1e-9), m.pi1 + m.pi_mem(), 1e-3);
}

TEST(AvgPowerClosedForm, CapRegionIsFlat) {
  const co::MachineParams m = titan();
  const double lo = m.balance_lo();
  const double hi = m.balance_hi();
  ASSERT_LT(lo, hi);
  const double mid = std::sqrt(lo * hi);
  EXPECT_DOUBLE_EQ(co::avg_power_closed_form(m, mid), m.pi1 + m.delta_pi);
}

TEST(AvgPowerClosedForm, ContinuousAtBalanceBoundaries) {
  const co::MachineParams m = titan();
  for (const double b : {m.balance_lo(), m.balance_hi()}) {
    const double below = co::avg_power_closed_form(m, b * (1 - 1e-9));
    const double above = co::avg_power_closed_form(m, b * (1 + 1e-9));
    EXPECT_NEAR(below, above, 1e-6 * (m.pi1 + m.delta_pi));
  }
}

TEST(AvgPowerClosedForm, PeaksAtTimeBalanceWhenPowerSufficient) {
  co::MachineParams m = titan();
  m.delta_pi = 1000.0;
  const double at_balance =
      co::avg_power_closed_form(m, m.time_balance());
  EXPECT_NEAR(at_balance, m.pi1 + m.pi_flop() + m.pi_mem(), 1e-9);
  EXPECT_GT(at_balance, co::avg_power_closed_form(m, m.time_balance() * 4));
  EXPECT_GT(at_balance, co::avg_power_closed_form(m, m.time_balance() / 4));
}

TEST(RegimeAt, TransitionsAcrossIntensity) {
  const co::MachineParams m = titan();
  EXPECT_EQ(co::regime_at(m, m.balance_lo() / 2), co::Regime::Memory);
  EXPECT_EQ(co::regime_at(m, std::sqrt(m.balance_lo() * m.balance_hi())),
            co::Regime::PowerCap);
  EXPECT_EQ(co::regime_at(m, m.balance_hi() * 2), co::Regime::Compute);
}

TEST(RegimeNames, Letters) {
  EXPECT_EQ(co::regime_letter(co::Regime::Compute), 'F');
  EXPECT_EQ(co::regime_letter(co::Regime::Memory), 'M');
  EXPECT_EQ(co::regime_letter(co::Regime::PowerCap), 'C');
  EXPECT_STREQ(co::regime_name(co::Regime::PowerCap), "power-cap");
}

TEST(Crossover, TitanVsArndaleEfficiencyParity) {
  // §I-A: "the two systems match in flops per Joule for intensities as
  // high as 4 flop:Byte". The exact tie sits below 4 (our constants put
  // it at ~1.7), with near-parity (within ~20%) persisting to I = 4.
  const double crossing = co::crossover_intensity(
      arndale_gpu(), titan(), co::Metric::EnergyEfficiency);
  EXPECT_GT(crossing, 1.0);
  EXPECT_LT(crossing, 8.0);
  const double parity_at_4 = co::energy_efficiency(arndale_gpu(), 4.0) /
                             co::energy_efficiency(titan(), 4.0);
  EXPECT_GT(parity_at_4, 0.75);
  EXPECT_LT(parity_at_4, 1.25);
  // "even at more compute-bound intensities, the Arndale is within a
  // factor of two of the GTX Titan in energy-efficiency."
  const double ratio_at_256 = co::energy_efficiency(arndale_gpu(), 256.0) /
                              co::energy_efficiency(titan(), 256.0);
  EXPECT_GT(ratio_at_256, 0.4);
}

TEST(Crossover, NoSignChangeReturnsNegative) {
  // Titan dominates Arndale GPU in raw performance everywhere.
  const double crossing = co::crossover_intensity(
      titan(), arndale_gpu(), co::Metric::Performance);
  EXPECT_LT(crossing, 0.0);
}

TEST(MetricValue, DispatchesAllMetrics) {
  const co::MachineParams m = titan();
  EXPECT_DOUBLE_EQ(co::metric_value(m, co::Metric::Performance, 2.0),
                   co::performance(m, 2.0));
  EXPECT_DOUBLE_EQ(co::metric_value(m, co::Metric::EnergyEfficiency, 2.0),
                   co::energy_efficiency(m, 2.0));
  EXPECT_DOUBLE_EQ(co::metric_value(m, co::Metric::Power, 2.0),
                   co::avg_power_closed_form(m, 2.0));
}

TEST(PaperNumbers, TitanPowerThrottleAtQuarterIntensity) {
  // §V-D: Titan capped to delta_pi/8 runs at ~0.31x at I = 0.25.
  const co::MachineParams m = titan();
  co::MachineParams capped = m;
  capped.delta_pi = m.delta_pi / 8.0;
  const double ratio =
      co::performance(capped, 0.25) / co::performance(m, 0.25);
  EXPECT_NEAR(ratio, 0.31, 0.02);
}

}  // namespace
