// Tests for the DVFS extension and the cap-vs-DVFS comparison.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/dvfs.hpp"
#include "core/roofline.hpp"
#include "platforms/platform_db.hpp"

namespace {

namespace co = archline::core;
namespace pl = archline::platforms;

co::MachineParams titan() { return pl::platform("GTX Titan").machine(); }

co::DvfsModel model() {
  return co::DvfsModel{.leakage_fraction = 0.3, .scale_memory = false,
                       .min_scale = 0.2};
}

TEST(DvfsModel, ValidationRules) {
  co::DvfsModel m = model();
  EXPECT_NO_THROW(m.validate());
  m.leakage_fraction = 1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = model();
  m.min_scale = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = model();
  m.min_scale = 1.5;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(ApplyDvfs, UnitScaleIsIdentity) {
  const co::MachineParams m = titan();
  const co::MachineParams s = co::apply_dvfs(m, 1.0, model());
  EXPECT_DOUBLE_EQ(s.tau_flop, m.tau_flop);
  EXPECT_DOUBLE_EQ(s.eps_flop, m.eps_flop);
  EXPECT_DOUBLE_EQ(s.tau_mem, m.tau_mem);
}

TEST(ApplyDvfs, HalfClockHalvesFlopRate) {
  const co::MachineParams m = titan();
  const co::MachineParams s = co::apply_dvfs(m, 0.5, model());
  EXPECT_DOUBLE_EQ(s.peak_flops(), 0.5 * m.peak_flops());
  // Dynamic energy at s=0.5: 0.3 + 0.7 * 0.25 = 0.475 of original.
  EXPECT_NEAR(s.eps_flop, 0.475 * m.eps_flop, 1e-18);
}

TEST(ApplyDvfs, MemoryUntouchedByDefault) {
  const co::MachineParams s = co::apply_dvfs(titan(), 0.5, model());
  EXPECT_DOUBLE_EQ(s.tau_mem, titan().tau_mem);
  EXPECT_DOUBLE_EQ(s.eps_mem, titan().eps_mem);
}

TEST(ApplyDvfs, MemoryScalesWhenRequested) {
  co::DvfsModel m = model();
  m.scale_memory = true;
  const co::MachineParams s = co::apply_dvfs(titan(), 0.5, m);
  EXPECT_DOUBLE_EQ(s.peak_bandwidth(), 0.5 * titan().peak_bandwidth());
}

TEST(ApplyDvfs, ConstantPowerUnchanged) {
  const co::MachineParams s = co::apply_dvfs(titan(), 0.4, model());
  EXPECT_DOUBLE_EQ(s.pi1, titan().pi1);
  EXPECT_DOUBLE_EQ(s.delta_pi, titan().delta_pi);
}

TEST(ApplyDvfs, ScaleOutOfRangeThrows) {
  EXPECT_THROW((void)co::apply_dvfs(titan(), 0.1, model()),
               std::invalid_argument);
  EXPECT_THROW((void)co::apply_dvfs(titan(), 1.1, model()),
               std::invalid_argument);
}

TEST(DvfsScaleForPower, NoScalingWhenTargetGenerous) {
  const co::MachineParams m = titan();
  EXPECT_DOUBLE_EQ(co::dvfs_scale_for_power(m, model(), m.max_power() + 10),
                   1.0);
}

TEST(DvfsScaleForPower, MeetsTheTarget) {
  const co::MachineParams m = titan();
  const double target = m.pi1 + 0.6 * (m.max_power() - m.pi1);
  const double s = co::dvfs_scale_for_power(m, model(), target);
  EXPECT_LT(s, 1.0);
  EXPECT_GE(s, 0.2);
  const co::MachineParams scaled = co::apply_dvfs(m, s, model());
  EXPECT_LE(scaled.max_power(), target * (1 + 1e-6));
}

TEST(DvfsScaleForPower, UnreachableTargetThrows) {
  const co::MachineParams m = titan();
  EXPECT_THROW(
      (void)co::dvfs_scale_for_power(m, model(), m.pi1 + 0.1),
      std::invalid_argument);
}

TEST(CompareCapVsDvfs, CapWinsAtLowIntensity) {
  // At bandwidth-bound intensities the cap barely throttles, while DVFS
  // needlessly slows the (unthrottled) flop engine; cap performance must
  // be at least as good.
  const co::MachineParams m = titan();
  const double target = m.pi1 + 0.6 * (m.max_power() - m.pi1);
  const auto c = co::compare_cap_vs_dvfs(m, model(), target, 0.25);
  EXPECT_GE(c.cap_performance, c.dvfs_performance * 0.999);
}

TEST(CompareCapVsDvfs, DvfsCanWinEfficiencyInMidRange) {
  // Around the balance point DVFS buys back per-flop energy via the V^2
  // term; verify the advantage exists somewhere for the Xeon Phi (as the
  // bench shows at I = 8).
  const co::MachineParams m = pl::platform("Xeon Phi").machine();
  const double target = m.pi1 + 0.85 * (m.max_power() - m.pi1);
  const auto c = co::compare_cap_vs_dvfs(m, model(), target, 8.0);
  EXPECT_GT(c.efficiency_advantage(), 1.0);
}

TEST(CompareCapVsDvfs, TargetBelowPi1Throws) {
  const co::MachineParams m = titan();
  EXPECT_THROW(
      (void)co::compare_cap_vs_dvfs(m, model(), m.pi1 - 1.0, 1.0),
      std::invalid_argument);
}

TEST(CompareCapVsDvfs, FieldsConsistent) {
  const co::MachineParams m = titan();
  const double target = m.pi1 + 0.7 * (m.max_power() - m.pi1);
  const auto c = co::compare_cap_vs_dvfs(m, model(), target, 4.0);
  EXPECT_DOUBLE_EQ(c.target_watts, target);
  EXPECT_DOUBLE_EQ(c.intensity, 4.0);
  EXPECT_GT(c.cap_performance, 0.0);
  EXPECT_GT(c.dvfs_performance, 0.0);
  EXPECT_GT(c.frequency_scale, 0.0);
  EXPECT_LE(c.frequency_scale, 1.0);
}

}  // namespace
