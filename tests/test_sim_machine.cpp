// Tests for SimMachine: physics fidelity against the roofline model,
// noise behaviour, nonidealities, trace shape.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/roofline.hpp"
#include "sim/machine.hpp"

namespace {

namespace co = archline::core;
namespace si = archline::sim;
namespace pm = archline::powermon;
using archline::stats::Rng;

si::SimConfig toy_config() {
  si::SimConfig cfg;
  cfg.name = "toy";
  cfg.sp = {.tau = 1e-9, .eps = 1e-9};              // 1 Gflop/s, 1 nJ/flop
  cfg.dp = si::FlopCosts{.tau = 2e-9, .eps = 2e-9};
  cfg.dram = {.tau_byte = 1e-9, .eps_byte = 2e-9};  // 1 GB/s, 2 nJ/B
  cfg.l1 = si::LevelCosts{.tau_byte = 1e-10, .eps_byte = 2e-10,
                          .capacity_bytes = 32 * 1024};
  cfg.random = si::RandomCosts{.tau_access = 1e-8, .eps_access = 5e-8};
  cfg.pi1 = 1.0;
  cfg.delta_pi = 10.0;
  cfg.noise.time_rel_sd = 0.0;
  cfg.noise.power_rel_sd = 0.0;
  cfg.rails = pm::mobile_board_rails();
  return cfg;
}

si::KernelDesc stream_kernel(double flops, double bytes,
                             co::MemLevel level = co::MemLevel::DRAM) {
  si::KernelDesc k;
  k.label = "test";
  k.flops = flops;
  k.bytes = bytes;
  k.level = level;
  return k;
}



TEST(SimMachine, IdealTimeMatchesRooflineModel) {
  const si::SimMachine m(toy_config());
  co::MachineParams params;
  params.tau_flop = 1e-9;
  params.eps_flop = 1e-9;
  params.tau_mem = 1e-9;
  params.eps_mem = 2e-9;
  params.pi1 = 1.0;
  params.delta_pi = 10.0;
  for (const double intensity : {0.125, 0.5, 2.0, 8.0, 64.0}) {
    const co::Workload w = co::Workload::from_intensity(1e10, intensity);
    const si::KernelDesc k = stream_kernel(w.flops, w.bytes);
    EXPECT_NEAR(m.ideal_time(k), co::time(params, w), 1e-12)
        << "I=" << intensity;
    EXPECT_NEAR(m.ideal_energy(k), co::energy(params, w),
                1e-9 * co::energy(params, w));
  }
}

TEST(SimMachine, RunMatchesIdealWithoutNoise) {
  const si::SimMachine m(toy_config());
  Rng rng(1);
  const si::KernelDesc k = stream_kernel(10e9, 5e9);
  const si::RunResult r = m.run(k, rng);
  EXPECT_NEAR(r.true_time, m.ideal_time(k), 1e-12);
}

TEST(SimMachine, TraceEnergySlightlyBelowSteadyStateBound) {
  // The ramp transient makes true energy land just below steady power x T.
  const si::SimMachine m(toy_config());
  Rng rng(2);
  const si::KernelDesc k = stream_kernel(10e9, 5e9);
  const si::RunResult r = m.run(k, rng);
  const double upper = m.ideal_energy(k);
  EXPECT_LE(r.true_energy, upper * (1 + 1e-9));
  EXPECT_GE(r.true_energy, 0.95 * upper);
}

TEST(SimMachine, NoiseIsDeterministicPerSeed) {
  si::SimConfig cfg = toy_config();
  cfg.noise.time_rel_sd = 0.05;
  const si::SimMachine m(cfg);
  const si::KernelDesc k = stream_kernel(1e9, 1e9);
  Rng r1(7);
  Rng r2(7);
  EXPECT_DOUBLE_EQ(m.run(k, r1).true_time, m.run(k, r2).true_time);
}

TEST(SimMachine, NoiseSpreadsRunTimes) {
  si::SimConfig cfg = toy_config();
  cfg.noise.time_rel_sd = 0.05;
  const si::SimMachine m(cfg);
  const si::KernelDesc k = stream_kernel(1e9, 1e9);
  Rng rng(8);
  double lo = 1e300;
  double hi = 0.0;
  for (int i = 0; i < 30; ++i) {
    const double t = m.run(k, rng).true_time;
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_GT(hi / lo, 1.02);
}

TEST(SimMachine, CapDroopLengthensThrottledRuns) {
  si::SimConfig base = toy_config();
  base.delta_pi = 2.0;  // force throttling at mid intensity
  si::SimConfig droopy = base;
  droopy.noise.cap_droop_eta = 0.2;
  const si::SimMachine m0(base);
  const si::SimMachine m1(droopy);
  const si::KernelDesc k = stream_kernel(10e9, 10e9);
  EXPECT_GT(m1.ideal_time(k), m0.ideal_time(k));
}

TEST(SimMachine, CapDroopInactiveOutsideCapRegime) {
  si::SimConfig base = toy_config();
  si::SimConfig droopy = base;
  droopy.noise.cap_droop_eta = 0.2;
  const si::SimMachine m0(base);
  const si::SimMachine m1(droopy);
  const si::KernelDesc k = stream_kernel(100e9, 1e9);  // compute bound
  EXPECT_DOUBLE_EQ(m1.ideal_time(k), m0.ideal_time(k));
}

TEST(SimMachine, OsBurstsRaiseMeasuredEnergy) {
  si::SimConfig base = toy_config();
  si::SimConfig bursty = base;
  bursty.noise.os_burst_rate_hz = 200.0;
  bursty.noise.os_burst_watts = 5.0;
  bursty.noise.os_burst_duration_s = 5e-3;
  const si::SimMachine m0(base);
  const si::SimMachine m1(bursty);
  const si::KernelDesc k = stream_kernel(1e9, 1e9);
  Rng r0(9);
  Rng r1(9);
  EXPECT_GT(m1.run(k, r1).true_energy, m0.run(k, r0).true_energy);
}

TEST(SimMachine, CacheLevelKernelsUseLevelCosts) {
  const si::SimMachine m(toy_config());
  const si::KernelDesc dram = stream_kernel(1e6, 10e9);
  const si::KernelDesc l1 = stream_kernel(1e6, 10e9, co::MemLevel::L1);
  EXPECT_GT(m.ideal_time(dram), m.ideal_time(l1));  // L1 is 10x faster
}

TEST(SimMachine, MissingLevelThrows) {
  const si::SimMachine m(toy_config());  // no L2 configured
  const si::KernelDesc k = stream_kernel(1.0, 1.0, co::MemLevel::L2);
  EXPECT_FALSE(m.supports(k));
  EXPECT_THROW((void)m.ideal_time(k), std::invalid_argument);
}

TEST(SimMachine, RandomKernelUsesAccessCosts) {
  const si::SimMachine m(toy_config());
  si::KernelDesc k;
  k.label = "chase";
  k.pattern = co::AccessPattern::Random;
  k.accesses = 1e8;
  k.working_set_bytes = 1e6;
  // 1e8 accesses * 10 ns = 1 s (energy 5 J < cap so no throttle).
  EXPECT_NEAR(m.ideal_time(k), 1.0, 1e-9);
  EXPECT_NEAR(m.ideal_energy(k), 5.0 + 1.0, 1e-6);
}

TEST(SimMachine, DoublePrecisionCostsApplied) {
  const si::SimMachine m(toy_config());
  si::KernelDesc k = stream_kernel(10e9, 1e9);
  k.precision = co::Precision::Double;
  EXPECT_NEAR(m.ideal_time(k), 20.0, 1e-9);
}

TEST(SimMachine, UnsupportedDoubleThrows) {
  si::SimConfig cfg = toy_config();
  cfg.dp.reset();
  const si::SimMachine m(cfg);
  si::KernelDesc k = stream_kernel(1e9, 1e9);
  k.precision = co::Precision::Double;
  EXPECT_FALSE(m.supports(k));
  EXPECT_THROW((void)m.ideal_time(k), std::invalid_argument);
}

TEST(SimMachine, CaptureCoversRunWindow) {
  const si::SimMachine m(toy_config());
  Rng rng(10);
  const si::KernelDesc k = stream_kernel(2e9, 1e9);
  const si::RunResult r = m.run(k, rng);
  EXPECT_DOUBLE_EQ(r.capture.window_begin, 0.0);
  EXPECT_NEAR(r.capture.window_end, r.true_time, 1e-12);
}

TEST(SimMachine, RegimeReported) {
  const si::SimMachine m(toy_config());
  Rng rng(11);
  EXPECT_EQ(m.run(stream_kernel(100e9, 1e9), rng).regime,
            co::Regime::Compute);
  EXPECT_EQ(m.run(stream_kernel(1e9, 100e9), rng).regime, co::Regime::Memory);
}

TEST(SimConfig, ValidationCatchesBadConfigs) {
  si::SimConfig cfg = toy_config();
  cfg.name.clear();
  EXPECT_THROW(si::SimMachine{cfg}, std::invalid_argument);
  cfg = toy_config();
  cfg.sp.tau = 0.0;
  EXPECT_THROW(si::SimMachine{cfg}, std::invalid_argument);
  cfg = toy_config();
  cfg.rails.clear();
  EXPECT_THROW(si::SimMachine{cfg}, std::invalid_argument);
  cfg = toy_config();
  cfg.delta_pi = 0.0;
  EXPECT_THROW(si::SimMachine{cfg}, std::invalid_argument);
}

TEST(KernelDesc, ValidationRules) {
  si::KernelDesc k;
  k.label = "empty";
  EXPECT_THROW(k.validate(), std::invalid_argument);
  k.flops = 1.0;
  EXPECT_NO_THROW(k.validate());
  k.pattern = co::AccessPattern::Random;
  EXPECT_THROW(k.validate(), std::invalid_argument);  // needs accesses
  k.accesses = 10.0;
  EXPECT_NO_THROW(k.validate());
}

TEST(KernelDesc, IntensityComputation) {
  si::KernelDesc k = stream_kernel(8.0, 2.0);
  EXPECT_DOUBLE_EQ(k.intensity(), 4.0);
  k.bytes = 0.0;
  EXPECT_TRUE(std::isinf(k.intensity()));
}

TEST(SimMachine, OversizedL1WorkingSetSpills) {
  // toy config: L1 capacity 32 KiB, no L2 -> spill lands in DRAM.
  const si::SimMachine m(toy_config());
  si::KernelDesc fits = stream_kernel(1e6, 1e9, co::MemLevel::L1);
  fits.working_set_bytes = 16 * 1024;
  si::KernelDesc spills = fits;
  spills.working_set_bytes = 256 * 1024;
  EXPECT_EQ(m.effective_level(co::MemLevel::L1, 16 * 1024),
            co::MemLevel::L1);
  EXPECT_EQ(m.effective_level(co::MemLevel::L1, 256 * 1024),
            co::MemLevel::DRAM);
  // DRAM is 10x slower than L1 in the toy machine.
  EXPECT_NEAR(m.ideal_time(spills), 10.0 * m.ideal_time(fits),
              0.1 * m.ideal_time(spills));
}

TEST(SimMachine, SpillPrefersL2WhenPresent) {
  si::SimConfig cfg = toy_config();
  cfg.l2 = si::LevelCosts{.tau_byte = 3e-10, .eps_byte = 5e-10,
                          .capacity_bytes = 512 * 1024};
  const si::SimMachine m(cfg);
  EXPECT_EQ(m.effective_level(co::MemLevel::L1, 256 * 1024),
            co::MemLevel::L2);
  EXPECT_EQ(m.effective_level(co::MemLevel::L1, 4e6), co::MemLevel::DRAM);
  EXPECT_EQ(m.effective_level(co::MemLevel::L2, 256 * 1024),
            co::MemLevel::L2);
}

TEST(SimMachine, ZeroWorkingSetNeverSpills) {
  const si::SimMachine m(toy_config());
  EXPECT_EQ(m.effective_level(co::MemLevel::L1, 0.0), co::MemLevel::L1);
  EXPECT_EQ(m.effective_level(co::MemLevel::DRAM, 1e12),
            co::MemLevel::DRAM);
}

TEST(SimMachine, WriteFractionScalesActiveEnergy) {
  si::SimConfig cfg = toy_config();
  cfg.dram.write_energy_factor = 2.0;
  const si::SimMachine m(cfg);
  si::KernelDesc reads = stream_kernel(1e6, 10e9);
  si::KernelDesc writes = reads;
  writes.write_fraction = 1.0;
  // Read-only: 10 GB * 2 nJ/B + pi1*T; all-writes doubles the byte term.
  const double t = m.ideal_time(reads);
  EXPECT_DOUBLE_EQ(m.ideal_time(writes), t);  // time unchanged
  const double read_active = m.ideal_energy(reads) - cfg.pi1 * t;
  const double write_active = m.ideal_energy(writes) - cfg.pi1 * t;
  EXPECT_NEAR(write_active, 2.0 * read_active - 2.0 * 1e6 * cfg.sp.eps +
                                1e6 * cfg.sp.eps,
              1e-6 * write_active);
}

TEST(SimMachine, UnitWriteFactorIgnoresWriteFraction) {
  const si::SimMachine m(toy_config());
  si::KernelDesc a = stream_kernel(1e6, 1e9);
  si::KernelDesc b = a;
  b.write_fraction = 0.5;
  EXPECT_DOUBLE_EQ(m.ideal_energy(a), m.ideal_energy(b));
}

TEST(KernelDesc, WriteFractionValidated) {
  si::KernelDesc k = stream_kernel(1.0, 1.0);
  k.write_fraction = 1.5;
  EXPECT_THROW(k.validate(), std::invalid_argument);
  k.write_fraction = -0.1;
  EXPECT_THROW(k.validate(), std::invalid_argument);
  k.write_fraction = 0.5;
  EXPECT_NO_THROW(k.validate());
}

}  // namespace
