// Tests for percentile bootstrap confidence intervals.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"

namespace {

namespace st = archline::stats;

std::vector<double> normal_sample(std::size_t n, double mu, double sd,
                                  std::uint64_t seed) {
  st::Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.normal(mu, sd);
  return xs;
}

TEST(Bootstrap, EstimateMatchesStatistic) {
  const std::vector<double> xs = normal_sample(200, 5.0, 1.0, 1);
  st::Rng rng(2);
  const auto ci = st::bootstrap_ci(
      xs, [](std::span<const double> s) { return st::mean(s); }, rng);
  EXPECT_DOUBLE_EQ(ci.estimate, st::mean(xs));
}

TEST(Bootstrap, IntervalContainsEstimate) {
  const std::vector<double> xs = normal_sample(100, 0.0, 1.0, 3);
  st::Rng rng(4);
  const auto ci = st::bootstrap_ci(
      xs, [](std::span<const double> s) { return st::median(s); }, rng);
  EXPECT_LE(ci.lo, ci.hi);
  EXPECT_TRUE(ci.contains(ci.estimate));
}

TEST(Bootstrap, CoversTrueMeanUsually) {
  int covered = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> xs =
        normal_sample(150, 10.0, 2.0, 100 + trial);
    st::Rng rng(200 + trial);
    const auto ci = st::bootstrap_ci(
        xs, [](std::span<const double> s) { return st::mean(s); }, rng, 500);
    if (ci.contains(10.0)) ++covered;
  }
  EXPECT_GE(covered, 16);  // nominal 95% coverage, generous slack
}

TEST(Bootstrap, WiderAtHigherConfidence) {
  const std::vector<double> xs = normal_sample(80, 0.0, 1.0, 7);
  st::Rng rng1(8);
  st::Rng rng2(8);
  const auto narrow = st::bootstrap_ci(
      xs, [](std::span<const double> s) { return st::mean(s); }, rng1, 2000,
      0.80);
  const auto wide = st::bootstrap_ci(
      xs, [](std::span<const double> s) { return st::mean(s); }, rng2, 2000,
      0.99);
  EXPECT_GT(wide.hi - wide.lo, narrow.hi - narrow.lo);
}

TEST(Bootstrap, DeterministicGivenSeed) {
  const std::vector<double> xs = normal_sample(50, 1.0, 1.0, 9);
  st::Rng rng1(10);
  st::Rng rng2(10);
  const auto a = st::bootstrap_ci(
      xs, [](std::span<const double> s) { return st::median(s); }, rng1);
  const auto b = st::bootstrap_ci(
      xs, [](std::span<const double> s) { return st::median(s); }, rng2);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, EmptySampleThrows) {
  st::Rng rng(1);
  const std::vector<double> empty;
  EXPECT_THROW((void)st::bootstrap_ci(
                   empty,
                   [](std::span<const double> s) { return st::mean(s); },
                   rng),
               std::invalid_argument);
}

TEST(Bootstrap, BadParametersThrow) {
  st::Rng rng(1);
  const std::vector<double> xs = {1.0, 2.0};
  const auto stat = [](std::span<const double> s) { return st::mean(s); };
  EXPECT_THROW((void)st::bootstrap_ci(xs, stat, rng, 1), std::invalid_argument);
  EXPECT_THROW((void)st::bootstrap_ci(xs, stat, rng, 100, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)st::bootstrap_ci(xs, stat, rng, 100, 1.0),
               std::invalid_argument);
}

}  // namespace
