// Tests for parameter elasticities — including the analytic identities
// the sensitivity definition must obey.

#include <gtest/gtest.h>
#include <cmath>

#include <stdexcept>

#include "core/sensitivity.hpp"
#include "platforms/spec.hpp"
#include "platforms/platform_db.hpp"

namespace {

namespace co = archline::core;
namespace pl = archline::platforms;

co::MachineParams titan() { return pl::platform("GTX Titan").machine(); }

TEST(WithParamScaled, ScalesTheRightField) {
  const co::MachineParams m = titan();
  EXPECT_DOUBLE_EQ(co::with_param_scaled(m, co::Param::TauFlop, 2.0).tau_flop,
                   2.0 * m.tau_flop);
  EXPECT_DOUBLE_EQ(co::with_param_scaled(m, co::Param::Pi1, 0.5).pi1,
                   0.5 * m.pi1);
  EXPECT_DOUBLE_EQ(
      co::with_param_scaled(m, co::Param::DeltaPi, 2.0).delta_pi,
      2.0 * m.delta_pi);
  // Untouched fields stay put.
  EXPECT_DOUBLE_EQ(co::with_param_scaled(m, co::Param::EpsMem, 3.0).eps_flop,
                   m.eps_flop);
}

TEST(WithParamScaled, RejectsNonPositiveFactor) {
  EXPECT_THROW((void)co::with_param_scaled(titan(), co::Param::Pi1, 0.0),
               std::invalid_argument);
}

TEST(Elasticity, MemoryBoundPerformanceIdentities) {
  // Deep in the memory-bound regime: perf = I / tau_mem, so elasticity to
  // tau_mem is -1 and to tau_flop is 0.
  const co::MachineParams m = titan();
  const double intensity = 0.02;  // far below B- ~ 4
  EXPECT_NEAR(co::elasticity(m, co::Param::TauMem,
                             co::Metric::Performance, intensity),
              -1.0, 1e-6);
  EXPECT_NEAR(co::elasticity(m, co::Param::TauFlop,
                             co::Metric::Performance, intensity),
              0.0, 1e-9);
}

TEST(Elasticity, ComputeBoundPerformanceIdentities) {
  const co::MachineParams m = titan();
  const double intensity = 4096.0;  // far above B+
  EXPECT_NEAR(co::elasticity(m, co::Param::TauFlop,
                             co::Metric::Performance, intensity),
              -1.0, 1e-6);
  EXPECT_NEAR(co::elasticity(m, co::Param::TauMem,
                             co::Metric::Performance, intensity),
              0.0, 1e-9);
}

TEST(Elasticity, CapBoundPerformanceFollowsDeltaPi) {
  // Inside the cap window, T = E_active / delta_pi: elasticity of perf to
  // delta_pi is +1.
  const co::MachineParams m = titan();
  const double mid = std::sqrt(m.balance_lo() * m.balance_hi());
  EXPECT_NEAR(co::elasticity(m, co::Param::DeltaPi,
                             co::Metric::Performance, mid),
              1.0, 1e-6);
}

TEST(Elasticity, EfficiencyWeightsSumToMinusOne) {
  // E/W = eps_flop + eps_mem/I + pi1 * T/W is 1-homogeneous in
  // (eps_flop, eps_mem, pi1) outside the cap regime, so the efficiency
  // elasticities to those three sum to -1.
  const co::MachineParams m = titan();
  for (const double intensity : {0.02, 4096.0}) {
    const double sum =
        co::elasticity(m, co::Param::EpsFlop,
                       co::Metric::EnergyEfficiency, intensity) +
        co::elasticity(m, co::Param::EpsMem,
                       co::Metric::EnergyEfficiency, intensity) +
        co::elasticity(m, co::Param::Pi1, co::Metric::EnergyEfficiency,
                       intensity);
    EXPECT_NEAR(sum, -1.0, 1e-4) << intensity;
  }
}

TEST(Elasticity, UncappedMachineInsensitiveToDeltaPi) {
  const co::MachineParams u = titan().without_cap();
  EXPECT_DOUBLE_EQ(co::elasticity(u, co::Param::DeltaPi,
                                  co::Metric::Performance, 4.0),
                   0.0);
}

TEST(Elasticity, ZeroPi1HandledGracefully) {
  co::MachineParams m = titan();
  m.pi1 = 0.0;
  EXPECT_DOUBLE_EQ(co::elasticity(m, co::Param::Pi1,
                                  co::Metric::EnergyEfficiency, 4.0),
                   0.0);
}

TEST(Elasticity, BadStepThrows) {
  EXPECT_THROW((void)co::elasticity(titan(), co::Param::Pi1,
                                    co::Metric::Power, 1.0, 0.0),
               std::invalid_argument);
}

TEST(SensitivityProfile, DominantPicksLargestMagnitude) {
  const co::SensitivityProfile s = co::sensitivity_profile(
      titan(), co::Metric::Performance, 0.02);
  EXPECT_EQ(s.dominant(), co::Param::TauMem);
  const co::SensitivityProfile c = co::sensitivity_profile(
      titan(), co::Metric::Performance, 4096.0);
  EXPECT_EQ(c.dominant(), co::Param::TauFlop);
}

TEST(SensitivityProfile, Pi1DominatesEfficiencyOnHighPi1Platforms) {
  // §VI: constant power is the critical limiting factor. On the Xeon Phi
  // (pi1 = 83% of max power), pi1 is a top energy lever. Note pi1 and
  // the binding tau share elasticity magnitude exactly (they enter as the
  // product pi1 * T), so "dominant" can tie: assert pi1 is both large in
  // absolute terms and within a whisker of the maximum.
  const co::SensitivityProfile s = co::sensitivity_profile(
      pl::platform("Xeon Phi").machine(), co::Metric::EnergyEfficiency,
      4.0);
  EXPECT_LT(s[co::Param::Pi1], -0.7);
  EXPECT_GE(std::abs(s[co::Param::Pi1]),
            std::abs(s[s.dominant()]) - 1e-6);
}

TEST(SensitivityProfile, IndexingMatchesParamOrder) {
  const co::SensitivityProfile s =
      co::sensitivity_profile(titan(), co::Metric::Power, 1.0);
  for (std::size_t i = 0; i < co::kAllParams.size(); ++i)
    EXPECT_DOUBLE_EQ(s[co::kAllParams[i]], s.values[i]);
}

TEST(ParamNames, AllNamed) {
  for (const co::Param p : co::kAllParams)
    EXPECT_STRNE(co::to_string(p), "?");
}


TEST(SensitivityOverPoints, ProfilePerPointMatchesAppliedMachine) {
  const pl::PlatformSpec& spec = pl::platform("Xeon Phi");
  const auto profiles = co::sensitivity_over_points(
      spec.machine(), spec.operating_points.points,
      co::Metric::EnergyEfficiency, 4.0);
  ASSERT_EQ(profiles.size(), spec.operating_points.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const co::SensitivityProfile direct = co::sensitivity_profile(
        spec.machine_at_point(i), co::Metric::EnergyEfficiency, 4.0);
    for (std::size_t j = 0; j < co::kAllParams.size(); ++j)
      EXPECT_DOUBLE_EQ(profiles[i].values[j], direct.values[j])
          << "point " << i << " param " << j;
  }
}

}  // namespace
