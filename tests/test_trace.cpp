// Tests for powermon::PowerTrace and Capture.

#include <gtest/gtest.h>

#include <stdexcept>

#include "powermon/trace.hpp"

namespace {

namespace pm = archline::powermon;

TEST(PowerTrace, EmptyTraceIsZero) {
  const pm::PowerTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.value(1.0), 0.0);
  EXPECT_DOUBLE_EQ(t.total_energy(), 0.0);
}

TEST(PowerTrace, ConstantSegment) {
  pm::PowerTrace t;
  t.add_constant(2.0, 50.0);
  EXPECT_DOUBLE_EQ(t.value(1.0), 50.0);
  EXPECT_DOUBLE_EQ(t.total_energy(), 100.0);
  EXPECT_DOUBLE_EQ(t.duration(), 2.0);
}

TEST(PowerTrace, LinearInterpolation) {
  pm::PowerTrace t;
  t.add_point(0.0, 0.0);
  t.add_point(10.0, 100.0);
  EXPECT_DOUBLE_EQ(t.value(5.0), 50.0);
  EXPECT_DOUBLE_EQ(t.value(2.5), 25.0);
}

TEST(PowerTrace, ConstantExtrapolationOutsideSpan) {
  pm::PowerTrace t;
  t.add_point(1.0, 10.0);
  t.add_point(2.0, 20.0);
  EXPECT_DOUBLE_EQ(t.value(0.0), 10.0);
  EXPECT_DOUBLE_EQ(t.value(5.0), 20.0);
}

TEST(PowerTrace, RampIntegralIsExact) {
  pm::PowerTrace t;
  t.add_point(0.0, 0.0);
  t.add_ramp(4.0, 100.0);  // triangle: area = 200
  EXPECT_DOUBLE_EQ(t.total_energy(), 200.0);
}

TEST(PowerTrace, PartialIntegral) {
  pm::PowerTrace t;
  t.add_constant(10.0, 10.0);
  EXPECT_DOUBLE_EQ(t.integral(2.0, 5.0), 30.0);
}

TEST(PowerTrace, IntegralAcrossSegments) {
  pm::PowerTrace t;
  t.add_point(0.0, 0.0);
  t.add_point(1.0, 10.0);   // triangle area 5
  t.add_point(3.0, 10.0);   // rectangle area 20
  EXPECT_DOUBLE_EQ(t.total_energy(), 25.0);
  // value(0.5) = 5; 0.5..1 trapezoid = (5+10)/2 * 0.5 = 3.75; 1..2 = 10.
  EXPECT_DOUBLE_EQ(t.integral(0.5, 2.0), 13.75);
}

TEST(PowerTrace, EmptyIntervalIntegralIsZero) {
  pm::PowerTrace t;
  t.add_constant(1.0, 5.0);
  EXPECT_DOUBLE_EQ(t.integral(0.5, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(t.integral(0.7, 0.3), 0.0);
}

TEST(PowerTrace, RejectsBackwardsTime) {
  pm::PowerTrace t;
  t.add_point(1.0, 5.0);
  EXPECT_THROW(t.add_point(0.5, 5.0), std::invalid_argument);
}

TEST(PowerTrace, RejectsNegativePower) {
  pm::PowerTrace t;
  EXPECT_THROW(t.add_point(0.0, -1.0), std::invalid_argument);
}

TEST(PowerTrace, RejectsNonFinite) {
  pm::PowerTrace t;
  EXPECT_THROW(t.add_point(0.0, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(PowerTrace, RampNeedsStartingPoint) {
  pm::PowerTrace t;
  EXPECT_THROW(t.add_ramp(1.0, 5.0), std::invalid_argument);
}

TEST(PowerTrace, ScaledMultipliesPower) {
  pm::PowerTrace t;
  t.add_constant(2.0, 10.0);
  const pm::PowerTrace half = t.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.value(1.0), 5.0);
  EXPECT_DOUBLE_EQ(half.total_energy(), 10.0);
}

TEST(PowerTrace, ScaledRejectsNegative) {
  pm::PowerTrace t;
  t.add_constant(1.0, 1.0);
  EXPECT_THROW((void)t.scaled(-1.0), std::invalid_argument);
}

TEST(SplitAcrossRails, FractionsMustSumToOne) {
  pm::PowerTrace t;
  t.add_constant(1.0, 100.0);
  std::vector<pm::RailSplit> rails = {
      {.channel = {.name = "a"}, .fraction = 0.5},
      {.channel = {.name = "b"}, .fraction = 0.4},
  };
  EXPECT_THROW((void)pm::split_across_rails(t, rails, 0.0, 1.0),
               std::invalid_argument);
}

TEST(SplitAcrossRails, EnergyIsConserved) {
  pm::PowerTrace t;
  t.add_constant(2.0, 100.0);
  const pm::Capture cap =
      pm::split_across_rails(t, pm::discrete_gpu_rails(), 0.0, 2.0);
  EXPECT_EQ(cap.rails.size(), 3u);
  EXPECT_NEAR(cap.true_energy(), 200.0, 1e-9);
  EXPECT_NEAR(cap.true_avg_power(), 100.0, 1e-9);
}

TEST(SplitAcrossRails, NoRailsThrows) {
  pm::PowerTrace t;
  t.add_constant(1.0, 1.0);
  EXPECT_THROW((void)pm::split_across_rails(t, {}, 0.0, 1.0),
               std::invalid_argument);
}

TEST(RailPresets, FractionsSumToOne) {
  for (const auto& rails :
       {pm::mobile_board_rails(), pm::cpu_rails(), pm::discrete_gpu_rails()}) {
    double total = 0.0;
    for (const pm::RailSplit& r : rails) total += r.fraction;
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(RailPresets, GpuUsesInterposerForSlotPower) {
  const auto rails = pm::discrete_gpu_rails();
  bool found = false;
  for (const pm::RailSplit& r : rails)
    if (r.channel.probe == pm::ProbeKind::PcieInterposer) found = true;
  EXPECT_TRUE(found);
}

TEST(Capture, WindowedEnergyOnly) {
  pm::PowerTrace t;
  t.add_constant(10.0, 10.0);
  pm::Capture cap;
  cap.rails.push_back({.channel = {.name = "x"}, .trace = t});
  cap.window_begin = 2.0;
  cap.window_end = 4.0;
  EXPECT_DOUBLE_EQ(cap.true_energy(), 20.0);
}

TEST(Capture, EmptyWindowPowerIsZero) {
  pm::Capture cap;
  cap.window_begin = 1.0;
  cap.window_end = 1.0;
  EXPECT_DOUBLE_EQ(cap.true_avg_power(), 0.0);
}

}  // namespace
