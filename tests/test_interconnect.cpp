// Tests for the interconnect-overhead extension: quantifying the paper's
// "best-case ignores the network" caveat.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/interconnect.hpp"
#include "core/roofline.hpp"
#include "core/scenarios.hpp"
#include "platforms/platform_db.hpp"

namespace {

namespace co = archline::core;
namespace pl = archline::platforms;

co::MachineParams titan() { return pl::platform("GTX Titan").machine(); }
co::MachineParams arndale() { return pl::platform("Arndale GPU").machine(); }

TEST(NetworkModel, ValidationRules) {
  co::NetworkModel net;
  EXPECT_NO_THROW(net.validate());
  net.per_block_watts = -1.0;
  EXPECT_THROW(net.validate(), std::invalid_argument);
  net = {};
  net.parallel_efficiency = 0.0;
  EXPECT_THROW(net.validate(), std::invalid_argument);
  net.parallel_efficiency = 1.1;
  EXPECT_THROW(net.validate(), std::invalid_argument);
}

TEST(AggregateWithNetwork, FreeIdealNetworkMatchesPlainAggregate) {
  const co::MachineParams a = co::aggregate(arndale(), 10);
  const co::MachineParams b =
      co::aggregate_with_network(arndale(), 10, co::NetworkModel{});
  EXPECT_DOUBLE_EQ(a.tau_flop, b.tau_flop);
  EXPECT_DOUBLE_EQ(a.pi1, b.pi1);
  EXPECT_DOUBLE_EQ(a.delta_pi, b.delta_pi);
}

TEST(AggregateWithNetwork, OverheadAddsToConstantPower) {
  const co::NetworkModel net{.per_block_watts = 2.0,
                             .parallel_efficiency = 1.0};
  const co::MachineParams agg =
      co::aggregate_with_network(arndale(), 10, net);
  EXPECT_DOUBLE_EQ(agg.pi1, 10.0 * arndale().pi1 + 20.0);
}

TEST(AggregateWithNetwork, EfficiencyScalesThroughput) {
  const co::NetworkModel net{.per_block_watts = 0.0,
                             .parallel_efficiency = 0.8};
  const co::MachineParams agg =
      co::aggregate_with_network(arndale(), 10, net);
  EXPECT_NEAR(agg.peak_flops(), 8.0 * arndale().peak_flops(),
              1e-6 * agg.peak_flops());
}

TEST(AggregateWithNetwork, BadCountThrows) {
  EXPECT_THROW(
      (void)co::aggregate_with_network(arndale(), 0, co::NetworkModel{}),
      std::invalid_argument);
}

TEST(BlocksWithinBudget, MatchesHandComputation) {
  // Arndale: pi1 + dpi = 6.11 W; +1.89 W network = 8 W per block.
  const co::NetworkModel net{.per_block_watts = 1.89,
                             .parallel_efficiency = 1.0};
  EXPECT_EQ(co::blocks_within_budget(arndale(), net, 80.0), 10);
}

TEST(BlocksWithinBudget, ZeroWhenBlockTooBig) {
  const co::NetworkModel net{.per_block_watts = 0.0,
                             .parallel_efficiency = 1.0};
  EXPECT_EQ(co::blocks_within_budget(titan(), net, 100.0), 0);
}

TEST(BlocksWithinBudget, NetworkOverheadShrinksCount) {
  const double budget = titan().pi1 + titan().delta_pi;
  const co::NetworkModel free{.per_block_watts = 0.0,
                              .parallel_efficiency = 1.0};
  const co::NetworkModel costly{.per_block_watts = 3.0,
                                .parallel_efficiency = 1.0};
  EXPECT_GT(co::blocks_within_budget(arndale(), free, budget),
            co::blocks_within_budget(arndale(), costly, budget));
}

TEST(BreakEven, ExistsForBandwidthBoundComparison) {
  // At I = 0.25 the free-network Arndale aggregate beats the Titan by
  // ~1.65x; some per-block overhead erases that.
  const double watts = co::break_even_network_watts(titan(), arndale(),
                                                    0.25);
  EXPECT_GT(watts, 0.1);
  EXPECT_LT(watts, 10.0);

  // Just below break-even the aggregate still wins; just above it loses.
  const double budget = titan().pi1 + titan().delta_pi;
  for (const double sign : {-1.0, 1.0}) {
    const co::NetworkModel net{.per_block_watts = watts + sign * 0.05,
                               .parallel_efficiency = 1.0};
    const int n = co::blocks_within_budget(arndale(), net, budget);
    ASSERT_GE(n, 1);
    const co::MachineParams agg =
        co::aggregate_with_network(arndale(), n, net);
    const bool wins =
        co::performance(agg, 0.25) > co::performance(titan(), 0.25);
    EXPECT_EQ(wins, sign < 0.0) << "at offset " << sign;
  }
}

TEST(BreakEven, NegativeWhenAggregateNeverWins) {
  // At compute-bound intensities the Arndale aggregate loses even with a
  // free network (Fig. 1: "less than 1/2" of Titan's peak).
  EXPECT_LT(co::break_even_network_watts(titan(), arndale(), 128.0), 0.0);
}

TEST(BreakEven, LowerParallelEfficiencyLowersBreakEven) {
  const double ideal =
      co::break_even_network_watts(titan(), arndale(), 0.25, 1.0);
  const double lossy =
      co::break_even_network_watts(titan(), arndale(), 0.25, 0.7);
  EXPECT_LT(lossy, ideal);
}

}  // namespace
