// Tests for the simulated PowerMon 2 sampler: rates, derating,
// quantization, determinism.

#include <gtest/gtest.h>
#include <cmath>

#include <stdexcept>

#include "powermon/sampler.hpp"

namespace {

namespace pm = archline::powermon;
using archline::stats::Rng;

pm::Capture constant_capture(double watts, double duration,
                             std::size_t rails = 1) {
  pm::PowerTrace t;
  t.add_constant(duration, watts);
  pm::Capture cap;
  for (std::size_t i = 0; i < rails; ++i)
    cap.rails.push_back(
        {.channel = {.name = "rail" + std::to_string(i),
                     .nominal_volts = 12.0},
         .trace = t.scaled(1.0 / static_cast<double>(rails))});
  cap.window_begin = 0.0;
  cap.window_end = duration;
  return cap;
}

TEST(EffectiveRate, FullRateUpToThreeChannels) {
  const pm::SamplerConfig cfg;
  EXPECT_DOUBLE_EQ(pm::effective_rate(cfg, 1), 1024.0);
  EXPECT_DOUBLE_EQ(pm::effective_rate(cfg, 2), 1024.0);
  EXPECT_DOUBLE_EQ(pm::effective_rate(cfg, 3), 1024.0);
}

TEST(EffectiveRate, DeratesBeyondAggregateBudget) {
  const pm::SamplerConfig cfg;
  EXPECT_DOUBLE_EQ(pm::effective_rate(cfg, 4), 768.0);
  EXPECT_DOUBLE_EQ(pm::effective_rate(cfg, 8), 384.0);
}

TEST(EffectiveRate, ZeroChannelsThrows) {
  EXPECT_THROW((void)pm::effective_rate(pm::SamplerConfig{}, 0),
               std::invalid_argument);
}

TEST(Sampler, SampleCountMatchesRateAndWindow) {
  Rng rng(1);
  const auto sampled =
      pm::sample(constant_capture(60.0, 1.0), pm::SamplerConfig{}, rng);
  ASSERT_EQ(sampled.channels.size(), 1u);
  // 1 second at 1024 Hz -> 1025 samples (inclusive endpoints).
  EXPECT_NEAR(static_cast<double>(sampled.channels[0].samples.size()),
              1025.0, 1.0);
  EXPECT_DOUBLE_EQ(sampled.channels[0].effective_hz, 1024.0);
}

TEST(Sampler, ConstantTraceSamplesNearTruth) {
  Rng rng(2);
  const auto sampled =
      pm::sample(constant_capture(60.0, 0.5), pm::SamplerConfig{}, rng);
  for (const pm::Sample& s : sampled.channels[0].samples)
    EXPECT_NEAR(s.watts(), 60.0, 0.2);  // quantization error only
}

TEST(Sampler, QuantizationDisabledIsExact) {
  Rng rng(3);
  pm::SamplerConfig cfg;
  cfg.quantize = false;
  const auto sampled = pm::sample(constant_capture(60.0, 0.5), cfg, rng);
  for (const pm::Sample& s : sampled.channels[0].samples)
    EXPECT_DOUBLE_EQ(s.watts(), 60.0);
}

TEST(Sampler, QuantizationGridIs12Bit) {
  Rng rng(4);
  pm::SamplerConfig cfg;
  cfg.timestamp_jitter_s = 0.0;
  const auto sampled = pm::sample(constant_capture(37.7, 0.1), cfg, rng);
  // Voltage reading must land on a 12-bit grid over 26 V.
  const double volts = sampled.channels[0].samples[0].volts;
  const double levels = 4095.0;
  const double code = volts / 26.0 * levels;
  EXPECT_NEAR(code, std::round(code), 1e-9);
}

TEST(Sampler, TooManyRailsThrows) {
  Rng rng(5);
  EXPECT_THROW(
      (void)pm::sample(constant_capture(10.0, 0.1, 9), pm::SamplerConfig{},
                       rng),
      std::invalid_argument);
}

TEST(Sampler, EmptyWindowThrows) {
  Rng rng(6);
  pm::Capture cap = constant_capture(10.0, 1.0);
  cap.window_end = cap.window_begin;
  EXPECT_THROW((void)pm::sample(cap, pm::SamplerConfig{}, rng),
               std::invalid_argument);
}

TEST(Sampler, NoRailsThrows) {
  Rng rng(7);
  pm::Capture cap;
  cap.window_end = 1.0;
  EXPECT_THROW((void)pm::sample(cap, pm::SamplerConfig{}, rng),
               std::invalid_argument);
}

TEST(Sampler, DeterministicGivenSeed) {
  Rng rng1(42);
  Rng rng2(42);
  const auto a =
      pm::sample(constant_capture(33.0, 0.2), pm::SamplerConfig{}, rng1);
  const auto b =
      pm::sample(constant_capture(33.0, 0.2), pm::SamplerConfig{}, rng2);
  ASSERT_EQ(a.channels[0].samples.size(), b.channels[0].samples.size());
  for (std::size_t i = 0; i < a.channels[0].samples.size(); ++i)
    EXPECT_DOUBLE_EQ(a.channels[0].samples[i].watts(),
                     b.channels[0].samples[i].watts());
}

TEST(Sampler, MultiRailKeepsPerChannelStreams) {
  Rng rng(8);
  const auto sampled =
      pm::sample(constant_capture(90.0, 0.25, 3), pm::SamplerConfig{}, rng);
  EXPECT_EQ(sampled.channels.size(), 3u);
  for (const auto& ch : sampled.channels)
    EXPECT_FALSE(ch.samples.empty());
}

TEST(Sampler, FourRailsRunDerated) {
  Rng rng(9);
  const auto sampled =
      pm::sample(constant_capture(90.0, 0.25, 4), pm::SamplerConfig{}, rng);
  for (const auto& ch : sampled.channels)
    EXPECT_DOUBLE_EQ(ch.effective_hz, 768.0);
}

TEST(Sampler, RampTraceCapturedFaithfully) {
  pm::PowerTrace t;
  t.add_point(0.0, 0.0);
  t.add_point(1.0, 100.0);
  pm::Capture cap;
  cap.rails.push_back({.channel = {.name = "x", .nominal_volts = 12.0},
                       .trace = t});
  cap.window_end = 1.0;
  Rng rng(10);
  pm::SamplerConfig cfg;
  cfg.timestamp_jitter_s = 0.0;
  const auto sampled = pm::sample(cap, cfg, rng);
  // Mid-window sample should read ~half power.
  const auto& xs = sampled.channels[0].samples;
  const pm::Sample& mid = xs[xs.size() / 2];
  EXPECT_NEAR(mid.watts(), 100.0 * mid.t, 1.0);
}

}  // namespace
