// Tests for the native (actually-executing) host kernels. These run real
// loops, so assertions stick to accounting and coarse physics (time > 0,
// more work takes longer), not absolute throughput.

#include <gtest/gtest.h>
#include <cmath>

#include <stdexcept>

#include "microbench/native_kernels.hpp"

namespace {

namespace mb = archline::microbench;
namespace co = archline::core;
using archline::stats::Rng;

TEST(IntensityLadder, AccountingMatchesParameters) {
  const mb::NativeResult r =
      mb::run_intensity_ladder(1 << 14, 8, co::Precision::Single);
  // 8 flops/element = 4 FMA rungs x 2 flop.
  EXPECT_DOUBLE_EQ(r.flops, 8.0 * (1 << 14));
  EXPECT_DOUBLE_EQ(r.bytes, 4.0 * (1 << 14));
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.intensity(), 2.0);
}

TEST(IntensityLadder, DoublePrecisionDoublesTraffic) {
  const mb::NativeResult s =
      mb::run_intensity_ladder(1 << 12, 4, co::Precision::Single);
  const mb::NativeResult d =
      mb::run_intensity_ladder(1 << 12, 4, co::Precision::Double);
  EXPECT_DOUBLE_EQ(d.bytes, 2.0 * s.bytes);
}

TEST(IntensityLadder, PassesMultiplyWork) {
  const mb::NativeResult one =
      mb::run_intensity_ladder(1 << 12, 4, co::Precision::Single, 1);
  const mb::NativeResult three =
      mb::run_intensity_ladder(1 << 12, 4, co::Precision::Single, 3);
  EXPECT_DOUBLE_EQ(three.flops, 3.0 * one.flops);
}

TEST(IntensityLadder, ChecksumIsFinite) {
  const mb::NativeResult r =
      mb::run_intensity_ladder(1 << 10, 16, co::Precision::Double);
  EXPECT_TRUE(std::isfinite(r.checksum));
  EXPECT_NE(r.checksum, 0.0);
}

TEST(IntensityLadder, MoreFlopsPerElementTakesLonger) {
  // Coarse physics: 64x the arithmetic should not be faster.
  const std::size_t n = 1 << 16;
  const mb::NativeResult light =
      mb::run_intensity_ladder(n, 2, co::Precision::Single, 4);
  const mb::NativeResult heavy =
      mb::run_intensity_ladder(n, 128, co::Precision::Single, 4);
  EXPECT_GT(heavy.seconds, light.seconds);
}

TEST(IntensityLadder, RejectsBadArguments) {
  EXPECT_THROW((void)mb::run_intensity_ladder(0, 4, co::Precision::Single),
               std::invalid_argument);
  EXPECT_THROW((void)mb::run_intensity_ladder(16, 0, co::Precision::Single),
               std::invalid_argument);
  EXPECT_THROW(
      (void)mb::run_intensity_ladder(16, 4, co::Precision::Single, 0),
      std::invalid_argument);
}

TEST(StreamTriad, AccountingPerElement) {
  const mb::NativeResult r =
      mb::run_stream_triad(1 << 14, co::Precision::Single);
  EXPECT_DOUBLE_EQ(r.flops, 2.0 * (1 << 14));
  EXPECT_DOUBLE_EQ(r.bytes, 12.0 * (1 << 14));  // 3 floats per element
  EXPECT_GT(r.seconds, 0.0);
}

TEST(StreamTriad, ComputesCorrectValues) {
  const mb::NativeResult r =
      mb::run_stream_triad(1 << 10, co::Precision::Double);
  // a[mid] = b[mid] + 3 * c[mid]; both inputs derived from index patterns.
  const std::size_t mid = (1 << 10) / 2;
  const double expect = (mid % 13) * 0.5 + 3.0 * ((mid % 7) * 0.25);
  EXPECT_DOUBLE_EQ(r.checksum, expect);
}

TEST(StreamTriad, RejectsEmpty) {
  EXPECT_THROW((void)mb::run_stream_triad(0, co::Precision::Single),
               std::invalid_argument);
}

TEST(PointerChase, VisitsRequestedSteps) {
  Rng rng(1);
  const mb::NativeResult r = mb::run_pointer_chase(1 << 12, 1 << 16, rng);
  EXPECT_DOUBLE_EQ(r.accesses, 1 << 16);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.accesses_per_second(), 0.0);
}

TEST(PointerChase, FullCycleReturnsToStart) {
  Rng rng(2);
  const std::size_t slots = 4096;
  const mb::NativeResult r = mb::run_pointer_chase(slots, slots, rng);
  // After exactly n steps around a single n-cycle we are back at slot 0.
  EXPECT_DOUBLE_EQ(r.checksum, 0.0);
}

TEST(PointerChase, PartialWalkIsNotAtStart) {
  Rng rng(3);
  const mb::NativeResult r = mb::run_pointer_chase(4096, 2048, rng);
  EXPECT_NE(r.checksum, 0.0);
}

TEST(PointerChase, RejectsBadArguments) {
  Rng rng(4);
  EXPECT_THROW((void)mb::run_pointer_chase(1, 10, rng),
               std::invalid_argument);
  EXPECT_THROW((void)mb::run_pointer_chase(16, 0, rng),
               std::invalid_argument);
}

TEST(NativeSweep, OneResultPerRung) {
  const auto results = mb::native_intensity_sweep(
      1 << 12, {2, 8, 32}, co::Precision::Single);
  ASSERT_EQ(results.size(), 3u);
  // Intensity climbs with the ladder.
  EXPECT_LT(results[0].intensity(), results[1].intensity());
  EXPECT_LT(results[1].intensity(), results[2].intensity());
}

}  // namespace
