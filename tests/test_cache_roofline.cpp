// Tests for the cache-aware roofline and double-precision experiments.

#include <gtest/gtest.h>

#include <stdexcept>

#include "experiments/exp_cache_roofline.hpp"
#include "experiments/exp_dp.hpp"
#include "platforms/platform_db.hpp"

namespace {

namespace ex = archline::experiments;
namespace co = archline::core;
namespace pl = archline::platforms;

ex::CacheRooflineOptions model_only() {
  ex::CacheRooflineOptions opt;
  opt.with_measurements = false;
  return opt;
}

TEST(CacheRoofline, PhiHasAllThreeLevels) {
  const auto r = ex::run_cache_roofline("Xeon Phi", model_only());
  ASSERT_EQ(r.levels.size(), 3u);
  EXPECT_EQ(r.levels[0].level, co::MemLevel::L1);
  EXPECT_EQ(r.levels[1].level, co::MemLevel::L2);
  EXPECT_EQ(r.levels[2].level, co::MemLevel::DRAM);
}

TEST(CacheRoofline, RidgePointsGrowOutward) {
  // Faster levels have lower balance: the compute-bound region widens as
  // the working set moves toward the core.
  const auto r = ex::run_cache_roofline("Xeon Phi", model_only());
  const auto ridges = r.ridge_points();
  ASSERT_EQ(ridges.size(), 3u);
  EXPECT_LT(ridges[0], ridges[1]);  // L1 < L2
  EXPECT_LT(ridges[1], ridges[2]);  // L2 < DRAM
}

TEST(CacheRoofline, InnerLevelsNeverSlower) {
  const auto r = ex::run_cache_roofline("Desktop CPU", model_only());
  ASSERT_EQ(r.levels.size(), 3u);
  for (std::size_t i = 0; i < r.levels[0].points.size(); ++i) {
    const double l1 = r.levels[0].points[i].model_perf;
    const double l2 = r.levels[1].points[i].model_perf;
    const double dram = r.levels[2].points[i].model_perf;
    EXPECT_GE(l1, l2 * (1 - 1e-12)) << i;
    EXPECT_GE(l2, dram * (1 - 1e-12)) << i;
  }
}

TEST(CacheRoofline, UnknownPlatformThrows) {
  EXPECT_THROW((void)ex::run_cache_roofline("GTX 9090", model_only()),
               std::out_of_range);
}

TEST(CacheRoofline, GpuWithOnlyScratchpadGetsTwoLevels) {
  const auto r = ex::run_cache_roofline("Arndale GPU", model_only());
  ASSERT_EQ(r.levels.size(), 2u);  // scratchpad (L1 slot) + DRAM
  EXPECT_EQ(r.levels[0].level, co::MemLevel::L1);
}

TEST(CacheRoofline, AllCachePlatformsIncluded) {
  const auto all = ex::run_cache_rooflines(model_only());
  // Only the NUC GPU lacks any cache-level measurement in Table I.
  EXPECT_EQ(all.size(), pl::all_platforms().size() - 1);
  for (const auto& p : all) EXPECT_NE(p.platform, "NUC GPU");
}

TEST(CacheRoofline, MeasurementsTrackModel) {
  ex::CacheRooflineOptions opt;
  opt.points_per_octave = 1;
  const auto r = ex::run_cache_roofline("GTX 680", opt);
  for (const auto& lvl : r.levels)
    for (const auto& pt : lvl.points) {
      if (pt.measured_perf == 0.0) continue;
      EXPECT_NEAR(pt.measured_perf, pt.model_perf, 0.15 * pt.model_perf)
          << co::to_string(lvl.level) << " I=" << pt.intensity;
    }
}

// ---- double precision -------------------------------------------------

TEST(DpAnalysis, NineRowsThreeWithout) {
  const ex::DpResult r = ex::run_dp_analysis();
  EXPECT_EQ(r.rows.size(), 9u);
  EXPECT_EQ(r.no_dp.size(), 3u);
}

TEST(DpAnalysis, DpAlwaysCostsMoreEnergyPerFlop) {
  for (const ex::DpRow& row : ex::run_dp_analysis().rows) {
    EXPECT_GT(row.energy_ratio, 1.0) << row.platform;
    EXPECT_GT(row.rate_ratio, 1.0) << row.platform;
  }
}

TEST(DpAnalysis, BalanceShrinksUnderDp) {
  // Pricier flops push every algorithm toward compute-bound.
  for (const ex::DpRow& row : ex::run_dp_analysis().rows)
    EXPECT_LT(row.dp_balance, row.sp_balance) << row.platform;
}

TEST(DpAnalysis, KeplerGamingCardPaysHugeDpPenalty) {
  // GTX 680: 3530 SP vs 147 DP Gflop/s peak — the rate ratio dwarfs the
  // CPUs' 2x.
  for (const ex::DpRow& row : ex::run_dp_analysis().rows)
    if (row.platform == "GTX 680") {
      EXPECT_GT(row.rate_ratio, 15.0);
      EXPECT_GT(row.energy_ratio, 4.0);
    }
}

TEST(DpAnalysis, TitanMostDpEfficient) {
  const ex::DpResult r = ex::run_dp_analysis();
  EXPECT_EQ(r.most_efficient_dp, "GTX Titan");
}

}  // namespace
