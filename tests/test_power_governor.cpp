// Tests for the simulator's power-cap governor.

#include <gtest/gtest.h>

#include "sim/power_governor.hpp"

namespace {

namespace co = archline::core;
using archline::sim::govern;
using archline::sim::GovernorDecision;

TEST(Governor, ComputeBoundWhenFlopsDominate) {
  const GovernorDecision d = govern(10.0, 2.0, 5.0, 100.0);
  EXPECT_DOUBLE_EQ(d.time, 10.0);
  EXPECT_DOUBLE_EQ(d.utilization, 1.0);
  EXPECT_EQ(d.regime, co::Regime::Compute);
}

TEST(Governor, MemoryBoundWhenBytesDominate) {
  const GovernorDecision d = govern(2.0, 10.0, 5.0, 100.0);
  EXPECT_DOUBLE_EQ(d.time, 10.0);
  EXPECT_EQ(d.regime, co::Regime::Memory);
}

TEST(Governor, TieGoesToMemory) {
  const GovernorDecision d = govern(5.0, 5.0, 1.0, 100.0);
  EXPECT_EQ(d.regime, co::Regime::Memory);
}

TEST(Governor, CapThrottlesWhenEnergyRateExceedsBudget) {
  // free time 10 s, active energy 100 J -> 10 W demand; cap 5 W -> 20 s.
  const GovernorDecision d = govern(10.0, 5.0, 100.0, 5.0);
  EXPECT_DOUBLE_EQ(d.time, 20.0);
  EXPECT_DOUBLE_EQ(d.utilization, 0.5);
  EXPECT_EQ(d.regime, co::Regime::PowerCap);
}

TEST(Governor, UncappedNeverThrottles) {
  const GovernorDecision d = govern(10.0, 5.0, 1e9, co::kUncapped);
  EXPECT_DOUBLE_EQ(d.time, 10.0);
  EXPECT_EQ(d.regime, co::Regime::Compute);
}

TEST(Governor, UtilizationIsFreeOverGoverned) {
  const GovernorDecision d = govern(4.0, 8.0, 80.0, 5.0);
  // cap time = 16 s; free = 8 s; utilization = 0.5.
  EXPECT_DOUBLE_EQ(d.time, 16.0);
  EXPECT_DOUBLE_EQ(d.utilization, 0.5);
}

TEST(Governor, ExactBudgetRunsAtFullRate) {
  // energy/cap == free time exactly: not throttled (cap term ties).
  const GovernorDecision d = govern(10.0, 5.0, 50.0, 5.0);
  EXPECT_DOUBLE_EQ(d.time, 10.0);
  EXPECT_DOUBLE_EQ(d.utilization, 1.0);
}

TEST(Governor, AveragePowerUnderCapEqualsCap) {
  const double cap = 7.5;
  const GovernorDecision d = govern(1.0, 1.0, 30.0, cap);
  EXPECT_EQ(d.regime, co::Regime::PowerCap);
  EXPECT_DOUBLE_EQ(30.0 / d.time, cap);
}

TEST(Governor, ZeroWorkYieldsZeroTime) {
  const GovernorDecision d = govern(0.0, 0.0, 0.0, 5.0);
  EXPECT_DOUBLE_EQ(d.time, 0.0);
}

}  // namespace
