// Tests for the microbenchmark suite runner: campaign structure and
// measurement plausibility.

#include <gtest/gtest.h>

#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"
#include "sim/factory.hpp"

namespace {

namespace mb = archline::microbench;
namespace co = archline::core;
namespace si = archline::sim;
namespace pl = archline::platforms;
using archline::stats::Rng;

mb::SuiteOptions fast_options() {
  mb::SuiteOptions opt;
  opt.intensities = {0.125, 1.0, 8.0, 64.0};
  opt.repeats = 2;
  opt.target_seconds = 0.1;
  return opt;
}

TEST(Suite, CampaignStructureOnFullFeaturedPlatform) {
  const si::SimMachine m = si::make_machine(pl::platform("Xeon Phi"));
  Rng rng(1);
  const mb::SuiteData data = mb::run_suite(m, fast_options(), rng);
  EXPECT_EQ(data.platform, "Xeon Phi");
  EXPECT_EQ(data.dram_sp.size(), 8u);  // 4 intensities x 2 repeats
  EXPECT_EQ(data.dram_dp.size(), 8u);
  EXPECT_EQ(data.l1.size(), 8u);
  EXPECT_EQ(data.l2.size(), 8u);
  EXPECT_EQ(data.random.size(), 2u);
  EXPECT_EQ(data.total_observations(), 34u);
  EXPECT_EQ(data.all().size(), 34u);
}

TEST(Suite, SkipsMissingCapabilities) {
  const si::SimMachine m = si::make_machine(pl::platform("NUC GPU"));
  Rng rng(2);
  const mb::SuiteData data = mb::run_suite(m, fast_options(), rng);
  EXPECT_FALSE(data.dram_sp.empty());
  EXPECT_TRUE(data.dram_dp.empty());
  EXPECT_TRUE(data.l1.empty());
  EXPECT_TRUE(data.l2.empty());
  EXPECT_TRUE(data.random.empty());
}

TEST(Suite, OptionsDisableGroups) {
  mb::SuiteOptions opt = fast_options();
  opt.include_double = false;
  opt.include_caches = false;
  opt.include_random = false;
  const si::SimMachine m = si::make_machine(pl::platform("Xeon Phi"));
  Rng rng(3);
  const mb::SuiteData data = mb::run_suite(m, opt, rng);
  EXPECT_FALSE(data.dram_sp.empty());
  EXPECT_TRUE(data.dram_dp.empty());
  EXPECT_TRUE(data.l1.empty());
  EXPECT_TRUE(data.random.empty());
}

TEST(Suite, MeasurementsNearTargetDuration) {
  const si::SimMachine m = si::make_machine(pl::platform("GTX Titan"));
  Rng rng(4);
  const mb::SuiteData data = mb::run_suite(m, fast_options(), rng);
  for (const mb::Observation& o : data.dram_sp)
    EXPECT_NEAR(o.seconds, 0.1, 0.02) << o.kernel.label;
}

TEST(Suite, MeasuredPowerWithinPhysicalBounds) {
  const si::SimMachine m = si::make_machine(pl::platform("GTX Titan"));
  const co::MachineParams params = pl::platform("GTX Titan").machine();
  Rng rng(5);
  const mb::SuiteData data = mb::run_suite(m, fast_options(), rng);
  for (const mb::Observation* o : data.all()) {
    EXPECT_GT(o->watts, params.pi1 * 0.9) << o->kernel.label;
    EXPECT_LT(o->watts, (params.pi1 + params.delta_pi) * 1.1)
        << o->kernel.label;
  }
}

TEST(Suite, MeasuredPerformanceTracksModel) {
  const pl::PlatformSpec& spec = pl::platform("GTX 680");
  const si::SimMachine m = si::make_machine(spec);
  const co::MachineParams params = spec.machine();
  Rng rng(6);
  const mb::SuiteData data = mb::run_suite(m, fast_options(), rng);
  for (const mb::Observation& o : data.dram_sp) {
    const double model = co::performance(params, o.intensity());
    EXPECT_NEAR(o.flops_per_second(), model, 0.1 * model)
        << "I=" << o.intensity();
  }
}

TEST(Suite, EnergyConsistentWithPowerAndTime) {
  const si::SimMachine m = si::make_machine(pl::platform("Arndale CPU"));
  Rng rng(7);
  const mb::SuiteData data = mb::run_suite(m, fast_options(), rng);
  for (const mb::Observation* o : data.all())
    EXPECT_NEAR(o->joules, o->watts * o->seconds, 1e-6 * o->joules);
}

TEST(Suite, RepeatsDifferUnderNoise) {
  const si::SimMachine m = si::make_machine(pl::platform("Desktop CPU"));
  Rng rng(8);
  mb::SuiteOptions opt = fast_options();
  opt.repeats = 3;
  const mb::SuiteData data = mb::run_suite(m, opt, rng);
  // Same kernel, different runs: noise must separate them.
  EXPECT_NE(data.dram_sp[0].seconds, data.dram_sp[1].seconds);
}

TEST(Suite, DeterministicGivenSeed) {
  const si::SimMachine m = si::make_machine(pl::platform("Desktop CPU"));
  Rng r1(9);
  Rng r2(9);
  const mb::SuiteData a = mb::run_suite(m, fast_options(), r1);
  const mb::SuiteData b = mb::run_suite(m, fast_options(), r2);
  ASSERT_EQ(a.dram_sp.size(), b.dram_sp.size());
  for (std::size_t i = 0; i < a.dram_sp.size(); ++i)
    EXPECT_DOUBLE_EQ(a.dram_sp[i].joules, b.dram_sp[i].joules);
}

TEST(Suite, DefaultGridUsedWhenUnset) {
  mb::SuiteOptions opt;
  opt.repeats = 1;
  opt.target_seconds = 0.05;
  opt.include_double = false;
  opt.include_caches = false;
  opt.include_random = false;
  const si::SimMachine m = si::make_machine(pl::platform("APU CPU"));
  Rng rng(10);
  const mb::SuiteData data = mb::run_suite(m, opt, rng);
  EXPECT_GT(data.dram_sp.size(), 20u);  // default 1/8..512 at 2/octave
}

TEST(MeasureKernel, ProducesRequestedRepeats) {
  const si::SimMachine m = si::make_machine(pl::platform("APU GPU"));
  Rng rng(11);
  si::KernelDesc k;
  k.label = "probe";
  k.flops = 1e9;
  k.bytes = 1e9;
  const auto obs = mb::measure_kernel(m, k, 5, {}, rng);
  EXPECT_EQ(obs.size(), 5u);
  for (const mb::Observation& o : obs) {
    EXPECT_GT(o.seconds, 0.0);
    EXPECT_GT(o.joules, 0.0);
  }
}

TEST(Observation, DerivedMetrics) {
  mb::Observation o;
  o.kernel.flops = 10.0;
  o.kernel.bytes = 5.0;
  o.seconds = 2.0;
  o.joules = 5.0;
  EXPECT_DOUBLE_EQ(o.intensity(), 2.0);
  EXPECT_DOUBLE_EQ(o.flops_per_second(), 5.0);
  EXPECT_DOUBLE_EQ(o.flops_per_joule(), 2.0);
}

}  // namespace
