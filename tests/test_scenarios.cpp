// Tests for the what-if scenario machinery (paper §V-D).

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/roofline.hpp"
#include "core/scenarios.hpp"
#include "platforms/platform_db.hpp"

namespace {

namespace co = archline::core;
namespace pl = archline::platforms;

co::MachineParams titan() { return pl::platform("GTX Titan").machine(); }
co::MachineParams arndale() { return pl::platform("Arndale GPU").machine(); }

TEST(CapScaled, DividesCap) {
  const co::MachineParams m = titan();
  const co::MachineParams half = co::with_cap_scaled(m, 2.0);
  EXPECT_DOUBLE_EQ(half.delta_pi, m.delta_pi / 2.0);
  EXPECT_DOUBLE_EQ(half.pi1, m.pi1);
  EXPECT_DOUBLE_EQ(half.tau_flop, m.tau_flop);
}

TEST(CapScaled, IdentityAtOne) {
  const co::MachineParams m = titan();
  EXPECT_DOUBLE_EQ(co::with_cap_scaled(m, 1.0).delta_pi, m.delta_pi);
}

TEST(CapScaled, RejectsDivisorBelowOne) {
  EXPECT_THROW((void)co::with_cap_scaled(titan(), 0.5),
               std::invalid_argument);
}

TEST(CapScaled, UncappedStaysUncapped) {
  const co::MachineParams u = titan().without_cap();
  EXPECT_TRUE(co::with_cap_scaled(u, 8.0).uncapped());
}

TEST(WithCap, SetsAbsoluteCap) {
  const co::MachineParams m = co::with_cap(titan(), 20.5);
  EXPECT_DOUBLE_EQ(m.delta_pi, 20.5);
}

TEST(WithCap, RejectsNonPositive) {
  EXPECT_THROW((void)co::with_cap(titan(), 0.0), std::invalid_argument);
}

TEST(Aggregate, ScalesThroughputsAndPowers) {
  const co::MachineParams m = arndale();
  const co::MachineParams agg = co::aggregate(m, 10);
  EXPECT_DOUBLE_EQ(agg.peak_flops(), 10.0 * m.peak_flops());
  EXPECT_DOUBLE_EQ(agg.peak_bandwidth(), 10.0 * m.peak_bandwidth());
  EXPECT_DOUBLE_EQ(agg.pi1, 10.0 * m.pi1);
  EXPECT_DOUBLE_EQ(agg.delta_pi, 10.0 * m.delta_pi);
  // Per-op energies are intensive quantities.
  EXPECT_DOUBLE_EQ(agg.eps_flop, m.eps_flop);
  EXPECT_DOUBLE_EQ(agg.eps_mem, m.eps_mem);
}

TEST(Aggregate, PreservesBalances) {
  const co::MachineParams m = arndale();
  const co::MachineParams agg = co::aggregate(m, 7);
  EXPECT_NEAR(agg.time_balance(), m.time_balance(), 1e-12);
  EXPECT_NEAR(agg.energy_balance(), m.energy_balance(), 1e-12);
}

TEST(Aggregate, PerformanceScalesLinearly) {
  const co::MachineParams m = arndale();
  const co::MachineParams agg = co::aggregate(m, 5);
  for (const double intensity : {0.25, 4.0, 64.0})
    EXPECT_NEAR(co::performance(agg, intensity),
                5.0 * co::performance(m, intensity),
                1e-9 * co::performance(agg, intensity));
}

TEST(Aggregate, IdentityAtOne) {
  const co::MachineParams m = arndale();
  const co::MachineParams agg = co::aggregate(m, 1);
  EXPECT_DOUBLE_EQ(agg.tau_flop, m.tau_flop);
  EXPECT_DOUBLE_EQ(agg.pi1, m.pi1);
}

TEST(Aggregate, RejectsZero) {
  EXPECT_THROW((void)co::aggregate(arndale(), 0), std::invalid_argument);
}

TEST(BlocksToMatchPower, PaperFig1Count) {
  // Fig. 1: matching GTX Titan's peak node power (~287 W) takes ~47
  // Arndale GPU boards at ~6.1 W each.
  const co::MachineParams big = titan();
  const int n = co::blocks_to_match_power(arndale(), big.pi1 + big.delta_pi);
  EXPECT_EQ(n, 47);
}

TEST(BlocksToMatchPower, ZeroTargetIsZero) {
  EXPECT_EQ(co::blocks_to_match_power(arndale(), 0.0), 0);
}

TEST(BlocksToMatchPower, ExactMultipleNotOvershot) {
  const co::MachineParams m = arndale();
  const double per_block = m.pi1 + m.delta_pi;
  EXPECT_EQ(co::blocks_to_match_power(m, 3.0 * per_block), 3);
}

TEST(ThrottleSweep, ProducesGridOfPoints) {
  const auto points = co::throttle_sweep(titan(), {0.25, 4.0, 64.0},
                                         {1.0, 2.0, 4.0, 8.0});
  EXPECT_EQ(points.size(), 12u);
}

TEST(ThrottleSweep, PowerDecreasesWithK) {
  const auto points = co::throttle_sweep(titan(), {1.0}, {1.0, 2.0, 4.0, 8.0});
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_LE(points[i].power, points[i - 1].power * (1 + 1e-12));
}

TEST(ThrottleSweep, PerformanceDecreasesWithK) {
  const auto points =
      co::throttle_sweep(titan(), {4.0}, {1.0, 2.0, 4.0, 8.0});
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_LE(points[i].performance, points[i - 1].performance * (1 + 1e-12));
}

TEST(ThrottleSweep, PowerReductionLessThanK) {
  // Fig. 6: "reducing delta_pi by k reduces overall power by less than k"
  // because pi1 stays.
  const co::MachineParams m = titan();
  const auto points = co::throttle_sweep(m, {m.time_balance()}, {1.0, 8.0});
  ASSERT_EQ(points.size(), 2u);
  const double reduction = points[0].power / points[1].power;
  EXPECT_LT(reduction, 8.0);
  EXPECT_GT(reduction, 1.0);
}

TEST(PowerBound, PaperScenario140W) {
  // §V-D-j: Titan bounded to ~140 W/node vs ~23 Arndale GPUs at I = 0.25.
  // At an exact 140 W bound (usable power 140 - 123 = 17 W) the Titan
  // slows to ~0.26x and the 23-board Arndale cluster is ~3.1x faster;
  // the paper's quoted 0.31x / 2.8x correspond to the rounder cap setting
  // delta_pi / 8 = 20.5 W (143.5 W node), checked separately below.
  const auto r =
      co::power_bound_comparison(titan(), arndale(), 140.0, 0.25);
  EXPECT_NEAR(r.big_slowdown, 0.26, 0.03);
  EXPECT_EQ(r.small_count, 23);
  EXPECT_NEAR(r.speedup, 2.8, 0.5);
}

TEST(PowerBound, PaperCapSettingDeltaPiOverEight) {
  // The paper's exact cap setting: delta_pi/8 -> 0.31x at I = 0.25.
  const co::MachineParams m = titan();
  const auto r = co::power_bound_comparison(
      titan(), arndale(), m.pi1 + m.delta_pi / 8.0, 0.25);
  EXPECT_NEAR(r.big_slowdown, 0.31, 0.02);
  EXPECT_NEAR(r.big_cap_divisor, 8.0, 0.01);
}

TEST(PowerBound, BoundBelowConstantPowerThrows) {
  EXPECT_THROW(
      (void)co::power_bound_comparison(titan(), arndale(), 100.0, 0.25),
      std::invalid_argument);
}

TEST(PowerBound, GenerousBoundLeavesBigUnthrottled) {
  const co::MachineParams big = titan();
  const auto r = co::power_bound_comparison(
      big, arndale(), big.pi1 + big.delta_pi, 0.25);
  EXPECT_NEAR(r.big_slowdown, 1.0, 1e-9);
}


TEST(ThrottleRequirement, NoThrottleUnderGenerousCap) {
  const co::MachineParams m = titan();
  const auto r = co::throttle_requirement(m, 4.0, 1000.0);
  EXPECT_NEAR(r.slowdown, 1.0, 1e-12);
  // At I = 4 < B_tau ~ 16.8 the machine is memory-bound: memory at full
  // rate, flops at I/B of sustained.
  EXPECT_NEAR(r.mem_rate_fraction, 1.0, 1e-12);
  EXPECT_NEAR(r.flop_rate_fraction, 4.0 / m.time_balance(), 1e-9);
}

TEST(ThrottleRequirement, PaperTitanNumbers) {
  // SV-D: Titan at delta_pi/8 and I = 1/4 runs at ~0.31x -> slowdown
  // ~3.2x; both engines slow by the same factor.
  const co::MachineParams m = titan();
  const auto r = co::throttle_requirement(m, 0.25, m.delta_pi / 8.0);
  EXPECT_NEAR(1.0 / r.slowdown, 0.31, 0.02);
  EXPECT_EQ(r.regime, co::Regime::PowerCap);
  // Memory was the binding engine at I = 1/4: its achieved fraction is
  // exactly 1/slowdown.
  EXPECT_NEAR(r.mem_rate_fraction, 1.0 / r.slowdown, 1e-9);
}

TEST(ThrottleRequirement, RateFractionsReproduceCapPower) {
  // Sanity: active power at the throttled rates equals the cap when the
  // cap binds.
  const co::MachineParams m = titan();
  const double cap = m.delta_pi / 4.0;
  for (const double intensity : {0.5, 4.0, 16.8, 64.0}) {
    const auto r = co::throttle_requirement(m, intensity, cap);
    if (r.regime != co::Regime::PowerCap) continue;
    const double active = m.pi_flop() * r.flop_rate_fraction +
                          m.pi_mem() * r.mem_rate_fraction;
    EXPECT_NEAR(active, cap, 1e-6 * cap) << intensity;
  }
}

TEST(ThrottleRequirement, TighterCapMeansMoreThrottle) {
  const co::MachineParams m = titan();
  double prev = 1.0;
  for (const double k : {1.0, 2.0, 4.0, 8.0}) {
    const auto r = co::throttle_requirement(m, 8.0, m.delta_pi / k);
    EXPECT_GE(r.slowdown, prev * (1 - 1e-12));
    prev = r.slowdown;
  }
}

TEST(ThrottleRequirement, BadArgumentsThrow) {
  EXPECT_THROW((void)co::throttle_requirement(titan(), 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)co::throttle_requirement(titan(), 0.0, 10.0),
               std::invalid_argument);
}


TEST(OperatingPointSweep, TableOrderAndConsistency) {
  const pl::PlatformSpec& spec = pl::platform("GTX Titan");
  const co::Workload w{.flops = 1e12, .bytes = 1e11};
  const auto rows =
      co::operating_point_sweep(titan(), spec.operating_points.points, w);
  ASSERT_EQ(rows.size(), spec.operating_points.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const co::MachineParams at = spec.machine_at_point(i);
    EXPECT_EQ(rows[i].point_index, i);
    EXPECT_DOUBLE_EQ(rows[i].freq_scale,
                     spec.operating_points.points[i].freq_scale);
    EXPECT_DOUBLE_EQ(rows[i].time_s, co::time(at, w));
    EXPECT_DOUBLE_EQ(rows[i].energy_j, co::energy(at, w));
    EXPECT_DOUBLE_EQ(rows[i].avg_power_w, co::avg_power(at, w));
    EXPECT_DOUBLE_EQ(rows[i].edp, rows[i].energy_j * rows[i].time_s);
  }
  // The nominal (last) row is the plain eq. (1)-(3) prediction.
  EXPECT_DOUBLE_EQ(rows.back().time_s, co::time(titan(), w));
}

}  // namespace
