// sim::Campaign — deterministic virtual-time traffic campaigns with SLO
// assertions. These cases scale the named scenarios down so the whole
// suite stays in the tier-1 fast lane; the full 10k-connection /
// million-request acceptance campaign lives in
// test_sim_campaign_million.cpp under the `campaign` ctest label.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/arrivals.hpp"
#include "sim/campaign.hpp"
#include "stats/rng.hpp"

namespace {

using archline::sim::ArrivalSpec;
using archline::sim::Behavior;
using archline::sim::Campaign;
using archline::sim::CampaignOptions;
using archline::sim::CampaignReport;
using archline::sim::SloSpec;
using archline::sim::assert_slo;
using archline::sim::campaign_scenario;
using archline::sim::campaign_scenario_names;
using archline::sim::next_arrival;

CampaignReport run_campaign(const CampaignOptions& options) {
  Campaign campaign(options);
  return campaign.run();
}

/// Every report, whatever the traffic, must satisfy the bookkeeping
/// identities the harness is built around.
void expect_identities(const CampaignReport& r) {
  EXPECT_EQ(r.requests_framed, r.replies_delivered + r.replies_abandoned +
                                   r.dropped_replies);
  std::uint64_t errors = 0;
  for (const auto& [code, n] : r.errors_by_code) errors += n;
  EXPECT_EQ(r.requests_framed, r.ok + errors);
  const auto code_count = [&](const char* code) -> std::uint64_t {
    const auto it = r.errors_by_code.find(code);
    return it == r.errors_by_code.end() ? 0 : it->second;
  };
  EXPECT_EQ(code_count("overloaded"), r.overloaded);
  EXPECT_EQ(code_count("deadline_exceeded"), r.deadline_exceeded);
  EXPECT_EQ(r.connections_opened,
            r.closed_clean + r.reset_by_client + r.idle_closed);
  EXPECT_TRUE(r.connections_accounted);
  EXPECT_TRUE(r.drain_clean);
  EXPECT_EQ(r.dropped_replies, 0u);
}

// ---- arrival processes ----------------------------------------------------

TEST(Arrivals, RateShapesMatchTheirDefinitions) {
  const ArrivalSpec poisson = ArrivalSpec::poisson(12.0);
  EXPECT_DOUBLE_EQ(poisson.rate_at(0.0), 12.0);
  EXPECT_DOUBLE_EQ(poisson.rate_at(5.3), 12.0);

  const ArrivalSpec onoff = ArrivalSpec::on_off(40.0, 0.1, 0.4);
  EXPECT_DOUBLE_EQ(onoff.rate_at(0.05), 40.0);   // in the burst
  EXPECT_DOUBLE_EQ(onoff.rate_at(0.25), 0.0);    // silence
  EXPECT_DOUBLE_EQ(onoff.rate_at(0.55), 40.0);   // next cycle
  EXPECT_DOUBLE_EQ(onoff.rate_at(-0.48), 40.0);  // negative t wraps

  const ArrivalSpec diurnal = ArrivalSpec::diurnal(2.0, 20.0, 10.0);
  EXPECT_DOUBLE_EQ(diurnal.rate_at(0.0), 2.0);    // trough
  EXPECT_DOUBLE_EQ(diurnal.rate_at(5.0), 20.0);   // crest
  EXPECT_NEAR(diurnal.rate_at(2.5), 11.0, 1e-9);  // halfway

  EXPECT_THROW(ArrivalSpec::poisson(0.0).validate(), std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::on_off(10.0, 0.0, 0.5).validate(),
               std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::diurnal(30.0, 20.0, 10.0).validate(),
               std::invalid_argument);
}

TEST(Arrivals, ThinningMatchesExpectedCounts) {
  // Long-run arrival counts must track the integrated rate for every
  // process family (law of large numbers; generous tolerance).
  const double horizon = 2000.0;
  const struct {
    ArrivalSpec spec;
    double expected_rate;
  } cases[] = {
      {ArrivalSpec::poisson(5.0), 5.0},
      {ArrivalSpec::on_off(40.0, 0.1, 0.4), 8.0},
      {ArrivalSpec::diurnal(2.0, 20.0, 10.0), 11.0},
  };
  for (const auto& c : cases) {
    archline::stats::Rng rng(99, 7);
    double t = 0.0;
    std::uint64_t n = 0;
    for (;;) {
      t = next_arrival(c.spec, t, rng);
      if (t >= horizon) break;
      ++n;
    }
    const double rate = static_cast<double>(n) / horizon;
    EXPECT_NEAR(rate, c.expected_rate, 0.05 * c.expected_rate)
        << "kind=" << static_cast<int>(c.spec.kind);
  }
}

// ---- campaign scenarios ---------------------------------------------------

TEST(Campaign, PoissonSteadyMeetsSlo) {
  CampaignOptions options = campaign_scenario("steady");
  options.connections = 300;
  options.virtual_seconds = 5.0;
  options.seed = 11;
  const CampaignReport r = run_campaign(options);
  expect_identities(r);
  EXPECT_GT(r.requests_framed, 10'000u);
  EXPECT_EQ(r.overloaded, 0u);
  EXPECT_EQ(r.deadline_exceeded, 0u);

  SloSpec slo;
  slo.max_total_p99_ns = 100'000;  // an uncontended box answers in µs
  slo.max_endpoint_p99_ns["predict"] = 50'000;
  slo.min_cache_hit_rate = 0.95;
  EXPECT_EQ(assert_slo(r, slo), std::vector<std::string>{});
}

TEST(Campaign, ReplayIsByteIdentical) {
  CampaignOptions options = campaign_scenario("adversarial");
  options.connections = 250;
  options.virtual_seconds = 4.0;
  options.seed = 77;
  const CampaignReport a = run_campaign(options);
  const CampaignReport b = run_campaign(options);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_FALSE(a.to_json().empty());
}

TEST(Campaign, SeedChangesTheTraffic) {
  CampaignOptions options = campaign_scenario("steady");
  options.connections = 100;
  options.virtual_seconds = 3.0;
  options.seed = 1;
  const CampaignReport a = run_campaign(options);
  options.seed = 2;
  const CampaignReport b = run_campaign(options);
  EXPECT_NE(a, b);
  EXPECT_NE(a.requests_sent, b.requests_sent);
}

TEST(Campaign, BurstOnOffShedsOverloadWithoutLosingReplies) {
  // Keep the preset's full 2000-connection fleet — shedding needs the
  // aggregate burst rate — and shorten the horizon instead.
  CampaignOptions options = campaign_scenario("burst");
  options.virtual_seconds = 3.0;
  options.seed = 5;
  const CampaignReport r = run_campaign(options);
  expect_identities(r);
  // Synchronized bursts outrun two slow workers: the light lane must
  // hit capacity and shed — with an "overloaded" reply, not a lost one.
  EXPECT_GT(r.overloaded, 0u);
  EXPECT_EQ(r.max_light_depth, options.light_capacity);
  EXPECT_EQ(r.errors_by_code.at("overloaded"), r.overloaded);

  SloSpec slo;
  slo.max_overloaded_frac = 0.5;
  EXPECT_EQ(assert_slo(r, slo), std::vector<std::string>{});
}

TEST(Campaign, DiurnalRampStaysClean) {
  CampaignOptions options = campaign_scenario("diurnal");
  options.connections = 200;
  options.virtual_seconds = 10.0;
  options.seed = 9;
  const CampaignReport r = run_campaign(options);
  expect_identities(r);
  EXPECT_GT(r.requests_framed, 0u);
  EXPECT_EQ(r.overloaded, 0u);
}

// The acceptance SLO case: a mixed slow-loris + synchronized-burst
// adversary (plus partial-frame resets, idle campers, malformed JSON,
// and heavy refit traffic) against a deadline-bounded server — and the
// SLO still holds, *because* shedding bounds the tail.
TEST(Campaign, MixedSlowLorisBurstAdversaryHoldsSlo) {
  // The full 2000-connection fleet at a shorter horizon: saturation
  // (and thus shedding) requires the preset's aggregate burst rate.
  CampaignOptions options = campaign_scenario("adversarial");
  options.virtual_seconds = 4.0;
  options.seed = 21;
  const CampaignReport r = run_campaign(options);
  expect_identities(r);
  EXPECT_GT(r.deadline_exceeded, 0u);
  EXPECT_GT(r.reset_by_client, 0u);
  EXPECT_GT(r.idle_closed, 0u);

  SloSpec slo;
  // Executed replies can wait at most the 20ms queue deadline plus one
  // jittered service; 25ms bounds the light-lane tail.
  slo.max_endpoint_p99_ns["predict"] = 25'000'000;
  slo.max_endpoint_p99_ns["params"] = 25'000'000;
  slo.require_zero_dropped = true;
  slo.require_drain_clean = true;
  slo.require_connections_accounted = true;
  EXPECT_EQ(assert_slo(r, slo), std::vector<std::string>{});
}

TEST(Campaign, PartialResetAbandonsInFlightRepliesAccountably) {
  CampaignOptions options;
  options.seed = 13;
  options.connections = 200;
  options.virtual_seconds = 5.0;
  options.behaviors.pipelined = 0.0;
  options.behaviors.partial_reset = 1.0;
  options.partial_reset_after_s = 0.005;
  options.arrivals = ArrivalSpec::poisson(50.0);
  // Slow service so resets land while replies are still queued.
  options.service.cached_hit_ns = 2'000'000;
  options.service.light_miss_ns = 4'000'000;
  options.workers = 2;
  const CampaignReport r = run_campaign(options);
  expect_identities(r);
  EXPECT_EQ(r.reset_by_client, r.connections_opened);
  EXPECT_EQ(r.closed_clean, 0u);
  EXPECT_GT(r.replies_abandoned, 0u);
  // Partial frames transmit but never complete.
  EXPECT_GT(r.requests_sent, r.requests_framed);
  EXPECT_EQ(r.requests_sent - r.requests_framed, r.connections_opened);
}

TEST(Campaign, IdleCampersAreReaped) {
  CampaignOptions options;
  options.seed = 17;
  options.connections = 150;
  options.virtual_seconds = 6.0;
  options.behaviors.pipelined = 0.0;
  options.behaviors.idle_camper = 1.0;
  options.idle_timeout_ms = 1000;
  const CampaignReport r = run_campaign(options);
  expect_identities(r);
  // One request each, then silence: every camper must be idle-closed
  // long before shutdown, and each got its single reply first.
  EXPECT_EQ(r.idle_closed, r.connections_opened);
  EXPECT_EQ(r.closed_clean, 0u);
  EXPECT_EQ(r.requests_framed, r.connections_opened);
  EXPECT_EQ(r.replies_delivered, r.requests_framed);
}

TEST(Campaign, AdmissionCapRefusesExcessConnections) {
  CampaignOptions options;
  options.seed = 23;
  options.connections = 300;
  options.max_connections = 100;
  options.virtual_seconds = 3.0;
  options.open_ramp_s = 0.5;
  const CampaignReport r = run_campaign(options);
  expect_identities(r);
  EXPECT_EQ(r.connections_opened, 100u);
  EXPECT_EQ(r.connections_refused, 200u);
}

TEST(Campaign, DeadlineBoundsTheExecutedTail) {
  CampaignOptions options;
  options.seed = 31;
  options.connections = 400;
  options.virtual_seconds = 5.0;
  options.arrivals = ArrivalSpec::on_off(60.0, 0.1, 0.4);
  options.deadline_ms = 10;
  options.workers = 2;
  // Each burst is ~2400 jobs x ~320us on 2 workers: ~0.4s of queue
  // against a 10ms deadline, so most of the burst tail must be shed.
  options.service.cached_hit_ns = 300'000;
  options.service.light_miss_ns = 500'000;
  const CampaignReport r = run_campaign(options);
  expect_identities(r);
  EXPECT_GT(r.deadline_exceeded, 0u);
  // A reply that executed was picked up within the deadline, so its
  // latency is at most deadline + one jittered service.
  EXPECT_LE(r.total.max_ns,
            10'000'000ull +
                static_cast<std::uint64_t>(
                    static_cast<double>(options.service.light_miss_ns) *
                    (1.0 + options.service.jitter_frac)) +
                1);
}

TEST(Campaign, ChurnRefitsInvalidateWithoutServingStale) {
  CampaignOptions options = campaign_scenario("churn");
  options.connections = 120;
  options.virtual_seconds = 4.0;
  options.seed = 37;
  const CampaignReport r = run_campaign(options);
  expect_identities(r);
  // Refit traffic must actually churn the cache generation: stale
  // entries are detected and dropped (never served — the server
  // re-executes on generation mismatch, which shows up as misses).
  EXPECT_GT(r.cache_stale, 0u);
  EXPECT_GT(r.cache_hits, 0u);
  ASSERT_NE(r.endpoints.find("refit"), r.endpoints.end());
  EXPECT_GT(r.endpoints.at("refit").count, 0u);
}

TEST(Campaign, SlowLorisDripDelaysFramingNotDelivery) {
  CampaignOptions options;
  options.seed = 41;
  options.connections = 100;
  options.virtual_seconds = 5.0;
  options.behaviors.pipelined = 0.0;
  options.behaviors.slow_loris = 1.0;
  options.slow_loris_drip_s = 0.5;
  options.arrivals = ArrivalSpec::poisson(1.0);
  const CampaignReport r = run_campaign(options);
  expect_identities(r);
  // Every dripped request that finished framing was answered; the
  // drain runs past the horizon to let in-flight drips settle.
  EXPECT_GT(r.requests_framed, 0u);
  EXPECT_EQ(r.replies_delivered + r.replies_abandoned, r.requests_framed);
  EXPECT_GE(r.drained_at_s, r.virtual_seconds);
}

TEST(Campaign, ScenarioPresetsAllValidateAndUnknownThrows) {
  for (const auto& name : campaign_scenario_names())
    EXPECT_NO_THROW(campaign_scenario(name).validate()) << name;
  EXPECT_THROW((void)campaign_scenario("nope"), std::invalid_argument);
  EXPECT_THROW(
      []() {
        CampaignOptions bad;
        bad.connections = 0;
        bad.validate();
      }(),
      std::invalid_argument);
}

TEST(Campaign, AssertSloListsEveryViolation) {
  CampaignOptions options = campaign_scenario("steady");
  options.connections = 50;
  options.virtual_seconds = 2.0;
  options.seed = 43;
  const CampaignReport r = run_campaign(options);
  SloSpec impossible;
  impossible.max_total_p99_ns = 1;  // nothing answers in a nanosecond
  impossible.max_endpoint_p99_ns["predict"] = 1;
  impossible.max_endpoint_p99_ns["never_requested"] = 1;
  impossible.min_cache_hit_rate = 1.1;
  const std::vector<std::string> violations = assert_slo(r, impossible);
  EXPECT_EQ(violations.size(), 4u);
  // A satisfied spec stays silent.
  EXPECT_EQ(assert_slo(r, SloSpec{}), std::vector<std::string>{});
}

TEST(Campaign, RunIsSingleShot) {
  CampaignOptions options;
  options.connections = 5;
  options.virtual_seconds = 0.5;
  Campaign campaign(options);
  (void)campaign.run();
  EXPECT_THROW(campaign.run(), std::logic_error);
}

}  // namespace
