// SoA kernel equivalence tests (core/kernels.hpp): the batch paths must
// be BIT-identical to the scalar model — reply bytes ride on it (golden
// corpus, response cache). Every comparison here is on the exact bit
// pattern (std::bit_cast), not a tolerance: a kernel that is merely
// "close" would change serialized replies.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/kernels.hpp"
#include "core/roofline.hpp"
#include "core/scenarios.hpp"
#include "core/sensitivity.hpp"
#include "platforms/platform_db.hpp"
#include "stats/rng.hpp"

namespace {

namespace co = archline::core;
using archline::stats::Rng;

/// Same distribution as test_random_machines.cpp: physically sensible,
/// from tight caps to effectively unbounded.
co::MachineParams random_machine(Rng& rng) {
  co::MachineParams m;
  m.tau_flop = 1.0 / std::exp(rng.uniform(std::log(1e9), std::log(1e13)));
  m.tau_mem = 1.0 / std::exp(rng.uniform(std::log(1e9), std::log(5e11)));
  m.eps_flop = std::exp(rng.uniform(std::log(1e-12), std::log(1e-9)));
  m.eps_mem = std::exp(rng.uniform(std::log(1e-11), std::log(1e-9)));
  m.pi1 = rng.uniform(0.1, 200.0);
  const double demand = m.pi_flop() + m.pi_mem();
  m.delta_pi = demand * std::exp(rng.uniform(std::log(0.3), std::log(4.0)));
  m.validate("random_machine");
  return m;
}

/// Random workload spanning tiny to huge intensities (bytes can exceed
/// flops by orders of magnitude and vice versa).
co::Workload random_workload(Rng& rng) {
  co::Workload w;
  w.flops = std::exp(rng.uniform(std::log(1e3), std::log(1e15)));
  w.bytes = std::exp(rng.uniform(std::log(1e3), std::log(1e15)));
  return w;
}

bool bit_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Machines under test: random capped + uncapped variants + the twelve
/// Table I platforms (the machines real requests resolve to).
std::vector<co::MachineParams> test_machines(Rng& rng, int random_count) {
  std::vector<co::MachineParams> out;
  for (int i = 0; i < random_count; ++i) {
    const co::MachineParams m = random_machine(rng);
    out.push_back(m);
    if (i % 3 == 0) out.push_back(m.without_cap());
  }
  for (const archline::platforms::PlatformSpec& spec :
       archline::platforms::all_platforms())
    out.push_back(spec.machine());
  return out;
}

void expect_prediction_bits(const co::MachineParams& m,
                            const co::WorkloadBatch& in,
                            const co::PredictionBatch& got,
                            const char* path) {
  ASSERT_EQ(got.size(), in.size()) << path;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const co::Workload w{.flops = in.flops[i], .bytes = in.bytes[i]};
    const double t = co::time(m, w);
    const double e = co::energy(m, w);
    ASSERT_TRUE(bit_equal(got.intensity[i], w.intensity()))
        << path << " intensity[" << i << "]";
    ASSERT_TRUE(bit_equal(got.time_s[i], t)) << path << " time[" << i << "]";
    ASSERT_TRUE(bit_equal(got.energy_j[i], e))
        << path << " energy[" << i << "]";
    ASSERT_TRUE(bit_equal(got.avg_power_w[i], co::avg_power(m, w)))
        << path << " power[" << i << "]";
    ASSERT_TRUE(bit_equal(got.performance[i], w.flops / t))
        << path << " performance[" << i << "]";
    ASSERT_TRUE(bit_equal(got.efficiency[i], w.flops / e))
        << path << " efficiency[" << i << "]";
    ASSERT_EQ(got.regime[i], co::regime(m, w))
        << path << " regime[" << i << "]";
  }
}

// 10k+ random (machine, workload) pairs through every compiled path.
// Batch sizes vary so both the SIMD body and the scalar tail see work.
TEST(Kernels, PredictBatchBitIdenticalToScalarModel) {
  Rng rng(1234);
  const std::vector<co::MachineParams> machines = test_machines(rng, 120);
  std::size_t pairs = 0;
  co::PredictionBatch scalar_out;
  co::PredictionBatch avx2_out;
  co::PredictionBatch dispatched_out;
  for (std::size_t mi = 0; mi < machines.size(); ++mi) {
    const co::MachineParams& m = machines[mi];
    co::WorkloadBatch batch;
    const std::size_t n = 1 + rng.below(128);
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) batch.push_back(random_workload(rng));
    pairs += n;

    co::predict_batch_scalar(m, batch, scalar_out);
    expect_prediction_bits(m, batch, scalar_out, "scalar");
    if (co::avx2_available()) {
      co::predict_batch_avx2(m, batch, avx2_out);
      expect_prediction_bits(m, batch, avx2_out, "avx2");
    }
    co::predict_batch(m, batch, dispatched_out);
    expect_prediction_bits(m, batch, dispatched_out, "dispatched");
  }
  EXPECT_GE(pairs, 10000u);
}

void expect_curve_bits(const co::MachineParams& m,
                       const std::vector<double>& grid,
                       const co::MetricCurve& got, const char* path) {
  ASSERT_EQ(got.size(), grid.size()) << path;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double I = grid[i];
    ASSERT_TRUE(bit_equal(got.power[i], co::avg_power_closed_form(m, I)))
        << path << " power @ I=" << I;
    ASSERT_TRUE(bit_equal(got.performance[i], co::performance(m, I)))
        << path << " performance @ I=" << I;
    ASSERT_TRUE(bit_equal(got.efficiency[i], co::energy_efficiency(m, I)))
        << path << " efficiency @ I=" << I;
    ASSERT_EQ(got.regime[i], co::regime_at(m, I)) << path << " regime @ I=" << I;
  }
}

TEST(Kernels, MetricCurvesBitIdenticalToClosedForms) {
  Rng rng(5678);
  const std::vector<co::MachineParams> machines = test_machines(rng, 80);
  co::MetricCurve scalar_out;
  co::MetricCurve avx2_out;
  co::MetricCurve dispatched_out;
  for (const co::MachineParams& m : machines) {
    // Random log-uniform grid PLUS the machine's own balance boundaries,
    // where eq. (7) switches branch — exactly where a reassociated
    // kernel would first diverge.
    std::vector<double> grid;
    const std::size_t n = 1 + rng.below(64);
    for (std::size_t i = 0; i < n; ++i)
      grid.push_back(std::exp(rng.uniform(std::log(1e-4), std::log(1e6))));
    grid.push_back(m.time_balance());
    if (std::isfinite(m.balance_hi())) grid.push_back(m.balance_hi());
    if (m.balance_lo() > 0.0) grid.push_back(m.balance_lo());

    co::metric_curves_scalar(m, grid, scalar_out);
    expect_curve_bits(m, grid, scalar_out, "scalar");
    if (co::avx2_available()) {
      co::metric_curves_avx2(m, grid, avx2_out);
      expect_curve_bits(m, grid, avx2_out, "avx2");
    }
    co::metric_curves(m, grid, dispatched_out);
    expect_curve_bits(m, grid, dispatched_out, "dispatched");
  }
}

TEST(Kernels, MetricValueMachinesBitIdenticalToMetricValue) {
  Rng rng(91011);
  const std::vector<co::MachineParams> machines = test_machines(rng, 60);
  std::vector<double> values(machines.size());
  for (const co::Metric metric :
       {co::Metric::Performance, co::Metric::EnergyEfficiency,
        co::Metric::Power}) {
    for (const double intensity : {0.01, 0.3, 1.0, 7.0, 100.0, 1e4}) {
      co::metric_value_machines(machines, metric, intensity, values.data());
      for (std::size_t i = 0; i < machines.size(); ++i)
        ASSERT_TRUE(bit_equal(values[i],
                              co::metric_value(machines[i], metric, intensity)))
            << "machine " << i << " metric " << static_cast<int>(metric)
            << " I=" << intensity;
    }
  }
}

// The rebuilt throttle_sweep must reproduce the original per-point
// closed-form loop exactly (scenario_sweep replies are golden-pinned).
TEST(Kernels, ThrottleSweepBitIdenticalToPerPointLoop) {
  Rng rng(1213);
  const std::vector<double> intensities = {0.0625, 0.5, 1, 4, 16, 128, 512};
  const std::vector<double> divisors = {1, 2, 4, 8};
  const std::vector<co::MachineParams> machines = test_machines(rng, 40);
  for (const co::MachineParams& m : machines) {
    const std::vector<co::ThrottlePoint> sweep =
        co::throttle_sweep(m, intensities, divisors);
    ASSERT_EQ(sweep.size(), intensities.size() * divisors.size());
    std::size_t idx = 0;
    for (const double k : divisors) {
      const co::MachineParams capped = co::with_cap_scaled(m, k);
      for (const double I : intensities) {
        const co::ThrottlePoint& p = sweep[idx++];
        ASSERT_TRUE(bit_equal(p.intensity, I));
        ASSERT_TRUE(bit_equal(p.cap_divisor, k));
        ASSERT_TRUE(bit_equal(p.power, co::avg_power_closed_form(capped, I)));
        ASSERT_TRUE(bit_equal(p.performance, co::performance(capped, I)));
        ASSERT_TRUE(
            bit_equal(p.efficiency, co::energy_efficiency(capped, I)));
        ASSERT_EQ(p.regime, co::regime_at(capped, I));
      }
    }
  }
}

// The batched sensitivity_profile must agree with per-param
// elasticity() calls bit-for-bit (same guards, same step).
TEST(Kernels, SensitivityProfileBitIdenticalToElasticity) {
  Rng rng(1415);
  const std::vector<co::MachineParams> machines = test_machines(rng, 40);
  for (const co::MachineParams& m : machines) {
    for (const co::Metric metric :
         {co::Metric::Performance, co::Metric::EnergyEfficiency,
          co::Metric::Power}) {
      for (const double intensity : {0.1, 1.0, 16.0, 512.0}) {
        const co::SensitivityProfile profile =
            co::sensitivity_profile(m, metric, intensity);
        for (const co::Param p : co::kAllParams)
          ASSERT_TRUE(bit_equal(profile[p],
                                co::elasticity(m, p, metric, intensity)))
              << co::to_string(p) << " I=" << intensity;
      }
    }
  }
}

// ---- Dispatch plumbing ----------------------------------------------------

TEST(Kernels, ResolveKernelPathTable) {
  using co::KernelPath;
  // No override: hardware decides.
  EXPECT_EQ(co::resolve_kernel_path(nullptr, true), KernelPath::Avx2);
  EXPECT_EQ(co::resolve_kernel_path(nullptr, false), KernelPath::Scalar);
  // Explicit scalar always honored.
  EXPECT_EQ(co::resolve_kernel_path("scalar", true), KernelPath::Scalar);
  EXPECT_EQ(co::resolve_kernel_path("scalar", false), KernelPath::Scalar);
  // avx2 honored only when actually available.
  EXPECT_EQ(co::resolve_kernel_path("avx2", true), KernelPath::Avx2);
  EXPECT_EQ(co::resolve_kernel_path("avx2", false), KernelPath::Scalar);
  // Unknown values force the portable path (fail safe, never fast).
  EXPECT_EQ(co::resolve_kernel_path("sse9", true), KernelPath::Scalar);
  EXPECT_EQ(co::resolve_kernel_path("", true), KernelPath::Scalar);
}

TEST(Kernels, DispatchStateIsConsistent) {
  if (!co::avx2_compiled_in()) {
    EXPECT_FALSE(co::avx2_available());
  }
  const co::KernelPath path = co::active_kernel_path();
  if (path == co::KernelPath::Avx2) {
    EXPECT_TRUE(co::avx2_available());
  }
  EXPECT_STREQ(co::to_string(co::KernelPath::Scalar), "scalar");
  EXPECT_STREQ(co::to_string(co::KernelPath::Avx2), "avx2");
}

}  // namespace
