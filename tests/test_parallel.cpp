// Tests for the parallel campaign runner: determinism and equivalence
// with serial execution.

#include <gtest/gtest.h>

#include "microbench/parallel.hpp"
#include "platforms/platform_db.hpp"
#include "sim/factory.hpp"

namespace {

namespace mb = archline::microbench;
namespace pl = archline::platforms;
namespace si = archline::sim;

mb::SuiteOptions fast_options() {
  mb::SuiteOptions opt;
  opt.intensities = {0.25, 2.0, 32.0};
  opt.repeats = 2;
  opt.target_seconds = 0.05;
  opt.include_double = false;
  opt.include_caches = false;
  opt.include_random = false;
  return opt;
}

TEST(Campaign, CoversAllPlatformsInOrder) {
  const auto specs = pl::all_platforms();
  const auto results =
      mb::run_campaign(specs, fast_options(), 99, 2);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    EXPECT_EQ(results[i].platform, specs[i].name);
}

TEST(Campaign, ParallelEqualsSerialBitExact) {
  const auto specs = pl::all_platforms();
  const auto serial = mb::run_campaign(specs, fast_options(), 7, 1);
  const auto parallel = mb::run_campaign(specs, fast_options(), 7, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].dram_sp.size(), parallel[i].dram_sp.size());
    for (std::size_t j = 0; j < serial[i].dram_sp.size(); ++j) {
      EXPECT_DOUBLE_EQ(serial[i].dram_sp[j].seconds,
                       parallel[i].dram_sp[j].seconds);
      EXPECT_DOUBLE_EQ(serial[i].dram_sp[j].joules,
                       parallel[i].dram_sp[j].joules);
    }
    EXPECT_DOUBLE_EQ(serial[i].idle_watts, parallel[i].idle_watts);
  }
}

TEST(Campaign, SeedMatchesManualSuiteRun) {
  // The campaign's per-platform stream must match running the suite by
  // hand with campaign_seed — so experiments can mix the two freely.
  const auto specs = pl::all_platforms();
  const auto campaign = mb::run_campaign(specs, fast_options(), 11, 2);
  const pl::PlatformSpec& spec = pl::platform("GTX 680");
  const si::SimMachine machine = si::make_machine(spec);
  archline::stats::Rng rng(mb::campaign_seed(11, spec.name));
  const mb::SuiteData manual =
      mb::run_suite(machine, fast_options(), rng);
  const mb::SuiteData* from_campaign = nullptr;
  for (const mb::SuiteData& d : campaign)
    if (d.platform == "GTX 680") from_campaign = &d;
  ASSERT_NE(from_campaign, nullptr);
  ASSERT_EQ(manual.dram_sp.size(), from_campaign->dram_sp.size());
  for (std::size_t j = 0; j < manual.dram_sp.size(); ++j)
    EXPECT_DOUBLE_EQ(manual.dram_sp[j].joules,
                     from_campaign->dram_sp[j].joules);
}

TEST(Campaign, DifferentSeedsDiffer) {
  const auto specs = pl::all_platforms().subspan(0, 2);
  const auto a = mb::run_campaign(specs, fast_options(), 1, 2);
  const auto b = mb::run_campaign(specs, fast_options(), 2, 2);
  EXPECT_NE(a[0].dram_sp[0].joules, b[0].dram_sp[0].joules);
}

TEST(Campaign, ZeroThreadsUsesHardwareConcurrency) {
  const auto specs = pl::all_platforms().subspan(0, 3);
  const auto results = mb::run_campaign(specs, fast_options(), 5, 0);
  EXPECT_EQ(results.size(), 3u);
}

}  // namespace
