// SimClock semantics and the clock seam through serve::Metrics and
// serve::Server: uptime/qps are exact under an injected clock, the
// null default resolves to the real steady clock, and concurrent
// advance/read never tears.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "serve/metrics.hpp"
#include "serve/server.hpp"
#include "sim/clock.hpp"

namespace {

using archline::sim::SimClock;
using namespace std::chrono;

TEST(SimClock, StartsAtEpochAndAdvancesOnDemand) {
  SimClock clock;
  const auto t0 = clock.now();
  EXPECT_EQ(t0.time_since_epoch().count(), 0);
  EXPECT_EQ(clock.now(), t0);  // time does not pass by itself
  clock.advance(milliseconds(250));
  EXPECT_EQ(clock.now() - t0, milliseconds(250));
  clock.advance_ms(750);
  EXPECT_EQ(clock.now() - t0, seconds(1));
  clock.advance(nanoseconds(1));
  EXPECT_EQ(clock.now() - t0, seconds(1) + nanoseconds(1));
}

TEST(SimClock, RealClockTracksSteadyClock) {
  const auto before = steady_clock::now();
  const auto mid = archline::sim::real_clock().now();
  const auto after = steady_clock::now();
  EXPECT_LE(before, mid);
  EXPECT_LE(mid, after);
}

TEST(SimClock, ConcurrentAdvanceAndReadNeverTears) {
  // 4 advancers x 10k ticks of 1 us; readers running throughout must
  // only ever observe monotone values, and the total must be exact.
  SimClock clock;
  constexpr int kThreads = 4;
  constexpr int kTicks = 10000;
  std::atomic<bool> go{false};
  std::atomic<bool> done{false};
  std::atomic<bool> regressed{false};
  std::thread reader([&] {
    auto last = clock.now();
    while (!done.load(std::memory_order_acquire)) {
      const auto now = clock.now();
      if (now < last) regressed.store(true);
      last = now;
    }
  });
  std::vector<std::thread> advancers;
  for (int t = 0; t < kThreads; ++t)
    advancers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kTicks; ++i) clock.advance(microseconds(1));
    });
  go.store(true, std::memory_order_release);
  for (auto& t : advancers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(regressed.load());
  EXPECT_EQ(clock.now().time_since_epoch(),
            microseconds(kThreads * kTicks));
}

TEST(SimClock, MetricsUptimeIsExactUnderSimClock) {
  SimClock clock;
  archline::serve::Metrics metrics(&clock);
  EXPECT_DOUBLE_EQ(metrics.snapshot().uptime_s, 0.0);
  clock.advance_ms(2500);
  EXPECT_DOUBLE_EQ(metrics.snapshot().uptime_s, 2.5);
}

TEST(SimClock, ServerStatsQpsIsExactUnderSimClock) {
  // completed / uptime with both numbers exact: 4 requests over 2
  // simulated seconds is a qps of exactly 2. No tolerance needed.
  SimClock clock;
  archline::serve::ServerOptions options;
  options.threads = 1;
  options.clock = &clock;
  archline::serve::Server server(options);
  const char* kPredict =
      R"({"type":"predict","platform":"GTX Titan","intensity":4})";
  for (int i = 0; i < 4; ++i) (void)server.handle_now(kPredict);
  clock.advance_ms(2000);
  const archline::serve::Json stats = archline::serve::Json::parse(
      server.handle_now(R"({"type":"stats"})"));
  EXPECT_DOUBLE_EQ(stats.number_or("uptime_s", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(stats.number_or("qps", -1.0), 2.0);
}

}  // namespace
