// Tests for the Nelder-Mead simplex minimizer.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "fit/nelder_mead.hpp"

namespace {

namespace ft = archline::fit;

TEST(NelderMead, MinimizesQuadratic1D) {
  const auto f = [](std::span<const double> x) {
    return (x[0] - 3.0) * (x[0] - 3.0);
  };
  const auto r = ft::nelder_mead(f, std::vector<double>{0.0});
  EXPECT_NEAR(r.x[0], 3.0, 1e-5);
  EXPECT_LT(r.fx, 1e-9);
}

TEST(NelderMead, MinimizesShiftedSphere4D) {
  const auto f = [](std::span<const double> x) {
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - static_cast<double>(i);
      acc += d * d;
    }
    return acc;
  };
  const auto r =
      ft::nelder_mead(f, std::vector<double>{5.0, 5.0, 5.0, 5.0});
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(r.x[i], static_cast<double>(i), 1e-4);
}

TEST(NelderMead, Rosenbrock2D) {
  const auto f = [](std::span<const double> x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  ft::NelderMeadOptions opt;
  opt.max_evaluations = 50000;
  const auto r = ft::nelder_mead(f, std::vector<double>{-1.2, 1.0}, opt);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, HandlesMaxKinks) {
  // The roofline objective is a max() of planes; NM must cope.
  const auto f = [](std::span<const double> x) {
    return std::max({std::abs(x[0] - 2.0), std::abs(x[1] + 1.0), 0.1});
  };
  const auto r = ft::nelder_mead(f, std::vector<double>{10.0, 10.0});
  EXPECT_NEAR(r.fx, 0.1, 1e-6);
  EXPECT_NEAR(r.x[0], 2.0, 0.2);
  EXPECT_NEAR(r.x[1], -1.0, 0.2);
}

TEST(NelderMead, NonFiniteObjectiveTreatedAsHuge) {
  const auto f = [](std::span<const double> x) {
    if (x[0] < 0.0) return std::numeric_limits<double>::quiet_NaN();
    return (x[0] - 1.0) * (x[0] - 1.0);
  };
  const auto r = ft::nelder_mead(f, std::vector<double>{2.0});
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
}

TEST(NelderMead, RespectsEvaluationBudget) {
  int count = 0;
  const auto f = [&count](std::span<const double> x) {
    ++count;
    return x[0] * x[0];
  };
  ft::NelderMeadOptions opt;
  opt.max_evaluations = 50;
  (void)ft::nelder_mead(f, std::vector<double>{100.0}, opt);
  EXPECT_LE(count, 55);  // small overshoot from the final shrink step
}

TEST(NelderMead, ConvergedFlagOnEasyProblem) {
  const auto f = [](std::span<const double> x) { return x[0] * x[0]; };
  const auto r = ft::nelder_mead(f, std::vector<double>{1.0});
  EXPECT_TRUE(r.converged);
}

TEST(NelderMead, EmptyStartThrows) {
  const auto f = [](std::span<const double>) { return 0.0; };
  EXPECT_THROW((void)ft::nelder_mead(f, std::vector<double>{}),
               std::invalid_argument);
}

TEST(NelderMead, StartAtOptimumStaysThere) {
  const auto f = [](std::span<const double> x) {
    return x[0] * x[0] + x[1] * x[1];
  };
  const auto r = ft::nelder_mead(f, std::vector<double>{0.0, 0.0});
  EXPECT_LT(r.fx, 1e-6);
}

}  // namespace
