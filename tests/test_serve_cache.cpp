// Sharded LRU cache tests: eviction order, deterministic sharding,
// hit/miss accounting, and concurrent hammering.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hpp"

namespace {

using archline::serve::ShardedLruCache;

TEST(ServeCache, StoresAndRetrieves) {
  ShardedLruCache cache(16, 1);
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", "1");
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "1");
}

TEST(ServeCache, GetReturnsTagAndBodyIntoCallerBuffer) {
  ShardedLruCache cache(16, 1);
  cache.put("req", "body-bytes", /*tag=*/3);
  std::string value = "previous contents, capacity to reuse";
  std::uint8_t tag = 0;
  ASSERT_TRUE(cache.get("req", value, tag));
  EXPECT_EQ(value, "body-bytes");  // single copy, buffer fully replaced
  EXPECT_EQ(tag, 3);               // tag rides out-of-band, not in the body
  // A miss leaves the caller's buffer and tag untouched.
  value = "untouched";
  tag = 77;
  EXPECT_FALSE(cache.get("absent", value, tag));
  EXPECT_EQ(value, "untouched");
  EXPECT_EQ(tag, 77);
}

TEST(ServeCache, DefaultTagIsZeroAndPutOverwritesTag) {
  ShardedLruCache cache(16, 1);
  cache.put("k", "v1");  // tag defaults to 0
  std::string value;
  std::uint8_t tag = 9;
  ASSERT_TRUE(cache.get("k", value, tag));
  EXPECT_EQ(tag, 0);
  cache.put("k", "v2", /*tag=*/5);  // re-put refreshes value AND tag
  ASSERT_TRUE(cache.get("k", value, tag));
  EXPECT_EQ(value, "v2");
  EXPECT_EQ(tag, 5);
}

TEST(ServeCache, EvictsLeastRecentlyUsed) {
  // One shard, capacity 3: access order controls the victim.
  ShardedLruCache cache(3, 1);
  cache.put("a", "1");
  cache.put("b", "2");
  cache.put("c", "3");
  ASSERT_TRUE(cache.get("a").has_value());  // refresh a: LRU is now b
  cache.put("d", "4");                      // evicts b
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_TRUE(cache.get("d").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ServeCache, PutRefreshesRecencyAndValue) {
  ShardedLruCache cache(2, 1);
  cache.put("a", "1");
  cache.put("b", "2");
  cache.put("a", "1'");  // refresh: LRU is now b
  cache.put("c", "3");   // evicts b
  EXPECT_EQ(cache.get("a").value_or(""), "1'");
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
}

TEST(ServeCache, ZeroCapacityDisables) {
  ShardedLruCache cache(0, 4);
  cache.put("a", "1");
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServeCache, HashIsStableFnv1a) {
  // FNV-1a 64 known-answer vectors: placement must be deterministic
  // across runs, builds, and platforms.
  EXPECT_EQ(ShardedLruCache::hash_key(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(ShardedLruCache::hash_key("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(ShardedLruCache::hash_key("foobar"), 0x85944171f73967e8ULL);
}

TEST(ServeCache, ShardingIsDeterministicAndCoversShards) {
  ShardedLruCache cache(1024, 8);
  EXPECT_EQ(cache.shard_count(), 8u);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::size_t s = cache.shard_of(key);
    EXPECT_LT(s, cache.shard_count());
    EXPECT_EQ(s, cache.shard_of(key));  // stable on repeat
    seen.insert(s);
  }
  // 200 distinct keys over 8 shards: every shard should be exercised.
  EXPECT_EQ(seen.size(), cache.shard_count());
}

TEST(ServeCache, ShardCountRoundsUpToPowerOfTwo) {
  ShardedLruCache cache(64, 5);
  EXPECT_EQ(cache.shard_count(), 8u);
}

TEST(ServeCache, HitMissAccounting) {
  ShardedLruCache cache(16, 2);
  (void)cache.get("a");  // miss
  cache.put("a", "1");
  (void)cache.get("a");  // hit
  (void)cache.get("a");  // hit
  (void)cache.get("b");  // miss
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_NEAR(s.hit_rate(), 0.5, 1e-12);
}

TEST(ServeCache, CollisionSafetyByFullKeyComparison) {
  // Two distinct keys in the same shard must never alias, whatever
  // their hashes do.
  ShardedLruCache cache(1024, 1);
  for (int i = 0; i < 500; ++i)
    cache.put("k" + std::to_string(i), "v" + std::to_string(i));
  for (int i = 0; i < 500; ++i)
    EXPECT_EQ(cache.get("k" + std::to_string(i)).value_or("?"),
              "v" + std::to_string(i));
}

TEST(ServeCache, ConcurrentHammering) {
  ShardedLruCache cache(256, 8);
  constexpr int kThreads = 8;
  constexpr int kOps = 20000;
  std::atomic<long> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &wrong, t] {
      for (int i = 0; i < kOps; ++i) {
        // Overlapping key ranges across threads force shard contention.
        const int k = (t * 37 + i) % 512;
        const std::string key = "key-" + std::to_string(k);
        const std::string want = "value-" + std::to_string(k);
        if (i % 3 == 0) {
          cache.put(key, want);
        } else if (auto hit = cache.get(key)) {
          // A hit must always carry the value written for that key.
          if (*hit != want) wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  const auto s = cache.stats();
  EXPECT_LE(s.entries, s.capacity);
  // Each thread does one get() per op except when i % 3 == 0 (a put).
  const std::uint64_t gets_per_thread = kOps - (kOps + 2) / 3;
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kThreads) * gets_per_thread);
  EXPECT_EQ(s.insertions - s.evictions, s.entries);
}

}  // namespace
