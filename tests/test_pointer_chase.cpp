// Tests for the pointer-chase benchmark: Sattolo cycles and kernel
// descriptors.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "microbench/pointer_chase.hpp"

namespace {

namespace mb = archline::microbench;
using archline::stats::Rng;

TEST(SattoloCycle, ProducesValidPermutation) {
  Rng rng(1);
  const auto next = mb::sattolo_cycle(100, rng);
  std::set<std::size_t> seen(next.begin(), next.end());
  EXPECT_EQ(seen.size(), 100u);  // a permutation: all targets distinct
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(SattoloCycle, IsSingleCycle) {
  Rng rng(2);
  for (const std::size_t n : {2u, 3u, 17u, 1024u})
    EXPECT_TRUE(mb::is_single_cycle(mb::sattolo_cycle(n, rng))) << n;
}

TEST(SattoloCycle, NoSelfLoops) {
  Rng rng(3);
  const auto next = mb::sattolo_cycle(256, rng);
  // A single cycle of length >= 2 can have no fixed point.
  for (std::size_t i = 0; i < next.size(); ++i) EXPECT_NE(next[i], i);
}

TEST(SattoloCycle, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(mb::sattolo_cycle(50, a), mb::sattolo_cycle(50, b));
}

TEST(SattoloCycle, DifferentSeedsDiffer) {
  Rng a(7);
  Rng b(8);
  EXPECT_NE(mb::sattolo_cycle(50, a), mb::sattolo_cycle(50, b));
}

TEST(SattoloCycle, RejectsTinyN) {
  Rng rng(1);
  EXPECT_THROW((void)mb::sattolo_cycle(0, rng), std::invalid_argument);
  EXPECT_THROW((void)mb::sattolo_cycle(1, rng), std::invalid_argument);
}

TEST(IsSingleCycle, DetectsBrokenCycles) {
  // Two 2-cycles over 4 elements: not a single cycle.
  const std::vector<std::size_t> two_cycles = {1, 0, 3, 2};
  EXPECT_FALSE(mb::is_single_cycle(two_cycles));
  // Identity (all self-loops): not a single cycle.
  const std::vector<std::size_t> identity = {0, 1, 2, 3};
  EXPECT_FALSE(mb::is_single_cycle(identity));
  // A genuine 4-cycle.
  const std::vector<std::size_t> four_cycle = {2, 3, 1, 0};
  EXPECT_TRUE(mb::is_single_cycle(four_cycle));
  EXPECT_FALSE(mb::is_single_cycle({}));
}

TEST(RandomAccessKernel, FieldsSet) {
  const auto k = mb::random_access_kernel(1e6, 64e6);
  EXPECT_DOUBLE_EQ(k.accesses, 1e6);
  EXPECT_DOUBLE_EQ(k.working_set_bytes, 64e6);
  EXPECT_EQ(k.pattern, archline::core::AccessPattern::Random);
  EXPECT_DOUBLE_EQ(k.flops, 0.0);
  EXPECT_NO_THROW(k.validate());
}

TEST(RandomAccessKernel, RejectsBadArguments) {
  EXPECT_THROW((void)mb::random_access_kernel(0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)mb::random_access_kernel(1.0, 0.0),
               std::invalid_argument);
}

}  // namespace
