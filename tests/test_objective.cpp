// Tests for the fitting objective: packing, residuals, prediction errors,
// and the heuristic initial guess.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/roofline.hpp"
#include "fit/objective.hpp"
#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"
#include "sim/factory.hpp"

namespace {

namespace ft = archline::fit;
namespace co = archline::core;
namespace mb = archline::microbench;
namespace pl = archline::platforms;
namespace si = archline::sim;

co::MachineParams titan() { return pl::platform("GTX Titan").machine(); }

mb::SuiteData titan_suite(std::uint64_t seed = 5) {
  const si::SimMachine m = si::make_machine(pl::platform("GTX Titan"));
  archline::stats::Rng rng(seed);
  mb::SuiteOptions opt;
  opt.intensities = {0.125, 0.5, 2.0, 8.0, 32.0, 128.0};
  opt.repeats = 2;
  opt.target_seconds = 0.1;
  opt.include_double = false;
  opt.include_caches = false;
  opt.include_random = false;
  return mb::run_suite(m, opt, rng);
}

TEST(ParameterCount, SixCappedFiveUncapped) {
  EXPECT_EQ(ft::parameter_count(ft::ModelKind::Capped), 6u);
  EXPECT_EQ(ft::parameter_count(ft::ModelKind::Uncapped), 5u);
}

TEST(PackUnpack, RoundTripCapped) {
  const co::MachineParams m = titan();
  const auto x = ft::pack(m, ft::ModelKind::Capped);
  ASSERT_EQ(x.size(), 6u);
  const co::MachineParams back = ft::unpack(x, ft::ModelKind::Capped);
  EXPECT_NEAR(back.tau_flop, m.tau_flop, 1e-18);
  EXPECT_NEAR(back.eps_mem, m.eps_mem, 1e-18);
  EXPECT_NEAR(back.pi1, m.pi1, 1e-9);
  EXPECT_NEAR(back.delta_pi, m.delta_pi, 1e-9);
}

TEST(PackUnpack, UncappedDropsCap) {
  const auto x = ft::pack(titan(), ft::ModelKind::Uncapped);
  ASSERT_EQ(x.size(), 5u);
  EXPECT_TRUE(ft::unpack(x, ft::ModelKind::Uncapped).uncapped());
}

TEST(Unpack, WrongSizeThrows) {
  EXPECT_THROW((void)ft::unpack(std::vector<double>{1.0, 2.0},
                                ft::ModelKind::Capped),
               std::invalid_argument);
}

TEST(Residuals, ZeroAtGroundTruthWithoutNoise) {
  // Build noise-free observations directly from the model.
  const co::MachineParams m = titan();
  std::vector<mb::Observation> obs;
  for (const double intensity : {0.25, 2.0, 16.0}) {
    mb::Observation o;
    o.kernel.flops = 1e12;
    o.kernel.bytes = 1e12 / intensity;
    o.seconds = co::time(m, o.kernel.workload());
    o.joules = co::energy(m, o.kernel.workload());
    o.watts = o.joules / o.seconds;
    obs.push_back(o);
  }
  const auto r = ft::time_energy_residuals(m, obs);
  ASSERT_EQ(r.size(), 9u);
  for (const double v : r) EXPECT_NEAR(v, 0.0, 1e-12);
  EXPECT_NEAR(ft::sum_squared_residuals(m, obs), 0.0, 1e-20);
}

TEST(Residuals, WrongParametersProduceSignal) {
  const mb::SuiteData data = titan_suite();
  co::MachineParams wrong = titan();
  wrong.eps_flop *= 2.0;
  EXPECT_GT(ft::sum_squared_residuals(wrong, data.dram_sp),
            10.0 * ft::sum_squared_residuals(titan(), data.dram_sp));
}

TEST(PredictionErrors, SmallAtGroundTruth) {
  const mb::SuiteData data = titan_suite();
  const ft::PredictionErrors e =
      ft::prediction_errors(titan(), data.dram_sp);
  ASSERT_EQ(e.power.size(), data.dram_sp.size());
  for (const double v : e.power) EXPECT_LT(std::abs(v), 0.1);
  for (const double v : e.time) EXPECT_LT(std::abs(v), 0.1);
}

TEST(PredictionErrors, PerformanceIsInverseTimeError) {
  const mb::SuiteData data = titan_suite();
  const ft::PredictionErrors e =
      ft::prediction_errors(titan(), data.dram_sp);
  for (std::size_t i = 0; i < e.time.size(); ++i)
    EXPECT_NEAR(e.performance[i], 1.0 / (1.0 + e.time[i]) - 1.0, 1e-12);
}

TEST(InitialGuess, LandsWithinFactorOfTruth) {
  const mb::SuiteData data = titan_suite();
  const co::MachineParams guess =
      ft::initial_guess(data.dram_sp, ft::ModelKind::Capped);
  const co::MachineParams truth = titan();
  EXPECT_LT(guess.tau_flop / truth.tau_flop, 3.0);
  EXPECT_GT(guess.tau_flop / truth.tau_flop, 0.3);
  EXPECT_LT(guess.tau_mem / truth.tau_mem, 3.0);
  EXPECT_GT(guess.tau_mem / truth.tau_mem, 0.3);
  EXPECT_LT(guess.pi1 / truth.pi1, 3.0);
  EXPECT_GT(guess.pi1 / truth.pi1, 0.2);
}

TEST(InitialGuess, UncappedVariantHasNoCap) {
  const mb::SuiteData data = titan_suite();
  EXPECT_TRUE(
      ft::initial_guess(data.dram_sp, ft::ModelKind::Uncapped).uncapped());
}

TEST(InitialGuess, TooFewObservationsThrows) {
  const mb::SuiteData data = titan_suite();
  const std::span<const mb::Observation> few(data.dram_sp.data(), 3);
  EXPECT_THROW((void)ft::initial_guess(few, ft::ModelKind::Capped),
               std::invalid_argument);
}

}  // namespace
