// Tests for CSV writing, escaping and parsing round-trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "report/csv.hpp"

namespace {

namespace rp = archline::report;

TEST(CsvEscape, PlainCellUntouched) {
  EXPECT_EQ(rp::csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaQuoted) {
  EXPECT_EQ(rp::csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(rp::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) {
  EXPECT_EQ(rp::csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, EmptyHeaderThrows) {
  EXPECT_THROW(rp::CsvWriter({}), std::invalid_argument);
}

TEST(CsvWriter, WrongCellCountThrows) {
  rp::CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), std::invalid_argument);
}

TEST(CsvWriter, SerializesHeaderAndRows) {
  rp::CsvWriter w({"x", "y"});
  w.add_row({"1", "2"});
  w.add_row({"3", "4"});
  EXPECT_EQ(w.to_string(), "x,y\n1,2\n3,4\n");
}

TEST(CsvParse, SimpleGrid) {
  const auto rows = rp::parse_csv("a,b\n1,2\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvParse, QuotedCommaStaysInCell) {
  const auto rows = rp::parse_csv("\"a,b\",c\n");
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 2u);
  EXPECT_EQ(rows[0][0], "a,b");
}

TEST(CsvParse, EscapedQuote) {
  const auto rows = rp::parse_csv("\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(CsvParse, EmbeddedNewlineInQuotedCell) {
  const auto rows = rp::parse_csv("\"line1\nline2\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(CsvParse, CrLfHandled) {
  const auto rows = rp::parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(CsvParse, MissingTrailingNewline) {
  const auto rows = rp::parse_csv("a,b\n1,2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(CsvParse, EmptyStringYieldsNoRows) {
  EXPECT_TRUE(rp::parse_csv("").empty());
}

TEST(CsvRoundTrip, WriterThenParser) {
  rp::CsvWriter w({"name", "value"});
  w.add_row({"plain", "1"});
  w.add_row({"with,comma", "2"});
  w.add_row({"with \"quote\"", "3"});
  const auto rows = rp::parse_csv(w.to_string());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[2][0], "with,comma");
  EXPECT_EQ(rows[3][0], "with \"quote\"");
}

TEST(CsvFile, WriteAndReadBack) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "archline_csv_test" /
      "out.csv";
  rp::CsvWriter w({"a"});
  w.add_row({"42"});
  w.write_file(path);
  const auto rows = rp::read_csv_file(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "42");
  std::filesystem::remove_all(path.parent_path());
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW((void)rp::read_csv_file("/nonexistent/path/x.csv"),
               std::runtime_error);
}

}  // namespace
