// Tests for Pearson/Spearman correlation and mid-rank computation.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/correlation.hpp"
#include "stats/rng.hpp"

namespace {

namespace st = archline::stats;

TEST(Pearson, PerfectPositive) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {2.0, 4.0, 6.0};
  EXPECT_NEAR(st::pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {6.0, 4.0, 2.0};
  EXPECT_NEAR(st::pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, KnownValue) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = {2.0, 1.0, 4.0, 3.0, 5.0};
  EXPECT_NEAR(st::pearson(x, y), 0.8, 1e-12);
}

TEST(Pearson, InvariantToAffineTransform) {
  const std::vector<double> x = {1.0, 5.0, 2.0, 8.0};
  const std::vector<double> y = {0.5, 3.0, 1.0, 9.0};
  std::vector<double> x2(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) x2[i] = 100.0 * x[i] - 7.0;
  EXPECT_NEAR(st::pearson(x, y), st::pearson(x2, y), 1e-12);
}

TEST(Pearson, LengthMismatchThrows) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0};
  EXPECT_THROW((void)st::pearson(x, y), std::invalid_argument);
}

TEST(Pearson, ConstantInputThrows) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)st::pearson(x, y), std::invalid_argument);
}

TEST(Pearson, TooFewPointsThrows) {
  const std::vector<double> x = {1.0};
  EXPECT_THROW((void)st::pearson(x, x), std::invalid_argument);
}

TEST(Pearson, NearZeroForIndependent) {
  st::Rng rng(21);
  std::vector<double> x(5000);
  std::vector<double> y(5000);
  for (double& v : x) v = rng.normal();
  for (double& v : y) v = rng.normal();
  EXPECT_NEAR(st::pearson(x, y), 0.0, 0.05);
}

TEST(Ranks, SimpleOrdering) {
  const std::vector<double> xs = {30.0, 10.0, 20.0};
  const std::vector<double> r = st::ranks(xs);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(Ranks, TiesGetMidRank) {
  const std::vector<double> xs = {1.0, 2.0, 2.0, 3.0};
  const std::vector<double> r = st::ranks(xs);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Spearman, MonotoneNonlinearIsOne) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {1.0, 8.0, 27.0, 64.0};  // x^3
  EXPECT_NEAR(st::spearman(x, y), 1.0, 1e-12);
}

TEST(Spearman, ReversedIsMinusOne) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {10.0, 7.0, 3.0, 1.0};
  EXPECT_NEAR(st::spearman(x, y), -1.0, 1e-12);
}

TEST(Spearman, RobustToOutlier) {
  // One huge outlier wrecks Pearson but not Spearman.
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = {1.0, 2.0, 3.0, 4.0, 1000.0};
  EXPECT_NEAR(st::spearman(x, y), 1.0, 1e-12);
}

}  // namespace
