// TCP transport integration tests over real sockets: the epoll event
// loop's framing contract (half-close answers the final un-terminated
// line), pipelined bursts whose total size exceeds the per-line limit,
// the hard connection cap, idle timeouts (on a SimClock — exact, no
// wall-clock waits), queue deadlines, and graceful stop flushing.
// Linux-only, like the transport itself.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/tcp.hpp"
#include "serve_tcp_testlib.hpp"
#include "sim/clock.hpp"

namespace {

using namespace archline::serve;
using serve_tcp_testlib::TcpTransport;
using serve_tcp_testlib::connect_to;
using serve_tcp_testlib::read_lines;
using serve_tcp_testlib::send_all;
using serve_tcp_testlib::wait_for_eof;

const char* kPredict =
    R"({"type":"predict","platform":"GTX Titan","flops":1e9,"intensity":4})";

ServerOptions small_options() {
  ServerOptions o;
  o.threads = 2;
  o.queue_capacity = 64;
  o.cache_capacity = 128;
  o.cache_shards = 4;
  return o;
}

TEST(ServeTcp, AnswersPipelinedRequestsInOrder) {
  TcpTransport transport(small_options(), TcpOptions{});
  const int fd = connect_to(transport.port());
  ASSERT_GE(fd, 0);
  std::string block;
  for (int i = 0; i < 20; ++i) {
    Json req = Json::object();
    req.set("type", "predict");
    req.set("platform", "GTX Titan");
    req.set("id", i);
    req.set("intensity", 1.0 + i);
    block += req.dump();
    block += '\n';
  }
  ASSERT_TRUE(send_all(fd, block));
  const auto lines = read_lines(fd, 20);
  ASSERT_EQ(lines.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    const Json body = Json::parse(lines[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(body.bool_or("ok", false));
    EXPECT_EQ(body.number_or("id", -1), i);  // FIFO order held
  }
  ::close(fd);
}

TEST(ServeTcp, HalfCloseStillAnswersFinalUnterminatedLine) {
  TcpTransport transport(small_options(), TcpOptions{});
  const int fd = connect_to(transport.port());
  ASSERT_GE(fd, 0);
  // One complete line, then a final request with no trailing newline,
  // then half-close the write side. Both must be answered.
  std::string block = std::string(kPredict) + "\n" +
                      R"({"type":"platforms"})";
  ASSERT_TRUE(send_all(fd, block));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  const auto lines = read_lines(fd, 2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(Json::parse(lines[0]).string_or("type", ""), "predict");
  EXPECT_EQ(Json::parse(lines[1]).string_or("type", ""), "platforms");
  EXPECT_TRUE(wait_for_eof(fd));  // server closes after the flush
  ::close(fd);
}

TEST(ServeTcp, PipelinedBurstBiggerThanLineLimitIsNotRejected) {
  // Regression: the old transport bounded TOTAL buffered bytes before
  // extracting lines, so a burst of small requests tripped "too_large".
  ServerOptions options = small_options();
  options.limits.max_request_bytes = 512;
  TcpTransport transport(options, TcpOptions{});
  const int fd = connect_to(transport.port());
  ASSERT_GE(fd, 0);
  std::string block;
  constexpr int kRequests = 64;  // ~70 bytes each: way past 2 * 512 total
  for (int i = 0; i < kRequests; ++i)
    block += std::string(kPredict) + "\n";
  ASSERT_GT(block.size(), 2 * options.limits.max_request_bytes);
  ASSERT_TRUE(send_all(fd, block));
  const auto lines = read_lines(fd, kRequests);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kRequests));
  for (const std::string& line : lines)
    EXPECT_TRUE(Json::parse(line).bool_or("ok", false));
  ::close(fd);
}

TEST(ServeTcp, UnterminatedOversizedLineGetsTooLargeThenClose) {
  ServerOptions options = small_options();
  options.limits.max_request_bytes = 512;
  TcpTransport transport(options, TcpOptions{});
  const int fd = connect_to(transport.port());
  ASSERT_GE(fd, 0);
  // A single "line" that never ends and exceeds the limit.
  const std::string endless(2048, 'x');
  ASSERT_TRUE(send_all(fd, endless));
  const auto lines = read_lines(fd, 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(Json::parse(lines[0]).string_or("error", ""), "too_large");
  EXPECT_TRUE(wait_for_eof(fd));
  ::close(fd);
}

TEST(ServeTcp, ConnectionCapAnswersOverloadedAndCloses) {
  TcpOptions tcp;
  tcp.max_connections = 2;
  TcpTransport transport(small_options(), tcp);
  const int fd1 = connect_to(transport.port());
  const int fd2 = connect_to(transport.port());
  ASSERT_GE(fd1, 0);
  ASSERT_GE(fd2, 0);
  // Round-trips prove both are accepted (not just queued in the
  // backlog) before the third connect.
  ASSERT_TRUE(send_all(fd1, std::string(kPredict) + "\n"));
  ASSERT_TRUE(send_all(fd2, std::string(kPredict) + "\n"));
  ASSERT_EQ(read_lines(fd1, 1).size(), 1u);
  ASSERT_EQ(read_lines(fd2, 1).size(), 1u);

  const int fd3 = connect_to(transport.port());
  ASSERT_GE(fd3, 0);
  const auto rejected = read_lines(fd3, 1);
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(Json::parse(rejected[0]).string_or("error", ""), "overloaded");
  EXPECT_TRUE(wait_for_eof(fd3));
  ::close(fd3);

  const auto snap = transport.server().metrics().snapshot();
  EXPECT_EQ(snap.connections_accepted, 2u);
  EXPECT_EQ(snap.connections_rejected, 1u);
  EXPECT_EQ(snap.connections_open, 2u);
  ::close(fd1);
  ::close(fd2);
}

TEST(ServeTcp, CapFreesUpWhenAConnectionCloses) {
  TcpOptions tcp;
  tcp.max_connections = 1;
  TcpTransport transport(small_options(), tcp);
  const int fd1 = connect_to(transport.port());
  ASSERT_GE(fd1, 0);
  ASSERT_TRUE(send_all(fd1, std::string(kPredict) + "\n"));
  ASSERT_EQ(read_lines(fd1, 1).size(), 1u);
  ::close(fd1);
  // The slot is released once the loop notices the close; a new client
  // must eventually be admitted and served. Each attempt is a full
  // blocking round-trip, so retries are already paced by the loop —
  // no sleeping needed, just a wall-clock bound on the whole test.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool served = false;
  while (!served && std::chrono::steady_clock::now() < deadline) {
    const int fd = connect_to(transport.port());
    ASSERT_GE(fd, 0);
    if (send_all(fd, std::string(kPredict) + "\n")) {
      const auto lines = read_lines(fd, 1);
      if (lines.size() == 1 &&
          Json::parse(lines[0]).bool_or("ok", false))
        served = true;
    }
    ::close(fd);
    if (!served) std::this_thread::yield();
  }
  EXPECT_TRUE(served);
}

TEST(ServeTcp, IdleConnectionIsClosedAndCounted) {
  // The idle timer runs on a SimClock: 60 s of simulated idleness is
  // one advance call, so the test proves "closed because idle", not
  // "closed because the test slept long enough". The poll interval is
  // real time — it only bounds how fast the loop notices.
  archline::sim::SimClock clock;
  TcpOptions tcp;
  tcp.idle_timeout_ms = 60'000;
  tcp.poll_interval_ms = 5;
  tcp.clock = &clock;
  TcpTransport transport(small_options(), tcp);
  const int fd = connect_to(transport.port());
  ASSERT_GE(fd, 0);
  // Activity first, so the close below is provably the idle timer —
  // and proof the connection survives while sim time stands still.
  ASSERT_TRUE(send_all(fd, std::string(kPredict) + "\n"));
  ASSERT_EQ(read_lines(fd, 1).size(), 1u);
  clock.advance_ms(60'001);  // one tick past the limit
  EXPECT_TRUE(wait_for_eof(fd));  // blocks until the sweep fires
  ::close(fd);
  const auto snap = transport.server().metrics().snapshot();
  EXPECT_EQ(snap.connections_idle_closed, 1u);
  EXPECT_EQ(snap.connections_open, 0u);
}

TEST(ServeTcp, QueueWaitPastDeadlineAnswersDeadlineExceeded) {
  // One worker, 1 ms deadline: a large fit occupies the worker for much
  // longer than 1 ms, so the predicts pipelined behind it expire in the
  // queue and must be answered with the canned deadline error. The
  // heavy lane is disabled so the fit shares a lane with the predicts —
  // with lanes on, the scheduler would serve the predicts first and
  // defeat the head-of-line blocking this test depends on.
  ServerOptions options = small_options();
  options.threads = 1;
  options.heavy_lane_capacity = 0;
  options.request_deadline_ms = 1;
  TcpTransport transport(options, TcpOptions{});

  Json obs = Json::array();
  for (int p = 0; p < 2000; ++p) {
    Json row = Json::object();
    row.set("flops", 1e9);
    row.set("bytes", 1e9 / (1.0 + p % 37));
    row.set("seconds", 1e-3 * (1 + p % 11));
    row.set("joules", 1e-1 * (1 + p % 7));
    obs.push_back(std::move(row));
  }
  Json fit = Json::object();
  fit.set("type", "fit");
  fit.set("observations", std::move(obs));

  const int fd = connect_to(transport.port());
  ASSERT_GE(fd, 0);
  std::string block = fit.dump() + "\n";
  constexpr int kLateRequests = 5;
  for (int i = 0; i < kLateRequests; ++i)
    block += std::string(kPredict) + "\n";
  ASSERT_TRUE(send_all(fd, block));
  const auto lines = read_lines(fd, 1 + kLateRequests);
  ASSERT_EQ(lines.size(), 1u + kLateRequests);
  // The fit itself ran (its deadline had not passed at pop time is not
  // guaranteed — it may expire too if the loop submitted it late — but
  // the trailing predicts MUST all be deadline errors).
  for (int i = 1; i <= kLateRequests; ++i)
    EXPECT_EQ(Json::parse(lines[static_cast<std::size_t>(i)])
                  .string_or("error", ""),
              "deadline_exceeded");
  ::close(fd);
  const auto snap = transport.server().metrics().snapshot();
  EXPECT_GE(snap.deadline_exceeded, static_cast<std::uint64_t>(kLateRequests));
}

TEST(ServeTcp, GracefulStopFlushesAdmittedWork) {
  // Submit a batch, then immediately tear the transport down; every
  // admitted request must still be answered before the socket closes.
  auto transport =
      std::make_unique<TcpTransport>(small_options(), TcpOptions{});
  const int fd = connect_to(transport->port());
  ASSERT_GE(fd, 0);
  constexpr int kRequests = 16;
  std::string block;
  for (int i = 0; i < kRequests; ++i)
    block += std::string(kPredict) + "\n";
  ASSERT_TRUE(send_all(fd, block));
  // The first response proves the loop consumed the whole block (one
  // localhost segment, read in one 64 KiB recv), i.e. all kRequests are
  // admitted. Then destruction stops the loop; the admitted work must
  // still be answered and flushed before the connection closes.
  std::string carry;
  ASSERT_EQ(read_lines(fd, 1, &carry).size(), 1u);
  std::thread teardown([&] { transport.reset(); });
  const auto rest = read_lines(fd, kRequests - 1, &carry);
  teardown.join();
  EXPECT_EQ(rest.size(), static_cast<std::size_t>(kRequests - 1));
  ::close(fd);
}

TEST(ServeTcp, ManyConcurrentConnections) {
  // 32 sockets, interleaved writes, all answered; the transport runs on
  // one loop thread regardless.
  ServerOptions options = small_options();
  options.queue_capacity = 1024;  // headroom: no legitimate overloads
  TcpTransport transport(options, TcpOptions{});
  constexpr int kConns = 32;
  constexpr int kPerConn = 8;
  std::vector<int> fds;
  for (int i = 0; i < kConns; ++i) {
    const int fd = connect_to(transport.port());
    ASSERT_GE(fd, 0);
    fds.push_back(fd);
  }
  for (int r = 0; r < kPerConn; ++r)
    for (const int fd : fds)
      ASSERT_TRUE(send_all(fd, std::string(kPredict) + "\n"));
  for (const int fd : fds) {
    const auto lines = read_lines(fd, kPerConn);
    EXPECT_EQ(lines.size(), static_cast<std::size_t>(kPerConn));
    for (const std::string& line : lines)
      EXPECT_TRUE(Json::parse(line).bool_or("ok", false));
    ::close(fd);
  }
  const auto snap = transport.server().metrics().snapshot();
  EXPECT_EQ(snap.connections_accepted, static_cast<std::uint64_t>(kConns));
}

}  // namespace
