// Tests for the crossover matrix and Pareto frontier experiments.

#include <gtest/gtest.h>

#include <algorithm>

#include "experiments/exp_crossover.hpp"
#include "platforms/platform_db.hpp"

namespace {

namespace ex = archline::experiments;
namespace co = archline::core;
namespace pl = archline::platforms;

const ex::CrossoverCell& find_cell(const ex::CrossoverMatrix& m,
                                   const std::string& row,
                                   const std::string& col) {
  for (const ex::CrossoverCell& c : m.cells)
    if (c.row_platform == row && c.col_platform == col) return c;
  throw std::logic_error("cell not found");
}

TEST(CrossoverMatrix, FullOffDiagonalCoverage) {
  const ex::CrossoverMatrix m = ex::run_crossover_matrix();
  EXPECT_EQ(m.platforms.size(), 12u);
  EXPECT_EQ(m.cells.size(), 12u * 11u);
  EXPECT_EQ(m.pairs_with_crossover + m.pairs_dominated,
            static_cast<int>(m.cells.size()));
}

TEST(CrossoverMatrix, SymmetricCrossings) {
  const ex::CrossoverMatrix m = ex::run_crossover_matrix();
  const auto& ab = find_cell(m, "GTX Titan", "Arndale GPU");
  const auto& ba = find_cell(m, "Arndale GPU", "GTX Titan");
  ASSERT_TRUE(ab.crossover.has_value());
  ASSERT_TRUE(ba.crossover.has_value());
  EXPECT_NEAR(*ab.crossover, *ba.crossover, 1e-6 * *ab.crossover);
  EXPECT_NE(ab.row_wins_low, ba.row_wins_low);
}

TEST(CrossoverMatrix, TitanVsArndaleMatchesFig1) {
  const ex::CrossoverMatrix m = ex::run_crossover_matrix();
  const auto& cell = find_cell(m, "Arndale GPU", "GTX Titan");
  ASSERT_TRUE(cell.crossover.has_value());
  EXPECT_GT(*cell.crossover, 1.0);
  EXPECT_LT(*cell.crossover, 8.0);
  EXPECT_TRUE(cell.row_wins_low);  // Arndale wins flop/J at low intensity
}

TEST(CrossoverMatrix, SomePairsSimplyDominate) {
  // GTX Titan dominates the Desktop CPU in flop/J everywhere.
  const ex::CrossoverMatrix m = ex::run_crossover_matrix();
  const auto& cell = find_cell(m, "GTX Titan", "Desktop CPU");
  EXPECT_FALSE(cell.crossover.has_value());
  EXPECT_TRUE(cell.row_wins_low);
  EXPECT_GT(m.pairs_dominated, 0);
  EXPECT_GT(m.pairs_with_crossover, 0);
}

TEST(CrossoverMatrix, PerformanceMetricHasFewerCrossovers) {
  // Raw performance rankings are more stable across intensity than
  // energy rankings (peak flop/s dominates), so fewer pairs flip.
  ex::CrossoverOptions perf_opt;
  perf_opt.metric = co::Metric::Performance;
  const ex::CrossoverMatrix perf = ex::run_crossover_matrix(perf_opt);
  const ex::CrossoverMatrix eff = ex::run_crossover_matrix();
  EXPECT_LT(perf.pairs_with_crossover, eff.pairs_with_crossover);
}

TEST(ParetoFrontier, NonEmptyEverywhere) {
  for (const ex::ParetoPoint& p : ex::run_pareto_frontier())
    EXPECT_FALSE(p.frontier.empty()) << p.intensity;
}

TEST(ParetoFrontier, TitanAlwaysOnFrontier) {
  // Highest flop/s at every intensity -> never dominated.
  for (const ex::ParetoPoint& p : ex::run_pareto_frontier()) {
    EXPECT_NE(std::find(p.frontier.begin(), p.frontier.end(), "GTX Titan"),
              p.frontier.end())
        << p.intensity;
  }
}

TEST(ParetoFrontier, ArndaleGpuOnFrontierAtLowIntensity) {
  // Fig. 1's argument in Pareto terms: the mobile GPU is undominated for
  // bandwidth-bound work (best flop/J there).
  const auto frontier = ex::run_pareto_frontier(0.125, 0.5);
  for (const ex::ParetoPoint& p : frontier)
    EXPECT_NE(std::find(p.frontier.begin(), p.frontier.end(),
                        "Arndale GPU"),
              p.frontier.end())
        << p.intensity;
}

TEST(ParetoFrontier, FrontierIsActuallyUndominated) {
  for (const ex::ParetoPoint& p : ex::run_pareto_frontier(0.25, 64.0, 1)) {
    for (const std::string& name : p.frontier) {
      const co::MachineParams a = pl::platform(name).machine();
      const double a_perf = co::performance(a, p.intensity);
      const double a_eff = co::energy_efficiency(a, p.intensity);
      for (const pl::PlatformSpec& other : pl::all_platforms()) {
        if (other.name == name) continue;
        const co::MachineParams b = other.machine();
        const bool dominates =
            co::performance(b, p.intensity) >= a_perf &&
            co::energy_efficiency(b, p.intensity) >= a_eff &&
            (co::performance(b, p.intensity) > a_perf ||
             co::energy_efficiency(b, p.intensity) > a_eff);
        EXPECT_FALSE(dominates)
            << other.name << " dominates " << name << " at "
            << p.intensity;
      }
    }
  }
}

}  // namespace
