// Tests for SI-prefixed formatting.

#include <gtest/gtest.h>

#include "report/si.hpp"

namespace {

namespace rp = archline::report;

TEST(SigFormat, IntegersKeepNoDecimals) {
  EXPECT_EQ(rp::sig_format(4020.0, 3), "4020");
  EXPECT_EQ(rp::sig_format(123.0, 3), "123");
}

TEST(SigFormat, SmallValuesGetDecimals) {
  EXPECT_EQ(rp::sig_format(0.31, 2), "0.31");
  EXPECT_EQ(rp::sig_format(1.28, 3), "1.28");
}

TEST(SigFormat, Zero) { EXPECT_EQ(rp::sig_format(0.0, 3), "0"); }

TEST(SigFormat, Negative) { EXPECT_EQ(rp::sig_format(-2.5, 2), "-2.5"); }

TEST(SigFormat, NonFinite) {
  EXPECT_EQ(rp::sig_format(std::numeric_limits<double>::infinity(), 3),
            "inf");
  EXPECT_EQ(rp::sig_format(-std::numeric_limits<double>::infinity(), 3),
            "-inf");
}

TEST(SiFormat, PaperHeadlineValues) {
  EXPECT_EQ(rp::si_format(16e9, "flop/J", 2), "16 Gflop/J");
  EXPECT_EQ(rp::si_format(1.3e9, "B/J", 2), "1.3 GB/J");
  EXPECT_EQ(rp::si_format(136e-12, "J/B", 3), "136 pJ/B");
  EXPECT_EQ(rp::si_format(4.02e12, "flop/s", 3), "4.02 Tflop/s");
}

TEST(SiFormat, SubUnityPrefixes) {
  EXPECT_EQ(rp::si_format(5.11e-9, "J/access", 3), "5.11 nJ/access");
  EXPECT_EQ(rp::si_format(2.5e-3, "s", 2), "2.5 ms");
}

TEST(SiFormat, UnitRange) {
  EXPECT_EQ(rp::si_format(42.0, "W", 2), "42 W");
}

TEST(SiFormat, Zero) { EXPECT_EQ(rp::si_format(0.0, "W", 3), "0 W"); }

TEST(SiFormat, NegativeValues) {
  EXPECT_EQ(rp::si_format(-1.5e3, "J", 2), "-1.5 kJ");
}

TEST(PercentFormat, Rounds) {
  EXPECT_EQ(rp::percent_format(0.81), "81%");
  EXPECT_EQ(rp::percent_format(0.995), "100%");
  EXPECT_EQ(rp::percent_format(0.5), "50%");
}

TEST(IntensityLabel, PowerOfTwoFractions) {
  EXPECT_EQ(rp::intensity_label(0.125), "1/8");
  EXPECT_EQ(rp::intensity_label(0.25), "1/4");
  EXPECT_EQ(rp::intensity_label(0.5), "1/2");
}

TEST(IntensityLabel, WholeValues) {
  EXPECT_EQ(rp::intensity_label(1.0), "1");
  EXPECT_EQ(rp::intensity_label(16.0), "16");
  EXPECT_EQ(rp::intensity_label(512.0), "512");
}

TEST(IntensityLabel, NonDyadicFallsBack) {
  EXPECT_EQ(rp::intensity_label(0.3), "0.300");
}

}  // namespace
