// Tests for core::MachineParams — derived quantities and invariants of
// eqs. (5)-(6).

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/machine_params.hpp"
#include "core/units.hpp"

namespace {

namespace co = archline::core;

// A machine shaped like the published GTX Titan (Table I, SP).
co::MachineParams titan() {
  return co::make_machine_gflops(4020.0, 30.4, 239.0, 267.0, 123.0, 164.0);
}

TEST(Workload, IntensityIsRatio) {
  const co::Workload w{.flops = 8.0, .bytes = 2.0};
  EXPECT_DOUBLE_EQ(w.intensity(), 4.0);
}

TEST(Workload, FromIntensityRoundTrips) {
  const co::Workload w = co::Workload::from_intensity(1e9, 0.25);
  EXPECT_DOUBLE_EQ(w.flops, 1e9);
  EXPECT_DOUBLE_EQ(w.intensity(), 0.25);
  EXPECT_DOUBLE_EQ(w.bytes, 4e9);
}

TEST(MachineParams, MakeFromTableUnits) {
  const co::MachineParams m = titan();
  EXPECT_NEAR(m.peak_flops(), 4.02e12, 1e6);
  EXPECT_NEAR(m.peak_bandwidth(), 239e9, 1e3);
  EXPECT_NEAR(m.eps_flop, 30.4e-12, 1e-15);
  EXPECT_NEAR(m.eps_mem, 267e-12, 1e-15);
}

TEST(MachineParams, PowerPerEngine) {
  const co::MachineParams m = titan();
  // pi_flop = eps_flop / tau_flop = 30.4 pJ * 4.02 Tflop/s ~ 122 W.
  EXPECT_NEAR(m.pi_flop(), 122.2, 0.5);
  // pi_mem = 267 pJ/B * 239 GB/s ~ 63.8 W.
  EXPECT_NEAR(m.pi_mem(), 63.8, 0.5);
}

TEST(MachineParams, Balances) {
  const co::MachineParams m = titan();
  // B_tau = tau_mem / tau_flop = 4020/239 ~ 16.8 flop/B.
  EXPECT_NEAR(m.time_balance(), 4020.0 / 239.0, 1e-6);
  // B_eps = eps_mem / eps_flop = 267/30.4 ~ 8.78 flop/B.
  EXPECT_NEAR(m.energy_balance(), 267.0 / 30.4, 1e-6);
}

TEST(MachineParams, BalanceIntervalOrdering) {
  const co::MachineParams m = titan();
  EXPECT_LE(m.balance_lo(), m.time_balance());
  EXPECT_GE(m.balance_hi(), m.time_balance());
}

TEST(MachineParams, SufficientPowerCollapsesInterval) {
  co::MachineParams m = titan();
  m.delta_pi = 500.0;  // > pi_flop + pi_mem ~ 186 W
  EXPECT_TRUE(m.power_sufficient());
  EXPECT_DOUBLE_EQ(m.balance_lo(), m.time_balance());
  EXPECT_DOUBLE_EQ(m.balance_hi(), m.time_balance());
}

TEST(MachineParams, UncappedIntervalCollapses) {
  const co::MachineParams m = titan().without_cap();
  EXPECT_TRUE(m.uncapped());
  EXPECT_DOUBLE_EQ(m.balance_lo(), m.time_balance());
  EXPECT_DOUBLE_EQ(m.balance_hi(), m.time_balance());
}

TEST(MachineParams, TitanIntervalMatchesHandComputation) {
  const co::MachineParams m = titan();
  // delta_pi = 164 < pi_flop + pi_mem ~ 186: the cap binds.
  EXPECT_FALSE(m.power_sufficient());
  // B+ = B * max(1, pi_mem / (delta_pi - pi_flop)).
  const double expected_hi =
      m.time_balance() * m.pi_mem() / (m.delta_pi - m.pi_flop());
  EXPECT_NEAR(m.balance_hi(), expected_hi, 1e-9);
  // B- = B * min(1, (delta_pi - pi_mem) / pi_flop).
  const double expected_lo =
      m.time_balance() * (m.delta_pi - m.pi_mem()) / m.pi_flop();
  EXPECT_NEAR(m.balance_lo(), expected_lo, 1e-9);
}

TEST(MachineParams, CapBelowFlopPowerGivesInfiniteHi) {
  co::MachineParams m = titan();
  m.delta_pi = 100.0;  // below pi_flop ~ 122 W
  EXPECT_TRUE(std::isinf(m.balance_hi()));
}

TEST(MachineParams, CapBelowMemPowerGivesZeroLo) {
  co::MachineParams m = titan();
  m.delta_pi = 50.0;  // below pi_mem ~ 64 W
  EXPECT_DOUBLE_EQ(m.balance_lo(), 0.0);
}

TEST(MachineParams, MaxPowerCappedAndFree) {
  const co::MachineParams capped = titan();
  EXPECT_NEAR(capped.max_power(), 123.0 + 164.0, 1e-9);
  co::MachineParams roomy = titan();
  roomy.delta_pi = 1000.0;
  EXPECT_NEAR(roomy.max_power(), 123.0 + roomy.pi_flop() + roomy.pi_mem(),
              1e-9);
}

TEST(MachineParams, WithoutCapPreservesEverythingElse) {
  const co::MachineParams m = titan();
  const co::MachineParams u = m.without_cap();
  EXPECT_DOUBLE_EQ(u.tau_flop, m.tau_flop);
  EXPECT_DOUBLE_EQ(u.eps_mem, m.eps_mem);
  EXPECT_DOUBLE_EQ(u.pi1, m.pi1);
  EXPECT_TRUE(u.uncapped());
}

TEST(MachineParamsValidate, AcceptsGoodMachine) {
  EXPECT_NO_THROW(titan().validate());
}

TEST(MachineParamsValidate, RejectsBadFields) {
  co::MachineParams m = titan();
  m.tau_flop = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = titan();
  m.eps_mem = -1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = titan();
  m.pi1 = -0.1;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = titan();
  m.delta_pi = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(MachineParamsValidate, ZeroPi1IsAllowed) {
  co::MachineParams m = titan();
  m.pi1 = 0.0;
  EXPECT_NO_THROW(m.validate());
}

TEST(Units, Conversions) {
  namespace u = archline::units;
  EXPECT_DOUBLE_EQ(u::from_picojoules(30.4), 30.4e-12);
  EXPECT_DOUBLE_EQ(u::to_picojoules(1e-12), 1.0);
  EXPECT_DOUBLE_EQ(u::from_gflops(2.0), 2e9);
  EXPECT_DOUBLE_EQ(u::to_gbytes(5e9), 5.0);
  EXPECT_DOUBLE_EQ(u::per_op_from_rate(4e9), 0.25e-9);
}

}  // namespace
