// Tests for the small dense linear algebra kernel under fit/.

#include <gtest/gtest.h>

#include <stdexcept>

#include "fit/linalg.hpp"

namespace {

namespace ft = archline::fit;

TEST(Mat, ConstructionAndIndexing) {
  ft::Mat m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Mat, Identity) {
  const ft::Mat eye = ft::Mat::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matvec, KnownProduct) {
  ft::Mat a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 3.0; a(1, 1) = 4.0;
  const std::vector<double> x = {1.0, 1.0};
  const auto y = ft::matvec(a, x);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matvec, DimensionMismatchThrows) {
  ft::Mat a(2, 2);
  const std::vector<double> x = {1.0};
  EXPECT_THROW((void)ft::matvec(a, x), std::invalid_argument);
}

TEST(Gram, SymmetricPositive) {
  ft::Mat a(3, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 0.0; a(1, 1) = 1.0;
  a(2, 0) = 1.0; a(2, 1) = 0.0;
  const ft::Mat g = ft::gram(a);
  EXPECT_DOUBLE_EQ(g(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(g(1, 1), 5.0);
}

TEST(MatvecTransposed, KnownProduct) {
  ft::Mat a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 3.0; a(1, 1) = 4.0;
  const std::vector<double> y = {1.0, 1.0};
  const auto x = ft::matvec_transposed(a, y);
  EXPECT_DOUBLE_EQ(x[0], 4.0);
  EXPECT_DOUBLE_EQ(x[1], 6.0);
}

TEST(CholeskySolve, Identity) {
  const auto x = ft::cholesky_solve(ft::Mat::identity(3),
                                    std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(CholeskySolve, KnownSpdSystem) {
  // S = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2].
  ft::Mat s(2, 2);
  s(0, 0) = 4.0; s(0, 1) = 2.0;
  s(1, 0) = 2.0; s(1, 1) = 3.0;
  const auto x = ft::cholesky_solve(s, std::vector<double>{10.0, 9.0});
  EXPECT_NEAR(x[0], 1.5, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(CholeskySolve, ResidualIsTiny) {
  // Well-conditioned SPD system: diagonally dominant Gram matrix.
  ft::Mat s(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      s(i, j) = (i == j) ? 10.0 + static_cast<double>(i)
                         : 1.0 / (1.0 + static_cast<double>(i + j));
  const std::vector<double> b = {1.0, -2.0, 0.5};
  const auto x = ft::cholesky_solve(s, b);
  const auto sx = ft::matvec(s, x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(sx[i], b[i], 1e-12);
}

TEST(CholeskySolve, NotPositiveDefiniteThrows) {
  ft::Mat s(2, 2);
  s(0, 0) = 1.0; s(0, 1) = 2.0;
  s(1, 0) = 2.0; s(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_THROW((void)ft::cholesky_solve(s, std::vector<double>{1.0, 1.0}),
               std::runtime_error);
}

TEST(CholeskySolve, DimMismatchThrows) {
  EXPECT_THROW((void)ft::cholesky_solve(ft::Mat(2, 3),
                                        std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Norms, KnownValues) {
  const std::vector<double> x = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(ft::norm2(x), 25.0);
  EXPECT_DOUBLE_EQ(ft::norm(x), 5.0);
}

}  // namespace
