// Tests for core::analysis — the quantities quoted in Fig. 5 annotations
// and the §V-B/§V-C prose.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/analysis.hpp"
#include "core/units.hpp"
#include "platforms/platform_db.hpp"

namespace {

namespace co = archline::core;
namespace pl = archline::platforms;

TEST(PeakEfficiency, TitanHeadlineNumbers) {
  // Fig. 5 top-left panel: "16 Gflop/J, 1.3 GB/J".
  const co::MachineParams m = pl::platform("GTX Titan").machine();
  EXPECT_NEAR(co::peak_flops_per_joule(m) / 1e9, 16.0, 0.5);
  EXPECT_NEAR(co::peak_bytes_per_joule(m) / 1e9, 1.3, 0.05);
}

TEST(PeakEfficiency, DesktopCpuIsTheLeastEfficient) {
  // Fig. 5 bottom-right: Nehalem at 620 Mflop/J.
  const co::MachineParams m = pl::platform("Desktop CPU").machine();
  EXPECT_NEAR(co::peak_flops_per_joule(m) / 1e6, 620.0, 20.0);
}

TEST(PeakEfficiency, ArndaleGpuBeatsTitanOnMemory) {
  // §V-C: "1.5 Gflop/J on the Arndale GPU vs 1.3 Gflop/J on GTX Titan"
  // (memory-side efficiency, GB/J).
  const double arndale =
      co::peak_bytes_per_joule(pl::platform("Arndale GPU").machine());
  const double titan =
      co::peak_bytes_per_joule(pl::platform("GTX Titan").machine());
  EXPECT_GT(arndale, titan);
  EXPECT_NEAR(arndale / 1e9, 1.5, 0.1);
}

TEST(EffectiveStreamEnergy, PaperV_BWorkedExample) {
  // §V-B: effective energy per streamed byte (eps_mem + pi1 * tau_mem):
  // Arndale GPU 671 pJ/B < GTX Titan 782 pJ/B < Xeon Phi 1.13 nJ/B —
  // the inverse of the raw eps_mem ordering.
  namespace u = archline::units;
  const double phi = co::effective_stream_energy_per_byte(
      pl::platform("Xeon Phi").machine());
  const double titan = co::effective_stream_energy_per_byte(
      pl::platform("GTX Titan").machine());
  const double arndale = co::effective_stream_energy_per_byte(
      pl::platform("Arndale GPU").machine());
  EXPECT_NEAR(u::to_picojoules(phi), 1130.0, 20.0);
  EXPECT_NEAR(u::to_picojoules(titan), 782.0, 10.0);
  EXPECT_NEAR(u::to_picojoules(arndale), 671.0, 10.0);
  EXPECT_LT(arndale, titan);
  EXPECT_LT(titan, phi);
}

TEST(EffectiveStreamEnergy, RawOrderingIsOpposite) {
  const double phi_raw = pl::platform("Xeon Phi").machine().eps_mem;
  const double titan_raw = pl::platform("GTX Titan").machine().eps_mem;
  const double arndale_raw = pl::platform("Arndale GPU").machine().eps_mem;
  EXPECT_LT(phi_raw, titan_raw);
  EXPECT_LT(titan_raw, arndale_raw);
}

TEST(ConstantCharge, MatchesPi1TimesTauMem) {
  const co::MachineParams m = pl::platform("Xeon Phi").machine();
  EXPECT_NEAR(archline::units::to_picojoules(
                  co::constant_energy_per_byte(m)),
              994.0, 15.0);  // 180 W / 181 GB/s
}

TEST(ConstantPowerFraction, OverHalfOnSevenPlatforms) {
  // §V-C: pi1/(pi1+delta_pi) > 50% on 7 of the 12 platforms.
  int over_half = 0;
  for (const pl::PlatformSpec& spec : pl::all_platforms())
    if (co::constant_power_fraction(spec.machine()) > 0.5) ++over_half;
  EXPECT_EQ(over_half, 7);
}

TEST(ConstantPowerFraction, ArndaleGpuIsLow) {
  const double f =
      co::constant_power_fraction(pl::platform("Arndale GPU").machine());
  EXPECT_LT(f, 0.25);  // 1.28 / (1.28 + 4.83) ~ 0.21
}

TEST(PowerReduction, AlwaysLessThanDivisor) {
  for (const pl::PlatformSpec& spec : pl::all_platforms()) {
    const double r = co::power_reduction_factor(spec.machine(), 8.0);
    EXPECT_LT(r, 8.0) << spec.name;
    EXPECT_GT(r, 1.0) << spec.name;
  }
}

TEST(PowerReduction, ArndaleGpuHasMostHeadroom) {
  // Fig. 6: "the Arndale GPU has the most potential to reduce system
  // power by reducing delta_pi".
  double arndale = 0.0;
  double best_other = 0.0;
  for (const pl::PlatformSpec& spec : pl::all_platforms()) {
    const double r = co::power_reduction_factor(spec.machine(), 8.0);
    if (spec.name == "Arndale GPU") arndale = r;
    else best_other = std::max(best_other, r);
  }
  EXPECT_GT(arndale, best_other);
}

TEST(PowerReduction, UncappedThrows) {
  EXPECT_THROW((void)co::power_reduction_factor(
                   pl::platform("GTX Titan").machine_uncapped(), 2.0),
               std::invalid_argument);
}

TEST(SummarizeEfficiency, FieldsConsistent) {
  const co::MachineParams m = pl::platform("GTX 680").machine();
  const co::EfficiencySummary s = co::summarize_efficiency(m);
  EXPECT_DOUBLE_EQ(s.sustained_flops, m.peak_flops());
  EXPECT_DOUBLE_EQ(s.sustained_bandwidth, m.peak_bandwidth());
  EXPECT_DOUBLE_EQ(s.pi1, m.pi1);
  EXPECT_LE(s.balance_lo, s.balance);
  EXPECT_LE(s.balance, s.balance_hi);
  EXPECT_GT(s.constant_fraction, 0.0);
  EXPECT_LT(s.constant_fraction, 1.0);
}

TEST(IntensityGrid, EndpointsIncluded) {
  const auto grid = co::intensity_grid(0.125, 512.0, 2);
  EXPECT_DOUBLE_EQ(grid.front(), 0.125);
  EXPECT_NEAR(grid.back(), 512.0, 1e-9);
}

TEST(IntensityGrid, Log2Spacing) {
  const auto grid = co::intensity_grid(1.0, 4.0, 1);
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_DOUBLE_EQ(grid[0], 1.0);
  EXPECT_DOUBLE_EQ(grid[1], 2.0);
  EXPECT_DOUBLE_EQ(grid[2], 4.0);
}

TEST(IntensityGrid, PointsPerOctave) {
  const auto grid = co::intensity_grid(1.0, 2.0, 4);
  EXPECT_EQ(grid.size(), 5u);
}

TEST(IntensityGrid, BadArgumentsThrow) {
  EXPECT_THROW((void)co::intensity_grid(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)co::intensity_grid(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)co::intensity_grid(1.0, 2.0, 0), std::invalid_argument);
}

}  // namespace
