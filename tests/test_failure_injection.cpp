// Failure-injection tests: the measurement and fitting pipeline under
// degraded conditions — dropped samples, corrupted observations, hostile
// noise.

#include <gtest/gtest.h>

#include <cmath>

#include "fit/model_fit.hpp"
#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"
#include "powermon/integrator.hpp"
#include "sim/factory.hpp"

namespace {

namespace co = archline::core;
namespace ft = archline::fit;
namespace mb = archline::microbench;
namespace pl = archline::platforms;
namespace pm = archline::powermon;
namespace si = archline::sim;
using archline::stats::Rng;

// ---- sample dropout --------------------------------------------------

pm::Capture steady_capture(double watts, double duration) {
  pm::PowerTrace t;
  t.add_constant(duration, watts);
  return pm::split_across_rails(t, pm::mobile_board_rails(), 0.0,
                                duration);
}

TEST(Dropout, LosesSamplesButKeepsStream) {
  Rng rng(1);
  pm::SamplerConfig cfg;
  cfg.dropout_rate = 0.3;
  const auto sampled = pm::sample(steady_capture(50.0, 1.0), cfg, rng);
  const std::size_t got = sampled.channels[0].samples.size();
  EXPECT_LT(got, 900u);  // ~30% of 1025 lost
  EXPECT_GT(got, 500u);
}

TEST(Dropout, MeanEstimatorUnbiasedOnSteadyLoad) {
  Rng rng(2);
  pm::SamplerConfig cfg;
  cfg.dropout_rate = 0.5;
  const pm::Measurement m =
      pm::integrate_mean(pm::sample(steady_capture(50.0, 1.0), cfg, rng));
  // Half the samples are gone but the estimator is a mean: still ~50 W.
  EXPECT_NEAR(m.avg_watts, 50.0, 0.5);
}

TEST(Dropout, ZeroRateLosesNothing) {
  Rng r1(3);
  Rng r2(3);
  pm::SamplerConfig with;
  with.dropout_rate = 0.0;
  const auto a = pm::sample(steady_capture(10.0, 0.5), with, r1);
  const auto b =
      pm::sample(steady_capture(10.0, 0.5), pm::SamplerConfig{}, r2);
  EXPECT_EQ(a.channels[0].samples.size(), b.channels[0].samples.size());
}

TEST(Dropout, EndToEndFitSurvivesLossyMeasurement) {
  const pl::PlatformSpec& spec = pl::platform("GTX Titan");
  const si::SimMachine machine = si::make_machine(spec);
  Rng rng(4);
  mb::SuiteOptions opt;
  opt.repeats = 2;
  opt.target_seconds = 0.1;
  opt.include_double = false;
  opt.include_caches = false;
  opt.include_random = false;
  opt.sampler.dropout_rate = 0.25;
  const mb::SuiteData data = mb::run_suite(machine, opt, rng);
  const ft::FitResult r = ft::fit_machine(data);
  const co::MachineParams truth = spec.machine();
  EXPECT_NEAR(r.machine.pi1, truth.pi1, 0.1 * truth.pi1);
  EXPECT_NEAR(r.machine.eps_mem, truth.eps_mem, 0.1 * truth.eps_mem);
}

// ---- corrupted observations -------------------------------------------

mb::SuiteData clean_suite(std::uint64_t seed) {
  const si::SimMachine machine =
      si::make_machine(pl::platform("GTX 680"));
  Rng rng(seed);
  mb::SuiteOptions opt;
  opt.repeats = 2;
  opt.target_seconds = 0.1;
  opt.include_double = false;
  opt.include_caches = false;
  opt.include_random = false;
  return mb::run_suite(machine, opt, rng);
}

TEST(OutlierRejection, RecoversFromCorruptedObservations) {
  mb::SuiteData data = clean_suite(5);
  // Corrupt three observations grossly (a glitched meter read).
  data.dram_sp[3].joules *= 5.0;
  data.dram_sp[3].watts *= 5.0;
  data.dram_sp[17].seconds *= 3.0;
  data.dram_sp[17].watts /= 3.0;
  data.dram_sp[30].joules *= 0.2;
  data.dram_sp[30].watts *= 0.2;

  ft::FitOptions naive;
  naive.idle_watts_hint = data.idle_watts;
  const ft::FitResult bad = ft::fit_observations(data.dram_sp, naive);

  ft::FitOptions robust = naive;
  robust.outlier_mad_threshold = 8.0;
  const ft::FitResult good = ft::fit_observations(data.dram_sp, robust);

  const co::MachineParams truth = pl::platform("GTX 680").machine();
  const auto err = [&truth](const co::MachineParams& m) {
    return std::abs(m.eps_mem / truth.eps_mem - 1.0) +
           std::abs(m.eps_flop / truth.eps_flop - 1.0) +
           std::abs(m.pi1 / truth.pi1 - 1.0);
  };
  EXPECT_LT(err(good.machine), err(bad.machine));
  EXPECT_LT(err(good.machine), 0.15);
  // The robust pass reports only the survivors it kept.
  EXPECT_LT(good.observations, data.dram_sp.size());
  EXPECT_GE(good.observations, data.dram_sp.size() - 6);
}

TEST(OutlierRejection, NoOpOnCleanData) {
  const mb::SuiteData data = clean_suite(6);
  ft::FitOptions robust;
  robust.idle_watts_hint = data.idle_watts;
  robust.outlier_mad_threshold = 12.0;
  const ft::FitResult r = ft::fit_observations(data.dram_sp, robust);
  // Clean simulated data has no gross outliers: nothing is dropped.
  EXPECT_EQ(r.observations, data.dram_sp.size());
}

// ---- hostile noise ------------------------------------------------------

TEST(HostileNoise, FitDegradesGracefully) {
  const pl::PlatformSpec& spec = pl::platform("GTX 580");
  si::NonidealityProfile rough;
  rough.noise.time_rel_sd = 0.05;   // 6x the default
  rough.noise.power_rel_sd = 0.05;
  const si::SimMachine machine = si::make_machine(spec, rough);
  Rng rng(7);
  mb::SuiteOptions opt;
  opt.repeats = 3;
  opt.target_seconds = 0.1;
  opt.include_double = false;
  opt.include_caches = false;
  opt.include_random = false;
  const mb::SuiteData data = mb::run_suite(machine, opt, rng);
  const ft::FitResult r = ft::fit_machine(data);
  const co::MachineParams truth = spec.machine();
  // Not precise, but sane: within 25% on the big constants.
  EXPECT_NEAR(r.machine.pi1, truth.pi1, 0.25 * truth.pi1);
  EXPECT_NEAR(r.machine.eps_mem, truth.eps_mem, 0.25 * truth.eps_mem);
  EXPECT_GT(r.r_squared_perf, 0.9);
}

}  // namespace
