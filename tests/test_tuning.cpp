// Tests for the automated "hand-tuning" search.

#include <gtest/gtest.h>

#include "microbench/tuning.hpp"
#include "platforms/platform_db.hpp"

namespace {

namespace mb = archline::microbench;
namespace si = archline::sim;
namespace pl = archline::platforms;
namespace co = archline::core;

TEST(TuningSpace, EnumeratesFullGrid) {
  si::TuningTraits t;
  t.max_unroll = 4;   // {1,2,4}
  t.max_vector = 2;   // {1,2}
  // 3 unrolls x 2 widths x 2 fma x 2 prefetch x 2 asm = 48.
  EXPECT_EQ(mb::tuning_space(t).size(), 48u);
}

TEST(TuneFlops, FindsTheGlobalOptimum) {
  for (const char* name : {"GTX Titan", "Arndale CPU", "Xeon Phi"}) {
    const pl::PlatformSpec& spec = pl::platform(name);
    const mb::TuneResult r = mb::tune_flops(spec, co::Precision::Single);
    EXPECT_NEAR(r.efficiency, spec.sustained_flop_fraction(), 1e-9) << name;
    EXPECT_NEAR(r.throughput, spec.flop_sp.throughput,
                1e-6 * r.throughput)
        << name;
  }
}

TEST(TuneFlops, BestConfigIsFullyTuned) {
  const mb::TuneResult r =
      mb::tune_flops(pl::platform("Desktop CPU"), co::Precision::Single);
  EXPECT_TRUE(r.config.fma);
  EXPECT_TRUE(r.config.asm_tuned);
  EXPECT_EQ(r.config.unroll, 32);
}

TEST(TuneFlops, DoublePrecisionUsesDpPeak) {
  const pl::PlatformSpec& spec = pl::platform("GTX Titan");
  const mb::TuneResult r = mb::tune_flops(spec, co::Precision::Double);
  EXPECT_NEAR(r.throughput, spec.flop_dp->throughput, 1e-6 * r.throughput);
}

TEST(TuneBandwidth, RecoversSustainedBandwidth) {
  for (const pl::PlatformSpec& spec : pl::all_platforms()) {
    const mb::TuneResult r = mb::tune_bandwidth(spec);
    EXPECT_NEAR(r.throughput, spec.mem_stream.throughput,
                1e-6 * r.throughput)
        << spec.name;
    EXPECT_TRUE(r.config.prefetch) << spec.name;
  }
}

TEST(Tune, SearchActuallyEvaluatesTheSpace) {
  const mb::TuneResult r =
      mb::tune_flops(pl::platform("GTX Titan"), co::Precision::Single);
  EXPECT_GT(r.evaluated, 100);
}

TEST(Tune, UntunedConfigClearlyWorse) {
  const pl::PlatformSpec& spec = pl::platform("Xeon Phi");
  const si::TuningTraits traits =
      si::traits_for(spec, co::Precision::Single);
  const si::TuneConfig naive{.unroll = 1, .fma = false, .vector_width = 1,
                             .prefetch = false, .asm_tuned = false};
  const mb::TuneResult best = mb::tune_flops(spec, co::Precision::Single);
  EXPECT_LT(si::flop_efficiency(traits, naive), 0.2 * best.efficiency);
}

}  // namespace
