// Tests for the SVG figure renderer.

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "report/svg_plot.hpp"

namespace {

namespace rp = archline::report;

rp::Series line(std::string name) {
  return rp::Series{.name = std::move(name), .glyph = '-',
                    .x = {0.125, 1.0, 8.0, 64.0},
                    .y = {1.0, 2.0, 4.0, 4.5}};
}

TEST(SvgEscape, EscapesMarkup) {
  EXPECT_EQ(rp::svg_escape("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(rp::svg_escape("plain"), "plain");
}

TEST(SvgPlot, WellFormedDocument) {
  rp::SvgPlot plot("Figure");
  plot.add_line(line("model"));
  const std::string svg = plot.render();
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_NE(svg.find("Figure"), std::string::npos);
}

TEST(SvgPlot, ScatterUsesCircles) {
  rp::SvgPlot plot("t");
  plot.add_scatter(line("measured"));
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_EQ(svg.find("<polyline"), std::string::npos);
}

TEST(SvgPlot, LegendListsSeriesNames) {
  rp::SvgPlot plot("t");
  plot.add_line(line("alpha"));
  plot.add_scatter(line("beta"));
  const std::string svg = plot.render();
  EXPECT_NE(svg.find(">alpha<"), std::string::npos);
  EXPECT_NE(svg.find(">beta<"), std::string::npos);
}

TEST(SvgPlot, TitleIsEscaped) {
  rp::SvgPlot plot("a < b & c");
  plot.add_line(line("s"));
  EXPECT_NE(plot.render().find("a &lt; b &amp; c"), std::string::npos);
}

TEST(SvgPlot, EmptyPlotSaysSo) {
  rp::SvgPlot plot("empty");
  EXPECT_NE(plot.render().find("no plottable data"), std::string::npos);
}

TEST(SvgPlot, LogAxisTicksArePowersOfTwo) {
  rp::SvgPlot plot("t");
  plot.add_line(line("s"));
  const std::string svg = plot.render();
  EXPECT_NE(svg.find(">1/8<"), std::string::npos);
  EXPECT_NE(svg.find(">64<"), std::string::npos);
}

TEST(SvgPlot, SkipsBadPointsOnLogAxes) {
  rp::SvgPlot plot("t");
  rp::Series s = line("s");
  s.x.push_back(0.0);   // invalid on log axis
  s.y.push_back(-1.0);
  EXPECT_NO_THROW(plot.add_line(s));
  EXPECT_NE(plot.render().find("<polyline"), std::string::npos);
}

TEST(SvgPlot, MismatchedSeriesThrows) {
  rp::SvgPlot plot("t");
  rp::Series s;
  s.x = {1.0};
  EXPECT_THROW(plot.add_line(s), std::invalid_argument);
}

TEST(SvgPlot, TinyCanvasThrows) {
  EXPECT_THROW(rp::SvgPlot("t", rp::SvgStyle{.width = 10, .height = 10}),
               std::invalid_argument);
}

TEST(SvgPlot, ColorsCycleThroughPalette) {
  rp::SvgStyle style;
  style.palette = {"#111111", "#222222"};
  rp::SvgPlot plot("t", style);
  plot.add_line(line("a"));
  plot.add_line(line("b"));
  plot.add_line(line("c"));  // wraps to #111111 again
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("#111111"), std::string::npos);
  EXPECT_NE(svg.find("#222222"), std::string::npos);
}

TEST(SvgPlot, WritesFile) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "archline_svg" / "t.svg";
  rp::SvgPlot plot("t");
  plot.add_line(line("s"));
  plot.write_file(path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_GT(std::filesystem::file_size(path), 500u);
  std::filesystem::remove_all(path.parent_path());
}

TEST(SvgPlot, LinearYAxisRendersRoundTicks) {
  rp::SvgPlot plot("t");
  plot.set_y_scale(rp::AxisScale::Linear);
  rp::Series s{.name = "s", .glyph = '-', .x = {1.0, 2.0, 4.0},
               .y = {0.0, 50.0, 100.0}};
  plot.add_line(s);
  const std::string svg = plot.render();
  EXPECT_NE(svg.find(">40 <"), std::string::npos);
  EXPECT_NE(svg.find(">100 <"), std::string::npos);
}

}  // namespace
