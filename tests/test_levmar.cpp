// Tests for Levenberg-Marquardt nonlinear least squares.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "fit/levmar.hpp"

namespace {

namespace ft = archline::fit;

TEST(Levmar, LinearLeastSquaresExact) {
  // r_i = (a * t_i + b) - y_i with y from a=2, b=1: exact solution.
  const std::vector<double> ts = {0.0, 1.0, 2.0, 3.0};
  const auto residuals = [&ts](std::span<const double> x) {
    std::vector<double> r;
    for (const double t : ts) r.push_back(x[0] * t + x[1] - (2.0 * t + 1.0));
    return r;
  };
  const auto result =
      ft::levenberg_marquardt(residuals, std::vector<double>{0.0, 0.0});
  EXPECT_NEAR(result.x[0], 2.0, 1e-8);
  EXPECT_NEAR(result.x[1], 1.0, 1e-8);
  EXPECT_LT(result.rss, 1e-15);
}

TEST(Levmar, ExponentialDecayFit) {
  // y = A exp(-k t) with A = 5, k = 1.3.
  const std::vector<double> ts = {0.0, 0.5, 1.0, 1.5, 2.0, 3.0};
  const auto residuals = [&ts](std::span<const double> x) {
    std::vector<double> r;
    for (const double t : ts)
      r.push_back(x[0] * std::exp(-x[1] * t) -
                  5.0 * std::exp(-1.3 * t));
    return r;
  };
  const auto result =
      ft::levenberg_marquardt(residuals, std::vector<double>{1.0, 0.5});
  EXPECT_NEAR(result.x[0], 5.0, 1e-5);
  EXPECT_NEAR(result.x[1], 1.3, 1e-5);
}

TEST(Levmar, RosenbrockAsLeastSquares) {
  const auto residuals = [](std::span<const double> x) {
    return std::vector<double>{1.0 - x[0],
                               10.0 * (x[1] - x[0] * x[0])};
  };
  const auto result =
      ft::levenberg_marquardt(residuals, std::vector<double>{-1.2, 1.0});
  EXPECT_NEAR(result.x[0], 1.0, 1e-6);
  EXPECT_NEAR(result.x[1], 1.0, 1e-6);
}

TEST(Levmar, NoisyDataStillCloseToTruth) {
  const std::vector<double> ts = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> noise = {0.01, -0.02, 0.015, -0.01, 0.02, -0.005};
  const auto residuals = [&](std::span<const double> x) {
    std::vector<double> r;
    for (std::size_t i = 0; i < ts.size(); ++i)
      r.push_back(x[0] * ts[i] + x[1] - (3.0 * ts[i] + 2.0 + noise[i]));
    return r;
  };
  const auto result =
      ft::levenberg_marquardt(residuals, std::vector<double>{0.0, 0.0});
  EXPECT_NEAR(result.x[0], 3.0, 0.05);
  EXPECT_NEAR(result.x[1], 2.0, 0.05);
  EXPECT_GT(result.rss, 0.0);  // noise leaves a floor
}

TEST(Levmar, ConvergesFromGoodSeedQuickly) {
  const auto residuals = [](std::span<const double> x) {
    return std::vector<double>{x[0] - 4.0};
  };
  const auto result =
      ft::levenberg_marquardt(residuals, std::vector<double>{4.0001});
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 10);
}

TEST(Levmar, EmptyStartThrows) {
  const auto residuals = [](std::span<const double>) {
    return std::vector<double>{0.0};
  };
  EXPECT_THROW((void)ft::levenberg_marquardt(residuals,
                                             std::vector<double>{}),
               std::invalid_argument);
}

TEST(Levmar, EmptyResidualsThrow) {
  const auto residuals = [](std::span<const double>) {
    return std::vector<double>{};
  };
  EXPECT_THROW((void)ft::levenberg_marquardt(residuals,
                                             std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Levmar, OverparameterizedStillDescends) {
  // More parameters than residuals: damping keeps the solve well-posed.
  const auto residuals = [](std::span<const double> x) {
    return std::vector<double>{x[0] + x[1] - 2.0};
  };
  const auto result = ft::levenberg_marquardt(
      residuals, std::vector<double>{10.0, -5.0});
  EXPECT_LT(result.rss, 1e-10);
}

TEST(Levmar, IterationBudgetRespected) {
  const auto residuals = [](std::span<const double> x) {
    return std::vector<double>{std::sin(x[0]) + 2.0};  // no zero residual
  };
  ft::LevmarOptions opt;
  opt.max_iterations = 5;
  const auto result =
      ft::levenberg_marquardt(residuals, std::vector<double>{0.0}, opt);
  EXPECT_LE(result.iterations, 5);
}

}  // namespace
