// BoundedQueue tests: batch pop_n semantics, post-pop depth reporting,
// drain-after-close with batches, backpressure, and a multi-producer /
// multi-consumer stress over the notify-gated wake path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include "serve/queue.hpp"

namespace {

using archline::serve::BoundedQueue;

TEST(ServeQueue, PopNTakesUpToMaxItemsInOrder) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.try_push(i));
  std::vector<int> out;
  EXPECT_EQ(q.pop_n(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  // A larger max takes only what is there.
  EXPECT_EQ(q.pop_n(out, 100), 6u);
  EXPECT_EQ(out.size(), 10u);  // appended, earlier items untouched
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(ServeQueue, PopNAppendsWithoutClearingCallerVector) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.try_push(42));
  std::vector<int> out{7, 8};
  EXPECT_EQ(q.pop_n(out, 8), 1u);
  EXPECT_EQ(out, (std::vector<int>{7, 8, 42}));
}

TEST(ServeQueue, PopNReportsPostPopDepth) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(q.try_push(i));
  std::vector<int> out;
  std::size_t depth = 999;
  EXPECT_EQ(q.pop_n(out, 3, &depth), 3u);
  EXPECT_EQ(depth, 4u);  // 7 pushed - 3 taken
  EXPECT_EQ(q.pop_n(out, 10, &depth), 4u);
  EXPECT_EQ(depth, 0u);
}

TEST(ServeQueue, PopReportsPostPopDepth) {
  BoundedQueue<int> q(16);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));
  std::size_t depth = 999;
  const std::optional<int> item = q.pop(&depth);
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 1);
  EXPECT_EQ(depth, 1u);
}

TEST(ServeQueue, TryPushReportsDepthAndBackpressure) {
  BoundedQueue<int> q(2);
  std::size_t depth = 0;
  ASSERT_TRUE(q.try_push(1, &depth));
  EXPECT_EQ(depth, 1u);
  ASSERT_TRUE(q.try_push(2, &depth));
  EXPECT_EQ(depth, 2u);
  EXPECT_FALSE(q.try_push(3));  // full: rejected, never blocks
  EXPECT_EQ(q.size(), 2u);
}

TEST(ServeQueue, DrainAfterCloseWithBatches) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 9; ++i) ASSERT_TRUE(q.try_push(i));
  q.close();
  EXPECT_FALSE(q.try_push(99));  // closed: no new admissions
  // Items admitted before close() still drain, batch by batch...
  std::vector<int> out;
  EXPECT_EQ(q.pop_n(out, 4), 4u);
  EXPECT_EQ(q.pop_n(out, 4), 4u);
  EXPECT_EQ(q.pop_n(out, 4), 1u);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  // ...and only then does pop_n report "closed and empty".
  EXPECT_EQ(q.pop_n(out, 4), 0u);
  EXPECT_EQ(out.size(), 9u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(ServeQueue, PopNBlocksUntilPushThenTakesBatch) {
  BoundedQueue<int> q(16);
  std::vector<int> out;
  std::size_t got = 0;
  std::thread consumer([&] { got = q.pop_n(out, 8); });
  // The consumer blocks on the empty queue; this push must wake it.
  ASSERT_TRUE(q.try_push(5));
  consumer.join();
  EXPECT_EQ(got, 1u);
  EXPECT_EQ(out, (std::vector<int>{5}));
}

TEST(ServeQueue, CloseWakesBlockedBatchConsumers) {
  BoundedQueue<int> q(16);
  std::atomic<int> exited{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i)
    consumers.emplace_back([&] {
      std::vector<int> out;
      while (q.pop_n(out, 4) != 0) out.clear();
      exited.fetch_add(1);
    });
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(exited.load(), 3);
}

TEST(ServeQueue, MpmcBatchesDeliverEveryItemExactlyOnce) {
  // 4 producers x 4 consumers through a small queue: exercises the
  // transition-gated notify and consumer wake chaining under real
  // contention. Sum check catches both lost and duplicated items.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  BoundedQueue<long> q(64);
  std::atomic<long> sum{0};
  std::atomic<long> count{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&] {
      std::vector<long> batch;
      long local_sum = 0, local_count = 0;
      for (;;) {
        batch.clear();
        const std::size_t n = q.pop_n(batch, 16);
        if (n == 0) break;
        for (long v : batch) ++local_count, local_sum += v;
      }
      sum.fetch_add(local_sum);
      count.fetch_add(local_count);
    });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const long value = static_cast<long>(p) * kPerProducer + i;
        while (!q.try_push(value)) std::this_thread::yield();
      }
    });
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const long total = static_cast<long>(kProducers) * kPerProducer;
  EXPECT_EQ(count.load(), total);
  EXPECT_EQ(sum.load(), total * (total - 1) / 2);
}

TEST(ServeQueue, ReopenAfterCloseAdmitsAgain) {
  BoundedQueue<int> q(4);
  q.close();
  EXPECT_FALSE(q.try_push(1));
  q.reopen();
  EXPECT_TRUE(q.try_push(1));
  std::vector<int> out;
  EXPECT_EQ(q.pop_n(out, 4), 1u);
}

}  // namespace
