// LaneScheduler tests: per-lane bounded admission, weighted round-robin
// draining, lane masks, batch pop_n semantics, drain-after-close, and a
// multi-producer / multi-consumer stress over the notify-gated wake
// path with mixed lane masks.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include "serve/queue.hpp"

namespace {

using archline::serve::kAllLanes;
using archline::serve::kHeavyLane;
using archline::serve::kLaneCount;
using archline::serve::kLightLane;
using archline::serve::kLightOnly;
using archline::serve::lane_bit;
using archline::serve::LaneConfig;
using archline::serve::LaneScheduler;

/// light capacity 16 weight 4, heavy capacity 4 weight 1 — the
/// Server's shape, shrunk.
LaneScheduler<int> make_sched(std::size_t light_cap = 16,
                              std::size_t heavy_cap = 4) {
  return LaneScheduler<int>(std::array<LaneConfig, kLaneCount>{
      LaneConfig{light_cap, 4}, LaneConfig{heavy_cap, 1}});
}

TEST(ServeQueue, LanesAreBoundedIndependently) {
  auto q = make_sched(/*light_cap=*/16, /*heavy_cap=*/2);
  // Fill the heavy lane to capacity...
  ASSERT_TRUE(q.try_push(kHeavyLane, 100));
  ASSERT_TRUE(q.try_push(kHeavyLane, 101));
  EXPECT_FALSE(q.try_push(kHeavyLane, 102));  // heavy full: rejected
  // ...and the light lane still admits: the class-isolation property.
  std::size_t depth = 0;
  ASSERT_TRUE(q.try_push(kLightLane, 1, &depth));
  EXPECT_EQ(depth, 1u);
  EXPECT_EQ(q.lane_size(kLightLane), 1u);
  EXPECT_EQ(q.lane_size(kHeavyLane), 2u);
  EXPECT_EQ(q.size(kAllLanes), 3u);
  EXPECT_EQ(q.size(kLightOnly), 1u);
}

TEST(ServeQueue, DisabledLaneRejectsEveryPush) {
  auto q = make_sched(/*light_cap=*/4, /*heavy_cap=*/0);
  EXPECT_FALSE(q.try_push(kHeavyLane, 1));
  EXPECT_TRUE(q.try_push(kLightLane, 1));
}

TEST(ServeQueue, WeightedRoundRobinPopsLightHeavierThanHeavy) {
  // 8 light + 4 heavy queued; an all-lanes consumer popping one at a
  // time must see the 4:1 pattern — 4 light, 1 heavy, 4 light, 1 heavy —
  // so a deep heavy backlog cannot monopolize a heavy-capable worker.
  auto q = make_sched(16, 4);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.try_push(kLightLane, i));
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.try_push(kHeavyLane, 100 + i));
  std::vector<std::size_t> lanes;
  for (int i = 0; i < 10; ++i) {
    std::size_t lane = 99;
    const std::optional<int> item = q.pop(kAllLanes, &lane);
    ASSERT_TRUE(item.has_value());
    lanes.push_back(lane);
  }
  EXPECT_EQ(lanes, (std::vector<std::size_t>{
                       kLightLane, kLightLane, kLightLane, kLightLane,
                       kHeavyLane, kLightLane, kLightLane, kLightLane,
                       kLightLane, kHeavyLane}));
  // Light drained; the remaining heavy items are still reachable.
  std::size_t lane = 99;
  EXPECT_TRUE(q.pop(kAllLanes, &lane).has_value());
  EXPECT_EQ(lane, kHeavyLane);
  EXPECT_TRUE(q.pop(kAllLanes, &lane).has_value());
  EXPECT_EQ(lane, kHeavyLane);
}

TEST(ServeQueue, MaskHidesLanesFromConsumer) {
  auto q = make_sched();
  ASSERT_TRUE(q.try_push(kHeavyLane, 7));
  ASSERT_TRUE(q.try_push(kLightLane, 1));
  // A light-only consumer sees just the light item...
  std::vector<int> out;
  EXPECT_EQ(q.pop_n(kLightOnly, out, 8), 1u);
  EXPECT_EQ(out, (std::vector<int>{1}));
  EXPECT_EQ(q.size(kLightOnly), 0u);
  // ...while the heavy item waits for a capable consumer.
  EXPECT_EQ(q.lane_size(kHeavyLane), 1u);
  std::size_t lane = 99;
  const std::optional<int> heavy = q.pop(kAllLanes, &lane);
  ASSERT_TRUE(heavy.has_value());
  EXPECT_EQ(*heavy, 7);
  EXPECT_EQ(lane, kHeavyLane);
}

TEST(ServeQueue, PopNTakesUpToMaxItemsInOrder) {
  auto q = make_sched();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.try_push(kLightLane, i));
  std::vector<int> out;
  EXPECT_EQ(q.pop_n(kLightOnly, out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  // A larger max takes only what is there; earlier items untouched.
  EXPECT_EQ(q.pop_n(kLightOnly, out, 100), 6u);
  EXPECT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(ServeQueue, PopNDrainsBothLanesWeighted) {
  auto q = make_sched();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(kLightLane, i));
  ASSERT_TRUE(q.try_push(kHeavyLane, 100));
  std::vector<int> out;
  std::array<std::size_t, kLaneCount> depths{99, 99};
  EXPECT_EQ(q.pop_n(kAllLanes, out, 16, &depths), 6u);
  // 4 light (credit), 1 heavy, then the last light.
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 100, 4}));
  EXPECT_EQ(depths[kLightLane], 0u);
  EXPECT_EQ(depths[kHeavyLane], 0u);
}

TEST(ServeQueue, PopNReportsPostPopDepths) {
  auto q = make_sched();
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(q.try_push(kLightLane, i));
  ASSERT_TRUE(q.try_push(kHeavyLane, 100));
  std::vector<int> out;
  std::array<std::size_t, kLaneCount> depths{99, 99};
  EXPECT_EQ(q.pop_n(kLightOnly, out, 3, &depths), 3u);
  EXPECT_EQ(depths[kLightLane], 4u);  // 7 pushed - 3 taken
  EXPECT_EQ(depths[kHeavyLane], 1u);  // untouched by the mask
}

TEST(ServeQueue, TryPushReportsDepthAndBackpressure) {
  auto q = make_sched(/*light_cap=*/2, /*heavy_cap=*/4);
  std::size_t depth = 0;
  ASSERT_TRUE(q.try_push(kLightLane, 1, &depth));
  EXPECT_EQ(depth, 1u);
  ASSERT_TRUE(q.try_push(kLightLane, 2, &depth));
  EXPECT_EQ(depth, 2u);
  EXPECT_FALSE(q.try_push(kLightLane, 3));  // full: rejected, never blocks
  EXPECT_EQ(q.lane_size(kLightLane), 2u);
}

TEST(ServeQueue, DrainAfterCloseWithBatches) {
  auto q = make_sched();
  for (int i = 0; i < 9; ++i) ASSERT_TRUE(q.try_push(kLightLane, i));
  q.close();
  EXPECT_FALSE(q.try_push(kLightLane, 99));  // closed: no new admissions
  // Items admitted before close() still drain, batch by batch...
  std::vector<int> out;
  EXPECT_EQ(q.pop_n(kAllLanes, out, 4), 4u);
  EXPECT_EQ(q.pop_n(kAllLanes, out, 4), 4u);
  EXPECT_EQ(q.pop_n(kAllLanes, out, 4), 1u);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  // ...and only then does pop_n report "closed and empty".
  EXPECT_EQ(q.pop_n(kAllLanes, out, 4), 0u);
  EXPECT_EQ(out.size(), 9u);
  EXPECT_FALSE(q.pop(kAllLanes).has_value());
}

TEST(ServeQueue, HeavyPushWakesHeavyCapableConsumerNotStrandedByLightOnly) {
  // Both a light-only and an all-lanes consumer sleep on the empty
  // scheduler; a heavy push must reach the all-lanes consumer even
  // though the light-only one also wakes (notify_all, re-checks, and
  // goes back to sleep). A notify_one design deadlocks here.
  auto q = make_sched();
  std::atomic<bool> got_heavy{false};
  std::thread light_only([&] {
    std::vector<int> out;
    // Blocks until close(): the heavy item is never visible to it.
    while (q.pop_n(kLightOnly, out, 4) != 0) out.clear();
  });
  std::thread all_lanes([&] {
    std::size_t lane = 99;
    const std::optional<int> item = q.pop(kAllLanes, &lane);
    if (item.has_value() && lane == kHeavyLane) got_heavy.store(true);
  });
  ASSERT_TRUE(q.try_push(kHeavyLane, 7));
  all_lanes.join();
  EXPECT_TRUE(got_heavy.load());
  q.close();
  light_only.join();
  EXPECT_EQ(q.size(kAllLanes), 0u);
}

TEST(ServeQueue, CloseWakesBlockedBatchConsumers) {
  auto q = make_sched();
  std::atomic<int> exited{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i)
    consumers.emplace_back([&, i] {
      std::vector<int> out;
      const auto mask = i == 0 ? kAllLanes : kLightOnly;
      while (q.pop_n(mask, out, 4) != 0) out.clear();
      exited.fetch_add(1);
    });
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(exited.load(), 3);
}

TEST(ServeQueue, MpmcBatchesDeliverEveryItemExactlyOnce) {
  // 4 producers x 4 consumers (two light-only, two all-lanes) through
  // small lanes: exercises the transition-gated notify_all and consumer
  // wake chaining under real contention, with heavy items only
  // reachable by half the pool. Sum check catches both lost and
  // duplicated items.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  LaneScheduler<long> q(std::array<LaneConfig, kLaneCount>{
      LaneConfig{64, 4}, LaneConfig{16, 1}});
  std::atomic<long> sum{0};
  std::atomic<long> count{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&, c] {
      const auto mask = c < 2 ? kAllLanes : kLightOnly;
      std::vector<long> batch;
      long local_sum = 0, local_count = 0;
      for (;;) {
        batch.clear();
        const std::size_t n = q.pop_n(mask, batch, 16);
        if (n == 0) break;
        for (long v : batch) ++local_count, local_sum += v;
      }
      sum.fetch_add(local_sum);
      count.fetch_add(local_count);
    });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const long value = static_cast<long>(p) * kPerProducer + i;
        // Every 8th item rides the heavy lane.
        const std::size_t lane = i % 8 == 0 ? kHeavyLane : kLightLane;
        while (!q.try_push(lane, value)) std::this_thread::yield();
      }
    });
  for (auto& t : producers) t.join();
  // Light-only consumers exit on "closed and light lane empty"; heavy
  // leftovers drain through the all-lanes pair.
  q.close();
  for (auto& t : consumers) t.join();

  const long total = static_cast<long>(kProducers) * kPerProducer;
  EXPECT_EQ(count.load(), total);
  EXPECT_EQ(sum.load(), total * (total - 1) / 2);
}

TEST(ServeQueue, ReopenAfterCloseAdmitsAgain) {
  auto q = make_sched(4, 4);
  q.close();
  EXPECT_FALSE(q.try_push(kLightLane, 1));
  q.reopen();
  EXPECT_TRUE(q.try_push(kLightLane, 1));
  std::vector<int> out;
  EXPECT_EQ(q.pop_n(kAllLanes, out, 4), 1u);
}

TEST(ServeQueue, CapacityAndWeightAccessors) {
  auto q = make_sched(16, 4);
  EXPECT_EQ(q.capacity(kLightLane), 16u);
  EXPECT_EQ(q.capacity(kHeavyLane), 4u);
  EXPECT_EQ(q.weight(kLightLane), 4u);
  EXPECT_EQ(q.weight(kHeavyLane), 1u);
}

}  // namespace
