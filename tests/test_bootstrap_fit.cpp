// Tests for bootstrap parameter confidence intervals.

#include <gtest/gtest.h>

#include <stdexcept>

#include "fit/bootstrap_fit.hpp"
#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"
#include "sim/factory.hpp"

namespace {

namespace ft = archline::fit;
namespace mb = archline::microbench;
namespace pl = archline::platforms;
namespace si = archline::sim;

mb::SuiteData suite(const char* name, std::uint64_t seed) {
  const si::SimMachine m = si::make_machine(pl::platform(name));
  archline::stats::Rng rng(seed);
  mb::SuiteOptions opt;
  opt.repeats = 2;
  opt.target_seconds = 0.1;
  opt.include_double = false;
  opt.include_caches = false;
  opt.include_random = false;
  return mb::run_suite(m, opt, rng);
}

ft::BootstrapFitOptions fast_options(const mb::SuiteData& data) {
  ft::BootstrapFitOptions opt;
  opt.replicates = 24;
  opt.fit.idle_watts_hint = data.idle_watts;
  for (const mb::Observation& o : data.dram_sp)
    opt.fit.max_watts_hint = std::max(opt.fit.max_watts_hint, o.watts);
  return opt;
}

TEST(BootstrapFit, IntervalsCoverTheTruthOnTitan) {
  const mb::SuiteData data = suite("GTX Titan", 21);
  const ft::FitConfidence c =
      ft::bootstrap_fit(data.dram_sp, fast_options(data));
  const archline::core::MachineParams truth =
      pl::platform("GTX Titan").machine();
  // Bootstrap intervals quantify resampling variance, not systematic
  // bias; the measurement stack carries a small (<1%) energy bias from
  // the start-up ramp, so assert the interval lands within 2% of truth
  // rather than exact coverage.
  const auto near_truth = [](const archline::stats::BootstrapInterval& ci,
                             double truth_value) {
    return ci.lo <= truth_value * 1.02 && ci.hi >= truth_value * 0.98;
  };
  EXPECT_TRUE(near_truth(c.pi1, truth.pi1));
  EXPECT_TRUE(near_truth(c.eps_mem, truth.eps_mem));
  EXPECT_TRUE(near_truth(c.eps_flop, truth.eps_flop));
}

TEST(BootstrapFit, IntervalsAreOrderedAndContainEstimate) {
  const mb::SuiteData data = suite("GTX 680", 22);
  const ft::FitConfidence c =
      ft::bootstrap_fit(data.dram_sp, fast_options(data));
  for (const auto* ci : {&c.tau_flop, &c.eps_flop, &c.tau_mem, &c.eps_mem,
                         &c.pi1, &c.delta_pi}) {
    EXPECT_LE(ci->lo, ci->hi);
    EXPECT_GT(ci->lo, 0.0);
  }
  EXPECT_EQ(c.replicates, 24);
}

TEST(BootstrapFit, WellDeterminedParametersHaveTightIntervals) {
  const mb::SuiteData data = suite("GTX Titan", 23);
  const ft::FitConfidence c =
      ft::bootstrap_fit(data.dram_sp, fast_options(data));
  const auto hw = c.relative_halfwidths();
  // tau_flop / tau_mem come from direct throughput measurement: tight.
  EXPECT_LT(hw[0], 0.05);
  EXPECT_LT(hw[2], 0.05);
  // pi1 is anchored by the idle measurement: tight.
  EXPECT_LT(hw[4], 0.05);
}

TEST(BootstrapFit, CapIntervalWiderWhereCapBarelyBinds) {
  // The identifiability structure, now visible as interval width:
  // the Xeon Phi's cap binds by ~2%, the Titan's by ~12%.
  const mb::SuiteData phi = suite("Xeon Phi", 24);
  const mb::SuiteData titan = suite("GTX Titan", 25);
  const auto c_phi = ft::bootstrap_fit(phi.dram_sp, fast_options(phi));
  const auto c_titan =
      ft::bootstrap_fit(titan.dram_sp, fast_options(titan));
  EXPECT_GT(c_phi.relative_halfwidths()[5],
            c_titan.relative_halfwidths()[5]);
}

TEST(BootstrapFit, BadOptionsThrow) {
  const mb::SuiteData data = suite("APU GPU", 26);
  ft::BootstrapFitOptions opt = fast_options(data);
  opt.replicates = 4;
  EXPECT_THROW((void)ft::bootstrap_fit(data.dram_sp, opt),
               std::invalid_argument);
  opt = fast_options(data);
  opt.confidence = 1.5;
  EXPECT_THROW((void)ft::bootstrap_fit(data.dram_sp, opt),
               std::invalid_argument);
}

TEST(BootstrapFit, DeterministicGivenSeed) {
  const mb::SuiteData data = suite("Arndale CPU", 27);
  const auto a = ft::bootstrap_fit(data.dram_sp, fast_options(data));
  const auto b = ft::bootstrap_fit(data.dram_sp, fast_options(data));
  EXPECT_DOUBLE_EQ(a.pi1.lo, b.pi1.lo);
  EXPECT_DOUBLE_EQ(a.delta_pi.hi, b.delta_pi.hi);
}

}  // namespace
