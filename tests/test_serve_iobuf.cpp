// ConsumableBuffer: the cursor/lazy-compaction contract behind the
// O(n²)-erase fix in the TCP loop's per-connection buffers. The
// pointer-stability assertions here are the regression pins: the old
// erase(0, n)-per-consume implementation moves the tail on every call
// and fails them.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>

#include "serve/iobuf.hpp"

namespace {

using archline::serve::ConsumableBuffer;

TEST(ConsumableBuffer, PreservesByteStreamAcrossInterleavedAppendsConsumes) {
  ConsumableBuffer buf;
  std::string expected;
  std::string got;
  // Deterministic interleaving: append i bytes, consume roughly half of
  // what is buffered, repeat. Everything consumed must come out in
  // order, and the final drain must produce the rest.
  unsigned x = 12345;
  for (int round = 0; round < 200; ++round) {
    x = x * 1664525u + 1013904223u;
    const std::size_t add = 1 + (x >> 16) % 97;
    std::string chunk;
    for (std::size_t i = 0; i < add; ++i)
      chunk.push_back(static_cast<char>('a' + (expected.size() + i) % 26));
    expected += chunk;
    buf.append(chunk);
    const std::size_t take = buf.size() / 2;
    got.append(buf.data(), take);
    buf.consume(take);
  }
  got.append(buf.data(), buf.size());
  buf.consume(buf.size());
  EXPECT_EQ(got, expected);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.dead_prefix(), 0u);
}

TEST(ConsumableBuffer, SmallConsumesAreCursorBumpsNotMoves) {
  ConsumableBuffer buf;
  const std::string payload(ConsumableBuffer::kCompactBytes - 1, 'x');
  buf.append(payload);
  const char* base = buf.data();
  // Consume the whole payload one byte at a time, staying below the
  // compaction threshold: the data pointer must advance by exactly one
  // per consume — the erase(0, 1) implementation would keep it fixed
  // (and memmove the tail 4095 times).
  for (std::size_t i = 0; i + 1 < payload.size(); ++i) {
    buf.consume(1);
    ASSERT_EQ(buf.data(), base + i + 1) << "tail was moved at byte " << i;
    ASSERT_EQ(buf.dead_prefix(), i + 1);
  }
  buf.consume(1);
  EXPECT_TRUE(buf.empty());
}

TEST(ConsumableBuffer, CompactsOnceThresholdAndHalfAllocationCrossed) {
  ConsumableBuffer buf;
  // 6 KiB live; consume 4 KiB: threshold met AND dead >= half => compact.
  buf.append(std::string(6144, 'a'));
  buf.consume(ConsumableBuffer::kCompactBytes);
  EXPECT_EQ(buf.dead_prefix(), 0u);
  EXPECT_EQ(buf.size(), 6144u - ConsumableBuffer::kCompactBytes);

  // 64 KiB live; consume 4 KiB: threshold met but dead < half => lazy.
  buf.clear();
  buf.append(std::string(65536, 'b'));
  buf.consume(ConsumableBuffer::kCompactBytes);
  EXPECT_EQ(buf.dead_prefix(), ConsumableBuffer::kCompactBytes);
  EXPECT_EQ(buf.size(), 65536u - ConsumableBuffer::kCompactBytes);
}

TEST(ConsumableBuffer, FullDrainResetsCursorAndKeepsNothingDead) {
  ConsumableBuffer buf;
  buf.append("hello");
  buf.consume(5);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.dead_prefix(), 0u);
  buf.append("world");
  EXPECT_EQ(std::string(buf.data(), buf.size()), "world");
}

TEST(ConsumableBuffer, AdoptTakesOwnershipWhenEmptyAppendsOtherwise) {
  ConsumableBuffer buf;
  std::string body(1024, 'z');
  const char* body_data = body.data();
  buf.adopt_or_append(std::move(body));
  // Moved, not copied: the buffer now reads from the donated storage.
  EXPECT_EQ(buf.data(), body_data);
  EXPECT_EQ(buf.size(), 1024u);

  std::string more = "tail";
  buf.adopt_or_append(std::move(more));
  EXPECT_EQ(buf.size(), 1028u);
  EXPECT_EQ(std::string(buf.data() + 1024, 4), "tail");
}

TEST(ConsumableBuffer, ViewTracksCursor) {
  ConsumableBuffer buf;
  buf.append("abc\ndef\n");
  EXPECT_EQ(buf.view().find('\n'), 3u);
  buf.consume(4);
  EXPECT_EQ(buf.view(), "def\n");
  EXPECT_EQ(buf.view().find('\n'), 3u);
}

// The amortized-cost claim, checked as work actually done: total bytes
// moved by compaction across a long drip-feed session must be O(bytes
// appended), not O(n²). With erase-per-consume, draining 2 MiB one
// 64-byte line at a time moves ~32 GiB; here it moves < 2x the stream.
TEST(ConsumableBuffer, DripFeedDoesBoundedWork) {
  ConsumableBuffer buf;
  const std::string line(63, 'q');
  std::size_t appended = 0;
  // Keep ~1 MiB resident so consume() can't take the cheap full-drain
  // path; push 32 MiB through in 64-byte lines. O(n²) behavior here is
  // ~minutes of memmove; the lazy cursor finishes instantly. (A loose
  // wall-clock guard, generous for sanitized builds, still separates
  // seconds from minutes.)
  buf.append(std::string(1 << 20, 'r'));
  const auto started = std::chrono::steady_clock::now();
  while (appended < (32u << 20)) {
    buf.append(line);
    buf.push_back('\n');
    appended += line.size() + 1;
    buf.consume(line.size() + 1);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  EXPECT_LT(elapsed, 30.0) << "front-consume is doing quadratic work";
  EXPECT_EQ(buf.size(), 1u << 20);
}

}  // namespace
