// Tests for the energy-policy engine: pinned race-vs-steady break-even
// behavior, and randomized properties over machines, workloads, and
// operating-point ladders — the engine must agree with brute-force
// evaluation of its own per-point predictions everywhere.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/machine_params.hpp"
#include "core/operating_point.hpp"
#include "core/policy.hpp"
#include "core/roofline.hpp"
#include "core/scenarios.hpp"
#include "platforms/platform_db.hpp"
#include "stats/rng.hpp"

namespace {

namespace co = archline::core;
namespace pl = archline::platforms;

using archline::stats::Rng;

/// A compute-dominated synthetic machine with easy round numbers:
/// T = 1 s, dynamic energy = 5 J for the test workload at nominal.
co::MachineParams toy_machine() {
  co::MachineParams m;
  m.tau_flop = 1e-9;   // 1 Gflop/s
  m.eps_flop = 5e-9;   // 5 J / Gflop
  m.tau_mem = 1e-15;   // memory negligible for the test workload
  m.eps_mem = 1e-15;
  m.pi1 = 20.0;
  m.delta_pi = co::kUncapped;
  return m;
}

co::Workload toy_work() { return {.flops = 1e9, .bytes = 1.0}; }

co::OperatingPoint op(const char* label, double s, double e) {
  co::OperatingPoint p;
  p.label = label;
  p.freq_scale = s;
  p.energy_scale = e;
  return p;
}

co::OperatingPointTable toy_table() {
  // Slow point: half clock, dynamic energy x0.4 (L = 0.2); pi1 inherits
  // the base machine at both points.
  co::OperatingPointTable t;
  t.points = {op("0.50x", 0.5, 0.4), op("1.00x", 1.0, 1.0)};
  return t;
}

const co::PlanEvaluation& find_plan(const co::PolicyAdvice& a,
                                    std::size_t point, co::PlanKind kind) {
  for (const co::PlanEvaluation& e : a.plans)
    if (e.point_index == point && e.kind == kind) return e;
  throw std::logic_error("plan not found");
}

TEST(PolicyRequest, ValidationRules) {
  co::PolicyRequest r;
  r.workload = toy_work();
  EXPECT_NO_THROW(r.validate());
  r.period_s = -1.0;
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r.period_s = 0.0;
  r.objective = co::Objective::PowerCap;
  EXPECT_THROW(r.validate(), std::invalid_argument);  // needs a cap
  r.power_cap_w = 50.0;
  EXPECT_NO_THROW(r.validate());
  r.workload.flops = 0.0;
  EXPECT_THROW(r.validate(), std::invalid_argument);
}

TEST(PolicyAdvise, NoPeriodReducesToRunToCompletion) {
  co::PolicyRequest r;
  r.workload = toy_work();
  const co::PolicyAdvice a = co::policy_advise(toy_machine(), toy_table(), r);
  ASSERT_TRUE(a.has_recommendation());
  // With no deadline there is no slack to park in: race and steady
  // coincide at every point.
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& race = find_plan(a, i, co::PlanKind::RaceToIdle);
    const auto& steady = find_plan(a, i, co::PlanKind::SlowAndSteady);
    EXPECT_DOUBLE_EQ(race.busy_s, race.time_s);
    EXPECT_DOUBLE_EQ(race.busy_s, steady.busy_s);
    EXPECT_DOUBLE_EQ(race.energy_j, steady.energy_j);
  }
  // Slow point: T = 2 s, E = 2 + 20*2 = 42 J. Fast: T = 1, E = 25 J.
  EXPECT_NEAR(find_plan(a, 0, co::PlanKind::RaceToIdle).energy_j, 42.0, 1e-6);
  EXPECT_NEAR(find_plan(a, 1, co::PlanKind::RaceToIdle).energy_j, 25.0, 1e-6);
  EXPECT_EQ(a.recommended().point_index, 1u);  // min_energy -> fast point
}

TEST(PolicyAdvise, RaceVsSteadyFlipsAtAnalyticBreakEven) {
  // Within one operating point, race-to-idle and slow-and-steady cross
  // exactly at park = pi1 (the header's break-even formula with f = s):
  //   E_race = dyn + pi1 T + (P - T) park,  E_steady = dyn + pi1 P.
  // Near that park level the slow point holds the global minimum
  // (race: 42 + park vs steady: 62 J), so the recommendation flips
  // kind — race below, steady above — at park* = pi1 = 20 W.
  const double park_star = 20.0;
  co::PolicyRequest r;
  r.workload = toy_work();
  r.period_s = 3.0;
  for (const double eps : {-1e-3, 1e-3}) {
    const double park = park_star * (1.0 + eps);
    co::OperatingPointTable t = toy_table();
    for (co::OperatingPoint& p : t.points) p.idle_watts = park;
    const co::PolicyAdvice a =
        co::policy_advise(toy_machine(), t, r);
    ASSERT_TRUE(a.has_recommendation());
    EXPECT_EQ(a.recommended().kind, eps < 0 ? co::PlanKind::RaceToIdle
                                            : co::PlanKind::SlowAndSteady)
        << "park=" << park;
  }
}

TEST(PolicyAdvise, CrossPointBreakEvenMatchesFormula) {
  // The general formula: race at point f beats steady at point s while
  //   park < (dyn_s - dyn_f + pi1_s P - pi1_f T_f) / (P - T_f).
  // Give the two points their own pi1 so the cross-point terms differ.
  co::OperatingPointTable t = toy_table();
  t.points[0].pi1_watts = 8.0;   // slow point runs cooler
  t.points[1].pi1_watts = 20.0;
  const double P = 3.0;
  // dyn_f = 5, T_f = 1, dyn_s = 2, pi1_s = 8:
  //   park* = (2 - 5 + 8*3 - 20*1) / (3 - 1) = 0.5.
  const double park_star = 0.5;
  co::PolicyRequest r;
  r.workload = toy_work();
  r.period_s = P;
  for (const double eps : {-1e-3, 1e-3}) {
    co::OperatingPointTable tt = t;
    for (co::OperatingPoint& p : tt.points)
      p.idle_watts = park_star * (1.0 + eps);
    const co::PolicyAdvice a = co::policy_advise(toy_machine(), tt, r);
    const auto& race_f = find_plan(a, 1, co::PlanKind::RaceToIdle);
    const auto& steady_s = find_plan(a, 0, co::PlanKind::SlowAndSteady);
    if (eps < 0)
      EXPECT_LT(race_f.energy_j, steady_s.energy_j);
    else
      EXPECT_GT(race_f.energy_j, steady_s.energy_j);
  }
}

TEST(PolicyAdvise, ImpossiblePeriodHasNoRecommendation) {
  co::PolicyRequest r;
  r.workload = toy_work();
  r.period_s = 0.5;  // even the nominal point needs 1 s
  const co::PolicyAdvice a = co::policy_advise(toy_machine(), toy_table(), r);
  EXPECT_FALSE(a.has_recommendation());
  for (const co::PlanEvaluation& e : a.plans) {
    EXPECT_FALSE(e.feasible);
    EXPECT_TRUE(std::isinf(e.objective_value));
  }
  EXPECT_THROW((void)a.recommended(), std::logic_error);
}

TEST(PolicyAdvise, MinTimePrefersFastestFeasiblePoint) {
  co::PolicyRequest r;
  r.workload = toy_work();
  r.objective = co::Objective::MinTime;
  const co::PolicyAdvice a = co::policy_advise(toy_machine(), toy_table(), r);
  ASSERT_TRUE(a.has_recommendation());
  EXPECT_EQ(a.recommended().point_index, 1u);
  EXPECT_NEAR(a.recommended().busy_s, 1.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Randomized properties.

co::MachineParams random_machine(Rng& rng, bool uncapped) {
  co::MachineParams m;
  m.tau_flop = rng.uniform(1e-12, 1e-9);
  m.eps_flop = rng.uniform(1e-11, 1e-8);
  m.tau_mem = rng.uniform(1e-11, 1e-8);
  m.eps_mem = rng.uniform(1e-10, 1e-7);
  m.pi1 = rng.uniform(1.0, 80.0);
  m.delta_pi = uncapped ? co::kUncapped : rng.uniform(20.0, 300.0);
  return m;
}

co::Workload random_work(Rng& rng) {
  return {.flops = rng.uniform(1e6, 1e10), .bytes = rng.uniform(1e5, 1e9)};
}

co::OperatingPointTable random_ladder(Rng& rng) {
  const std::size_t n = 2 + rng.below(4);
  const double leakage = rng.uniform(0.1, 0.5);
  const double lo = rng.uniform(0.2, 0.6);
  co::OperatingPointTable t;
  for (std::size_t i = 0; i < n; ++i) {
    const double s =
        lo + (1.0 - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    co::OperatingPoint p = op("r", s, co::dvfs_energy_scale(leakage, s));
    p.idle_watts = rng.uniform(0.0, 10.0);
    t.points.push_back(p);
  }
  return t;
}

TEST(PolicyProperties, TimeMonotoneInFrequencyWhenUncapped) {
  // Without a power cap both eq. (1) terms scale as 1/s (or stay flat),
  // so time never increases with frequency. (A cap breaks this: the
  // power-limited term grows with the s^2 dynamic energy.)
  Rng rng(0xa11ce5);
  for (int trial = 0; trial < 200; ++trial) {
    const co::MachineParams base = random_machine(rng, /*uncapped=*/true);
    const co::OperatingPointTable t = random_ladder(rng);
    const co::Workload w = random_work(rng);
    const std::vector<co::MachineParams> ms =
        co::machines_at_points(base, t.points);
    for (std::size_t i = 1; i < ms.size(); ++i)
      EXPECT_LE(co::time(ms[i], w), co::time(ms[i - 1], w) * (1.0 + 1e-12))
          << "trial " << trial << " point " << i;
  }
}

TEST(PolicyProperties, EnergyAtLeastConstantPowerFloorEverywhere) {
  // E = dyn + pi1 T >= pi1 T at every operating point (eq. 3 with a
  // non-negative dynamic part) — and every feasible plan's total energy
  // respects the same floor over its busy time.
  Rng rng(0xbeef01);
  for (int trial = 0; trial < 200; ++trial) {
    const co::MachineParams base = random_machine(rng, trial % 2 == 0);
    const co::OperatingPointTable t = random_ladder(rng);
    const co::Workload w = random_work(rng);
    const std::vector<co::MachineParams> ms =
        co::machines_at_points(base, t.points);
    for (const co::MachineParams& m : ms)
      EXPECT_GE(co::energy(m, w), m.pi1 * co::time(m, w) * (1.0 - 1e-12));
    co::PolicyRequest r;
    r.workload = w;
    const co::PolicyAdvice a =
        co::policy_advise(ms, t.points, t.park_watts(), r);
    for (const co::PlanEvaluation& e : a.plans) {
      if (!e.feasible) continue;
      EXPECT_GE(e.energy_j, ms[e.point_index].pi1 * e.busy_s * (1.0 - 1e-12));
    }
  }
}

TEST(PolicyProperties, CapThrottledPlansNeverExceedTheTarget) {
  Rng rng(0xcab1e);
  int evaluated = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const co::MachineParams base = random_machine(rng, trial % 3 == 0);
    const co::OperatingPointTable t = random_ladder(rng);
    const co::Workload w = random_work(rng);
    co::PolicyRequest r;
    r.workload = w;
    r.power_cap_w = rng.uniform(0.5, 200.0);
    if (rng.uniform() < 0.5) r.period_s = rng.uniform(1e-3, 10.0);
    const co::PolicyAdvice a = co::policy_advise(base, t, r);
    const std::vector<co::MachineParams> ms =
        co::machines_at_points(base, t.points);
    for (const co::PlanEvaluation& e : a.plans) {
      if (e.kind != co::PlanKind::CapThrottled || !e.feasible) continue;
      // The running machine's worst-case power fits under the target...
      const co::MachineParams capped = co::with_cap(
          ms[e.point_index],
          std::min(ms[e.point_index].delta_pi,
                   r.power_cap_w - ms[e.point_index].pi1));
      EXPECT_LE(capped.max_power(), r.power_cap_w * (1.0 + 1e-9));
      // ...and so does the whole window's average (park <= pi1 here
      // only when the random idle draw is below pi1, so check the
      // active phase, which is the guarantee the plan makes).
      EXPECT_LE(co::avg_power(capped, w), r.power_cap_w * (1.0 + 1e-9));
      ++evaluated;
    }
  }
  EXPECT_GT(evaluated, 50);  // the property must actually be exercised
}

TEST(PolicyProperties, RecommendationIsArgminOfItsOwnPlans) {
  Rng rng(0x5eed42);
  for (int trial = 0; trial < 300; ++trial) {
    const co::MachineParams base = random_machine(rng, trial % 2 == 0);
    const co::OperatingPointTable t = random_ladder(rng);
    co::PolicyRequest r;
    r.workload = random_work(rng);
    const int obj = static_cast<int>(rng.below(4));
    r.objective = static_cast<co::Objective>(obj);
    if (rng.uniform() < 0.7) r.period_s = rng.uniform(1e-3, 100.0);
    if (r.objective == co::Objective::PowerCap || rng.uniform() < 0.5)
      r.power_cap_w = rng.uniform(1.0, 300.0);
    const co::PolicyAdvice a = co::policy_advise(base, t, r);
    // Brute force over the returned table: first strictly-smallest
    // feasible row must be exactly the engine's pick.
    std::size_t best = co::PolicyAdvice::npos;
    for (std::size_t i = 0; i < a.plans.size(); ++i) {
      if (!a.plans[i].feasible) continue;
      if (best == co::PolicyAdvice::npos ||
          a.plans[i].objective_value < a.plans[best].objective_value)
        best = i;
    }
    EXPECT_EQ(a.best, best) << "trial " << trial;
    if (best != co::PolicyAdvice::npos) {
      for (const co::PlanEvaluation& e : a.plans) {
        if (!e.feasible) continue;
        EXPECT_LE(a.plans[best].objective_value,
                  e.objective_value + 1e-9 * std::abs(e.objective_value));
      }
    }
  }
}

TEST(PolicyAdvise, RealPlatformLadderEndToEnd) {
  // Smoke over a real Table I platform ladder: period twice the nominal
  // run time leaves real slack; every objective must produce a
  // recommendation whose numbers reproduce under brute-force re-check.
  const pl::PlatformSpec& spec = pl::platform("GTX Titan");
  const co::MachineParams base = spec.machine();
  const co::Workload w = {.flops = 1e12, .bytes = 4e10};
  co::PolicyRequest r;
  r.workload = w;
  r.period_s = 2.0 * co::time(base, w);
  r.power_cap_w = 0.8 * base.max_power();
  for (const co::Objective obj :
       {co::Objective::MinEnergy, co::Objective::MinTime,
        co::Objective::MinEdp, co::Objective::PowerCap}) {
    r.objective = obj;
    const co::PolicyAdvice a =
        co::policy_advise(base, spec.operating_points, r);
    ASSERT_TRUE(a.has_recommendation()) << co::to_string(obj);
    const co::PlanEvaluation& best = a.recommended();
    EXPECT_TRUE(best.feasible);
    EXPECT_GT(best.energy_j, 0.0);
    EXPECT_NEAR(best.avg_power_w, best.energy_j / best.time_s,
                1e-9 * best.avg_power_w);
    EXPECT_NEAR(best.edp, best.energy_j * best.busy_s, 1e-6);
  }
}

}  // namespace
