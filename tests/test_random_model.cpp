// Tests for the random-access (pointer-chase) analytical model.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/random_model.hpp"
#include "core/units.hpp"
#include "platforms/platform_db.hpp"

namespace {

namespace co = archline::core;
namespace pl = archline::platforms;

co::RandomAccessMachine toy(double delta_pi = co::kUncapped) {
  co::RandomAccessMachine m;
  m.tau_access = 1e-8;   // 100 Macc/s
  m.eps_access = 50e-9;  // 50 nJ/access -> 5 W at full rate
  m.pi1 = 2.0;
  m.delta_pi = delta_pi;
  return m;
}

TEST(RandomModel, ValidationRules) {
  EXPECT_NO_THROW(toy().validate());
  co::RandomAccessMachine m = toy();
  m.tau_access = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = toy();
  m.eps_access = -1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(RandomModel, RateIsTheMeasuredEngineRate) {
  EXPECT_DOUBLE_EQ(toy().access_rate(), 1e8);
  EXPECT_DOUBLE_EQ(toy(2.5).access_rate(), 1e8);  // cap does not gate it
}

TEST(RandomModel, PowerConsistencyDiagnostic) {
  // Demand 5 W: consistent under a 50 W cap, inconsistent under 2.5 W.
  EXPECT_DOUBLE_EQ(toy(2.5).pi_rand(), 5.0);
  EXPECT_FALSE(toy(2.5).power_consistent());
  EXPECT_TRUE(toy(50.0).power_consistent());
  EXPECT_TRUE(toy().power_consistent());
}

TEST(RandomModel, AvgPowerClampedToPhysicalCeiling) {
  // Attribution 5 W above a 2.5 W cap: electrical power tops out at
  // pi1 + delta_pi.
  EXPECT_DOUBLE_EQ(toy(2.5).avg_power(), 2.0 + 2.5);
  EXPECT_DOUBLE_EQ(toy(50.0).avg_power(), 2.0 + 5.0);
}

TEST(RandomModel, TimeAndEnergyAccounting) {
  const co::RandomAccessMachine m = toy();
  EXPECT_DOUBLE_EQ(m.time(1e8), 1.0);
  // 1e8 accesses * 50 nJ + 2 W * 1 s = 5 + 2 = 7 J.
  EXPECT_DOUBLE_EQ(m.energy(1e8), 7.0);
  EXPECT_DOUBLE_EQ(m.avg_power(), 7.0);
}

TEST(RandomModel, EffectiveEnergyIncludesConstantCharge) {
  const co::RandomAccessMachine m = toy();
  // 50 nJ + 2 W / 1e8 acc/s = 50 + 20 = 70 nJ.
  EXPECT_NEAR(m.effective_energy_per_access(), 70e-9, 1e-15);
  EXPECT_NEAR(m.accesses_per_joule(), 1.0 / 70e-9, 1.0);
}

TEST(RandomModel, PlatformConversion) {
  const co::RandomAccessMachine phi =
      pl::platform("Xeon Phi").random_machine();
  EXPECT_NEAR(1.0 / phi.tau_access, 706e6, 1e3);
  EXPECT_NEAR(phi.eps_access, 5.11e-9, 1e-12);
  EXPECT_DOUBLE_EQ(phi.pi1, 180.0);
}

TEST(RandomModel, MissingDataThrows) {
  EXPECT_THROW((void)pl::platform("NUC GPU").random_machine(),
               std::invalid_argument);
}

TEST(RandomModel, PaperXeonPhiObservationRevisited) {
  // §VI: Phi's eps_rand is >= 10x below every other platform. But its
  // huge pi1 charges ~255 nJ of constant energy per access, so on
  // *effective* energy the ordering changes — the same inversion as
  // §V-B's streaming example.
  const co::RandomAccessMachine phi =
      pl::platform("Xeon Phi").random_machine();
  EXPECT_GT(phi.effective_energy_per_access(), 10.0 * phi.eps_access);

  // At least one low-pi1 platform beats the Phi on effective energy.
  bool someone_beats_phi = false;
  for (const pl::PlatformSpec& spec : pl::all_platforms()) {
    if (!spec.has_random_access() || spec.name == "Xeon Phi") continue;
    if (spec.random_machine().effective_energy_per_access() <
        phi.effective_energy_per_access())
      someone_beats_phi = true;
  }
  EXPECT_TRUE(someone_beats_phi);
}

TEST(RandomModel, TableIInclusiveAttributionFinding) {
  // A reproduction finding: eps_rand x sustained rate EXCEEDS delta_pi on
  // exactly three Table I platforms (GTX 680, APU GPU, Arndale CPU) —
  // proof that eps_rand is an inclusive energy attribution (§V-B's
  // "additional energy" definition), not an instantaneous power.
  std::vector<std::string> inconsistent;
  for (const pl::PlatformSpec& spec : pl::all_platforms()) {
    if (!spec.has_random_access()) continue;
    if (!spec.random_machine().power_consistent())
      inconsistent.push_back(spec.name);
  }
  EXPECT_EQ(inconsistent,
            (std::vector<std::string>{"APU GPU", "GTX 680", "Arndale CPU"}));
}

TEST(RandomModel, AvgPowerNeverExceedsNodeCeiling) {
  for (const pl::PlatformSpec& spec : pl::all_platforms()) {
    if (!spec.has_random_access()) continue;
    const co::RandomAccessMachine m = spec.random_machine();
    EXPECT_LE(m.avg_power(), m.pi1 + m.delta_pi + 1e-9) << spec.name;
  }
}

}  // namespace
