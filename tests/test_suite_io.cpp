// Tests for suite CSV interchange.

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "fit/model_fit.hpp"
#include "microbench/suite_io.hpp"
#include "platforms/platform_db.hpp"
#include "report/csv.hpp"
#include "sim/factory.hpp"

namespace {

namespace mb = archline::microbench;
namespace pl = archline::platforms;
namespace si = archline::sim;

mb::SuiteData sample_suite() {
  const si::SimMachine m = si::make_machine(pl::platform("Xeon Phi"));
  archline::stats::Rng rng(55);
  mb::SuiteOptions opt;
  opt.intensities = {0.25, 4.0, 64.0};
  opt.repeats = 2;
  opt.target_seconds = 0.05;
  return mb::run_suite(m, opt, rng);
}

TEST(SuiteIo, RoundTripPreservesEverything) {
  const mb::SuiteData data = sample_suite();
  const auto rows =
      archline::report::parse_csv(mb::suite_to_csv(data).to_string());
  const mb::SuiteData back = mb::suite_from_csv_rows(rows);

  EXPECT_DOUBLE_EQ(back.idle_watts, data.idle_watts);
  ASSERT_EQ(back.dram_sp.size(), data.dram_sp.size());
  ASSERT_EQ(back.dram_dp.size(), data.dram_dp.size());
  ASSERT_EQ(back.l1.size(), data.l1.size());
  ASSERT_EQ(back.l2.size(), data.l2.size());
  ASSERT_EQ(back.random.size(), data.random.size());
  for (std::size_t i = 0; i < data.dram_sp.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.dram_sp[i].seconds, data.dram_sp[i].seconds);
    EXPECT_DOUBLE_EQ(back.dram_sp[i].joules, data.dram_sp[i].joules);
    EXPECT_DOUBLE_EQ(back.dram_sp[i].kernel.flops,
                     data.dram_sp[i].kernel.flops);
    EXPECT_DOUBLE_EQ(back.dram_sp[i].watts, data.dram_sp[i].watts);
  }
}

TEST(SuiteIo, GroupsCarryTheirSemantics) {
  const mb::SuiteData data = sample_suite();
  const mb::SuiteData back = mb::suite_from_csv_rows(
      archline::report::parse_csv(mb::suite_to_csv(data).to_string()));
  for (const mb::Observation& o : back.dram_dp)
    EXPECT_EQ(o.kernel.precision, archline::core::Precision::Double);
  for (const mb::Observation& o : back.l1)
    EXPECT_EQ(o.kernel.level, archline::core::MemLevel::L1);
  for (const mb::Observation& o : back.random)
    EXPECT_EQ(o.kernel.pattern, archline::core::AccessPattern::Random);
}

TEST(SuiteIo, FileRoundTrip) {
  const mb::SuiteData data = sample_suite();
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "archline_suite_io" /
      "suite.csv";
  mb::write_suite_csv(data, path);
  const mb::SuiteData back = mb::read_suite_csv(path);
  EXPECT_EQ(back.total_observations(), data.total_observations());
  std::filesystem::remove_all(path.parent_path());
}

TEST(SuiteIo, RefitFromRoundTrippedData) {
  // The interchange must be faithful enough to refit the machine.
  const mb::SuiteData data = sample_suite();
  const mb::SuiteData back = mb::suite_from_csv_rows(
      archline::report::parse_csv(mb::suite_to_csv(data).to_string()));
  const auto a = archline::fit::fit_machine(data);
  const auto b = archline::fit::fit_machine(back);
  EXPECT_NEAR(b.machine.pi1, a.machine.pi1, 1e-9 * a.machine.pi1);
  EXPECT_NEAR(b.machine.eps_mem, a.machine.eps_mem,
              1e-9 * a.machine.eps_mem);
}

TEST(SuiteIo, RejectsMalformedInput) {
  EXPECT_THROW((void)mb::suite_from_csv_rows({}), std::runtime_error);
  EXPECT_THROW((void)mb::suite_from_csv_rows({{"not", "the", "header"}}),
               std::runtime_error);
  auto rows = archline::report::parse_csv(
      mb::suite_to_csv(sample_suite()).to_string());
  rows.push_back({"weird_group", "x", "1", "1", "0", "1", "1"});
  EXPECT_THROW((void)mb::suite_from_csv_rows(rows), std::runtime_error);
}

TEST(SuiteIo, RejectsNonPositiveMeasurements) {
  auto rows = archline::report::parse_csv(
      mb::suite_to_csv(sample_suite()).to_string());
  rows.push_back({"dram_sp", "bad", "1", "1", "0", "0", "1"});
  EXPECT_THROW((void)mb::suite_from_csv_rows(rows), std::runtime_error);
}

}  // namespace
