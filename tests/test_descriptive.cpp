// Tests for stats::descriptive — moments, quantiles, summaries.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"

namespace {

namespace st = archline::stats;

TEST(Mean, Basic) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(st::mean(xs), 2.5);
}

TEST(Mean, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(st::mean(std::vector<double>{}), 0.0);
}

TEST(Variance, KnownValue) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Population variance is 4; sample (n-1) variance is 32/7.
  EXPECT_NEAR(st::variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Variance, SinglePointIsZero) {
  const std::vector<double> xs = {3.0};
  EXPECT_DOUBLE_EQ(st::variance(xs), 0.0);
}

TEST(Stddev, SqrtOfVariance) {
  const std::vector<double> xs = {1.0, 3.0};
  EXPECT_NEAR(st::stddev(xs), std::sqrt(2.0), 1e-12);
}

TEST(MinMax, Basic) {
  const std::vector<double> xs = {3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(st::min(xs), -1.0);
  EXPECT_DOUBLE_EQ(st::max(xs), 7.0);
}

TEST(MinMax, EmptyThrows) {
  const std::vector<double> empty;
  EXPECT_THROW((void)st::min(empty), std::invalid_argument);
  EXPECT_THROW((void)st::max(empty), std::invalid_argument);
}

TEST(Quantile, MedianOddCount) {
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(st::median(xs), 3.0);
}

TEST(Quantile, MedianEvenCountInterpolates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(st::median(xs), 2.5);
}

TEST(Quantile, Type7MatchesR) {
  // R: quantile(c(1,2,3,4,10), 0.25) == 2 ; 0.75 == 4.
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
  EXPECT_DOUBLE_EQ(st::quantile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(st::quantile(xs, 0.75), 4.0);
}

TEST(Quantile, Extremes) {
  const std::vector<double> xs = {4.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(st::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(st::quantile(xs, 1.0), 9.0);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> xs = {9.0, 1.0, 5.0, 3.0, 7.0};
  EXPECT_DOUBLE_EQ(st::median(xs), 5.0);
}

TEST(Quantile, BadProbabilityThrows) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)st::quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW((void)st::quantile(xs, 1.1), std::invalid_argument);
}

TEST(Quantile, EmptyThrows) {
  EXPECT_THROW((void)st::quantile(std::vector<double>{}, 0.5),
               std::invalid_argument);
}

TEST(Summarize, FiveNumbers) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  const st::FiveNumberSummary s = st::summarize(xs);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.q25, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q75, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.iqr(), 2.0);
}

TEST(Summarize, OrderedInvariants) {
  const std::vector<double> xs = {0.3, -1.2, 4.5, 2.2, 0.0, 9.1, -3.3};
  const st::FiveNumberSummary s = st::summarize(xs);
  EXPECT_LE(s.min, s.q25);
  EXPECT_LE(s.q25, s.median);
  EXPECT_LE(s.median, s.q75);
  EXPECT_LE(s.q75, s.max);
}

TEST(RelativeErrors, Basic) {
  const std::vector<double> model = {11.0, 9.0};
  const std::vector<double> meas = {10.0, 10.0};
  const std::vector<double> errs = st::relative_errors(model, meas);
  ASSERT_EQ(errs.size(), 2u);
  EXPECT_NEAR(errs[0], 0.1, 1e-12);
  EXPECT_NEAR(errs[1], -0.1, 1e-12);
}

TEST(RelativeErrors, MismatchThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW((void)st::relative_errors(a, b), std::invalid_argument);
}

TEST(RelativeErrors, ZeroMeasuredThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {0.0};
  EXPECT_THROW((void)st::relative_errors(a, b), std::invalid_argument);
}

TEST(GeometricMean, Basic) {
  const std::vector<double> xs = {1.0, 4.0, 16.0};
  EXPECT_NEAR(st::geometric_mean(xs), 4.0, 1e-12);
}

TEST(GeometricMean, NonPositiveThrows) {
  const std::vector<double> xs = {1.0, 0.0};
  EXPECT_THROW((void)st::geometric_mean(xs), std::invalid_argument);
}

TEST(Rms, Basic) {
  const std::vector<double> xs = {3.0, 4.0};
  EXPECT_NEAR(st::rms(xs), std::sqrt(12.5), 1e-12);
}

TEST(Rms, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(st::rms(std::vector<double>{}), 0.0);
}

}  // namespace
