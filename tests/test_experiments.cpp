// Tests for the experiment drivers: each paper artifact's headline shape
// must hold in the reproduction.

#include <gtest/gtest.h>

#include <cmath>

#include "experiments/exp_fig1.hpp"
#include "experiments/exp_fig5.hpp"
#include "experiments/exp_memhier.hpp"
#include "experiments/exp_powerbound.hpp"
#include "experiments/exp_throttle.hpp"
#include "platforms/platform_db.hpp"

namespace {

namespace ex = archline::experiments;
namespace co = archline::core;
namespace pl = archline::platforms;

// ---- Fig. 1 ---------------------------------------------------------------

ex::Fig1Result fig1_model_only() {
  ex::Fig1Options opt;
  opt.with_measurements = false;
  return ex::run_fig1(opt);
}

TEST(Fig1, AggregateCountNear47) {
  const ex::Fig1Result r = fig1_model_only();
  EXPECT_EQ(r.aggregate_count, 47);
}

TEST(Fig1, EfficiencyParityRegion) {
  // §I-A: flop/J parity "for intensities as high as 4". The exact tie in
  // our constants is near I ~ 1.7, with near-parity persisting to 4.
  const ex::Fig1Result r = fig1_model_only();
  EXPECT_GT(r.efficiency_crossover, 1.0);
  EXPECT_LT(r.efficiency_crossover, 8.0);
}

TEST(Fig1, AggregateWinsAtLowIntensityLosesAtHigh) {
  // Caption: "up to 1.6x for ... flop:Byte less than 4 ... less than 1/2
  // peak for compute-bound codes".
  const ex::Fig1Result r = fig1_model_only();
  EXPECT_GT(r.aggregate_peak_speedup, 1.3);
  EXPECT_LT(r.aggregate_peak_speedup, 2.0);
  EXPECT_LT(r.aggregate_peak_ratio, 0.5);
}

TEST(Fig1, TitanAlwaysFasterThanSingleArndale) {
  const ex::Fig1Result r = fig1_model_only();
  for (std::size_t i = 0; i < r.big.size(); ++i)
    EXPECT_GT(r.big[i].model_perf, r.small_[i].model_perf);
}

TEST(Fig1, MeasurementsTrackModel) {
  ex::Fig1Options opt;
  opt.points_per_octave = 1;
  const ex::Fig1Result r = ex::run_fig1(opt);
  for (const ex::Fig1Point& p : r.big) {
    if (p.measured_perf == 0.0) continue;
    EXPECT_NEAR(p.measured_perf, p.model_perf, 0.15 * p.model_perf);
    EXPECT_NEAR(p.measured_power, p.model_power, 0.15 * p.model_power);
  }
}

TEST(Fig1, GeneralizesToOtherPairs) {
  ex::Fig1Options opt;
  opt.big_platform = "GTX 680";
  opt.small_platform = "PandaBoard ES";
  opt.with_measurements = false;
  const ex::Fig1Result r = ex::run_fig1(opt);
  EXPECT_GT(r.aggregate_count, 10);
  EXPECT_EQ(r.big_name, "GTX 680");
}

// ---- Fig. 5 ---------------------------------------------------------------

ex::Fig5Result fig5_model_only() {
  ex::Fig5Options opt;
  opt.with_measurements = false;
  return ex::run_fig5(opt);
}

TEST(Fig5, PanelsOrderedByPeakEfficiency) {
  const ex::Fig5Result r = fig5_model_only();
  ASSERT_EQ(r.panels.size(), 12u);
  EXPECT_EQ(r.panels.front().platform, "GTX Titan");
  EXPECT_EQ(r.panels.back().platform, "Desktop CPU");
  for (std::size_t i = 1; i < r.panels.size(); ++i)
    EXPECT_GE(r.panels[i - 1].summary.peak_flops_per_joule,
              r.panels[i].summary.peak_flops_per_joule);
}

TEST(Fig5, SevenPlatformsOverHalfConstantPower) {
  EXPECT_EQ(fig5_model_only().over_half_constant, 7);
}

TEST(Fig5, ConstantFractionAnticorrelatesWithEfficiency) {
  // §V-C reports a correlation of about -0.6.
  const ex::Fig5Result r = fig5_model_only();
  EXPECT_LT(r.pi1_fraction_correlation, -0.3);
}

TEST(Fig5, NormalizedPowerBounded) {
  const ex::Fig5Result r = fig5_model_only();
  for (const ex::Fig5Panel& p : r.panels)
    for (const double v : p.model_power_norm) {
      EXPECT_GT(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
}

TEST(Fig5, EveryPanelHasACapRegionOrNot) {
  // Each panel's regimes must be a contiguous M -> C -> F progression.
  const ex::Fig5Result r = fig5_model_only();
  for (const ex::Fig5Panel& p : r.panels) {
    int phase = 0;  // 0=M, 1=C, 2=F
    for (const co::Regime reg : p.regime) {
      const int now = reg == co::Regime::Memory
                          ? 0
                          : (reg == co::Regime::PowerCap ? 1 : 2);
      EXPECT_GE(now, phase) << p.platform;
      phase = std::max(phase, now);
    }
  }
}

TEST(Fig5, MeasuredPeakPowerNearCap) {
  ex::Fig5Options opt;
  opt.points_per_octave = 1;
  const ex::Fig5Result r = ex::run_fig5(opt);
  for (const ex::Fig5Panel& p : r.panels) {
    EXPECT_GT(p.measured_peak_power_fraction, 0.75) << p.platform;
    EXPECT_LT(p.measured_peak_power_fraction, 1.25) << p.platform;
  }
}

// ---- Fig. 6 / 7 ------------------------------------------------------------

TEST(Throttle, StudyCoversAllPlatformsAndDivisors) {
  const ex::ThrottleResult r = ex::run_throttle_study();
  ASSERT_EQ(r.panels.size(), 12u);
  for (const ex::ThrottlePanel& p : r.panels)
    EXPECT_EQ(p.points.size(),
              p.cap_divisors.size() *
                  (p.points.size() / p.cap_divisors.size()));
}

TEST(Throttle, ArndaleGpuMostReconfigurable) {
  // Fig. 6's headline finding.
  const ex::ThrottleResult r = ex::run_throttle_study();
  EXPECT_EQ(r.most_reconfigurable, "Arndale GPU");
}

TEST(Throttle, LeastReconfigurableAmongPaperTrio) {
  // "the Xeon Phi, APU CPU, and APU GPU platforms have the least".
  const ex::ThrottleResult r = ex::run_throttle_study();
  EXPECT_TRUE(r.least_reconfigurable == "Xeon Phi" ||
              r.least_reconfigurable == "APU CPU" ||
              r.least_reconfigurable == "APU GPU")
      << r.least_reconfigurable;
}

TEST(Throttle, TitanDegradesLeastAtLowIntensity) {
  // Fig. 7a: at low intensity the Titan's overprovisioned compute power
  // makes it the most throttle-tolerant.
  double titan_ratio = 0.0;
  double worst_ratio = 1.0;
  for (const pl::PlatformSpec& spec : pl::all_platforms()) {
    const double ratio =
        ex::throttled_perf_ratio(spec.machine(), 0.25, 8.0);
    if (spec.name == "GTX Titan") titan_ratio = ratio;
    worst_ratio = std::min(worst_ratio, ratio);
  }
  EXPECT_GT(titan_ratio, 0.25);
  EXPECT_GT(titan_ratio, worst_ratio * 2.0);
}

TEST(Throttle, NucCpuDegradesLeastAtHighIntensity) {
  // Fig. 7a: "for highly compute-bound computations, the NUC CPU degrades
  // the least, since its design overprovisions power for memory."
  const double nuc = ex::throttled_perf_ratio(
      pl::platform("NUC CPU").machine(), 128.0, 8.0);
  for (const pl::PlatformSpec& spec : pl::all_platforms()) {
    if (spec.name == "NUC CPU") continue;
    EXPECT_GE(nuc, ex::throttled_perf_ratio(spec.machine(), 128.0, 8.0) -
                       1e-12)
        << spec.name;
  }
}

TEST(Throttle, RatioNeverAboveOne) {
  for (const pl::PlatformSpec& spec : pl::all_platforms())
    for (const double intensity : {0.25, 4.0, 64.0})
      for (const double k : {2.0, 4.0, 8.0})
        EXPECT_LE(ex::throttled_perf_ratio(spec.machine(), intensity, k),
                  1.0 + 1e-12);
}

// ---- §V-B memory hierarchy -------------------------------------------------

TEST(MemHier, InversionReproduced) {
  const ex::MemHierResult r = ex::run_memhier();
  EXPECT_EQ(r.cheapest_raw, "Xeon Phi");
  EXPECT_EQ(r.cheapest_effective, "Arndale GPU");
}

TEST(MemHier, WorkedExampleValues) {
  const ex::MemHierResult r = ex::run_memhier();
  for (const ex::MemHierRow& row : r.rows) {
    if (row.platform == "Xeon Phi") {
      EXPECT_NEAR(row.effective_eps * 1e12, 1130.0, 20.0);
    }
    if (row.platform == "GTX Titan") {
      EXPECT_NEAR(row.effective_eps * 1e12, 782.0, 10.0);
    }
    if (row.platform == "Arndale GPU") {
      EXPECT_NEAR(row.effective_eps * 1e12, 671.0, 10.0);
    }
  }
}

TEST(MemHier, OrderingHoldsEverywhere) {
  for (const ex::MemHierRow& row : ex::run_memhier().rows)
    EXPECT_TRUE(row.level_ordering_holds) << row.platform;
}

TEST(MemHier, RandomAccessAlwaysExpensive) {
  // At least an order of magnitude per access vs per streamed byte.
  for (const ex::MemHierRow& row : ex::run_memhier().rows) {
    if (!row.eps_rand) continue;
    EXPECT_GT(row.rand_to_mem_ratio, 10.0) << row.platform;
  }
}

// ---- §V-D power bounding ----------------------------------------------------

TEST(PowerBound, PaperScenario) {
  // Exact 140 W bound: 0.26x Titan slowdown (the paper's 0.31x is the
  // delta_pi/8 = 143.5 W setting), 23 Arndale boards, ~3x speedup
  // (paper: ~2.8x).
  const ex::PowerBoundResult r = ex::run_powerbound();
  EXPECT_NEAR(r.comparison.big_slowdown, 0.26, 0.03);
  EXPECT_EQ(r.comparison.small_count, 23);
  EXPECT_NEAR(r.comparison.speedup, 2.8, 0.5);
  // Bounded speedup beats the unbounded Fig. 1 best case (~1.6x).
  EXPECT_GT(r.comparison.speedup, r.unbounded_speedup);
  EXPECT_NEAR(r.unbounded_speedup, 1.6, 0.4);
}

TEST(PowerBound, SweepMonotoneInBound) {
  const auto sweep = ex::run_powerbound_sweep(
      ex::PowerBoundOptions{}, {140.0, 180.0, 220.0, 260.0});
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    // A looser bound throttles the big block less...
    EXPECT_GE(sweep[i].comparison.big_slowdown,
              sweep[i - 1].comparison.big_slowdown);
    // ...and admits at least as many small blocks.
    EXPECT_GE(sweep[i].comparison.small_count,
              sweep[i - 1].comparison.small_count);
  }
}

}  // namespace
