// The sharded TCP front end: shard-count clamping, SO_REUSEPORT vs.
// deterministic handoff placement, per-shard metrics and stats
// rendering, cross-shard cache correctness (identical bodies from
// every partition, refit invalidating all of them), and the two
// lifecycle bugfix regressions — the open() fd leak and the drain
// grace being held hostage by a long poll interval.

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/server.hpp"
#include "serve/tcp.hpp"
#include "serve_tcp_testlib.hpp"
#include "sim/clock.hpp"

namespace {

using namespace archline::serve;
using serve_tcp_testlib::TcpTransport;
using serve_tcp_testlib::connect_to;
using serve_tcp_testlib::read_lines;
using serve_tcp_testlib::send_all;
using serve_tcp_testlib::wait_for_eof;

const char* kPredict =
    R"({"type":"predict","platform":"GTX Titan","flops":1e9,"intensity":4})";

ServerOptions small_options() {
  ServerOptions o;
  o.threads = 2;
  o.queue_capacity = 256;
  o.cache_capacity = 256;
  o.cache_shards = 4;
  return o;
}

/// Open fds in this process (raw /proc/self/fd entry count; the
/// directory-iteration overhead is identical across calls, so deltas
/// are exact).
int open_fd_count() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (!dir) return -1;
  int n = 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n;
}

/// Eight synthetic roofline observations for "GTX Titan" — enough for
/// min_resolve_observations, generated from a hard roofline (peak
/// `peak_flops`, 10 GB/s, 60 W) so the refit solver converges and
/// publishes a generation that differs wildly from the platform
/// defaults. Vary the peak across calls to make successive refits
/// publish distinguishable generations.
std::string observe_line(double peak_flops = 2e9) {
  std::ostringstream out;
  out << R"({"type":"observe","platform":"GTX Titan","observations":[)";
  for (int i = 0; i < 8; ++i) {
    const double intensity = 0.25 * static_cast<double>(1 << i);
    const double flops = 1e8;
    const double bytes = flops / intensity;
    const double seconds = std::max(flops / peak_flops, bytes / 1e10);
    const double joules = 60.0 * seconds;
    if (i) out << ',';
    out << R"({"flops":)" << flops << R"(,"bytes":)" << bytes
        << R"(,"seconds":)" << seconds << R"(,"joules":)" << joules << '}';
  }
  out << "]}";
  return out.str();
}

// ---- Shard count resolution ----------------------------------------------

TEST(ServeTcpShard, ShardCountClampsToBoundsAndMaxConnections) {
  Server server(small_options());
  {
    TcpOptions tcp;
    tcp.port = 0;
    tcp.shards = 0;  // below the floor
    TcpListener listener(server, tcp);
    std::string error;
    ASSERT_TRUE(listener.open(&error)) << error;
    EXPECT_EQ(listener.shard_count(), 1);
  }
  {
    TcpOptions tcp;
    tcp.port = 0;
    tcp.shards = 1000;  // above kMaxShards
    TcpListener listener(server, tcp);
    std::string error;
    ASSERT_TRUE(listener.open(&error)) << error;
    EXPECT_EQ(listener.shard_count(), TcpListener::kMaxShards);
  }
  {
    TcpOptions tcp;
    tcp.port = 0;
    tcp.shards = 8;
    tcp.max_connections = 2;  // a shard with zero slots is useless
    TcpListener listener(server, tcp);
    std::string error;
    ASSERT_TRUE(listener.open(&error)) << error;
    EXPECT_EQ(listener.shard_count(), 2);
  }
}

// ---- Bugfix regression: open() leaked fds on failure paths ---------------

TEST(ServeTcpShard, FailedOpenDoesNotLeakFds) {
  Server server(small_options());
  TcpOptions tcp;
  tcp.bind_address = "not an address";
  TcpListener listener(server, tcp);
  std::string error;
  ASSERT_FALSE(listener.open(&error));
  EXPECT_NE(error.find("invalid bind address"), std::string::npos) << error;
  // Pre-fix: every failed open left its ::socket() fd behind (the
  // inet_pton error path returned without closing), so 64 retries leak
  // 64 fds. Post-fix the count is flat.
  const int before = open_fd_count();
  ASSERT_GT(before, 0);
  for (int i = 0; i < 64; ++i) EXPECT_FALSE(listener.open(&error));
  EXPECT_EQ(open_fd_count(), before);
}

TEST(ServeTcpShard, OpenRetriesAfterBindFailureWithoutLeaking) {
  Server server(small_options());
  // Occupy an ephemeral port...
  TcpOptions holder_opts;
  holder_opts.port = 0;
  auto holder = std::make_unique<TcpListener>(server, holder_opts);
  std::string error;
  ASSERT_TRUE(holder->open(&error)) << error;
  const std::uint16_t port = holder->port();

  // ...so a second listener's bind fails (EADDRINUSE), repeatedly and
  // without leaking. Pre-fix, the repeated-open path also leaked the
  // PREVIOUS listen fd: `listen_fd_ = ::socket(...)` overwrote it
  // unclosed.
  TcpOptions clash;
  clash.port = port;
  TcpListener retry(server, clash);
  ASSERT_FALSE(retry.open(&error));
  const int before = open_fd_count();
  for (int i = 0; i < 64; ++i) EXPECT_FALSE(retry.open(&error));
  EXPECT_EQ(open_fd_count(), before);

  // Releasing the port makes the SAME listener object openable — the
  // retry contract the leak was breaking.
  holder.reset();
  ASSERT_TRUE(retry.open(&error)) << error;
  EXPECT_EQ(retry.port(), port);
}

// ---- Placement: REUSEPORT spread and deterministic handoff ---------------

TEST(ServeTcpShard, ReuseportShardsServeConnectionsAndAggregateStats) {
  TcpOptions tcp;
  tcp.shards = 4;
  TcpTransport transport(small_options(), tcp);

  std::vector<int> fds;
  for (int i = 0; i < 32; ++i) {
    const int fd = connect_to(transport.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(send_all(fd, std::string(kPredict) + "\n"));
    const auto lines = read_lines(fd, 1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_TRUE(Json::parse(lines[0]).bool_or("ok", false)) << lines[0];
    fds.push_back(fd);
  }

  // Kernel hashing decides the spread, so only the sums are asserted:
  // every accept and request landed on exactly one shard's counters.
  const Metrics::Snapshot snap = transport.server().metrics().snapshot();
  EXPECT_EQ(snap.transport_shards, 4u);
  std::uint64_t accepted = 0;
  std::uint64_t requests = 0;
  for (std::size_t i = 0; i < snap.transport_shards; ++i) {
    accepted += snap.shards[i].accepted;
    requests += snap.shards[i].requests;
  }
  EXPECT_EQ(accepted, 32u);
  EXPECT_EQ(requests, 32u);
  EXPECT_EQ(snap.connections_accepted, 32u);

  // The stats endpoint renders the per-shard breakdown.
  ASSERT_TRUE(send_all(fds[0], "{\"type\":\"stats\"}\n"));
  const auto stats = read_lines(fds[0], 1);
  ASSERT_EQ(stats.size(), 1u);
  const Json body = Json::parse(stats[0]);
  const Json* conns = body.find("connections");
  ASSERT_NE(conns, nullptr);
  const Json* shards = conns->find("shards");
  ASSERT_NE(shards, nullptr) << stats[0];
  EXPECT_EQ(shards->as_array().size(), 4u);

  for (const int fd : fds) ::close(fd);
}

TEST(ServeTcpShard, HandoffModePlacesConnectionsRoundRobin) {
  TcpOptions tcp;
  tcp.shards = 2;
  tcp.use_reuseport = false;  // deterministic accept-order placement
  TcpTransport transport(small_options(), tcp);

  // Serial connects, each confirmed served before the next, so accept
  // order is the connect order: conn 0 -> shard 0, conn 1 -> shard 1.
  int fds[2];
  for (int i = 0; i < 2; ++i) {
    fds[i] = connect_to(transport.port());
    ASSERT_GE(fds[i], 0);
    ASSERT_TRUE(send_all(fds[i], std::string(kPredict) + "\n"));
    ASSERT_EQ(read_lines(fds[i], 1).size(), 1u);
  }
  const Metrics::Snapshot snap = transport.server().metrics().snapshot();
  EXPECT_EQ(snap.transport_shards, 2u);
  EXPECT_EQ(snap.shards[0].accepted, 1u);
  EXPECT_EQ(snap.shards[1].accepted, 1u);
  EXPECT_EQ(snap.shards[0].requests, 1u);
  EXPECT_EQ(snap.shards[1].requests, 1u);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---- Cross-shard cache correctness ---------------------------------------

TEST(ServeTcpShard, PartitionsAgreeAcrossShardsAndRefitInvalidatesAll) {
  TcpOptions tcp;
  tcp.shards = 2;
  tcp.use_reuseport = false;  // pin conn 0 -> shard 0, conn 1 -> shard 1
  TcpTransport transport(small_options(), tcp);

  int fds[2];
  std::string before[2];
  for (int i = 0; i < 2; ++i) {
    fds[i] = connect_to(transport.port());
    ASSERT_GE(fds[i], 0);
    ASSERT_TRUE(send_all(fds[i], std::string(kPredict) + "\n"));
    const auto lines = read_lines(fds[i], 1);
    ASSERT_EQ(lines.size(), 1u);
    before[i] = lines[0];
  }
  // Same cacheable request through two different shard partitions:
  // byte-identical bodies.
  EXPECT_EQ(before[0], before[1]);

  // Second round is served from each shard's partition, inline.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(send_all(fds[i], std::string(kPredict) + "\n"));
    const auto lines = read_lines(fds[i], 1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], before[i]);
  }
  const ShardedLruCache::Stats warm = transport.server().cache_stats();
  EXPECT_GE(warm.hits, 2u) << "partition hits did not register";
  const Metrics::Snapshot snap = transport.server().metrics().snapshot();
  EXPECT_GE(snap.shards[0].cached_inline, 1u);
  EXPECT_GE(snap.shards[1].cached_inline, 1u);

  // Publish a refit through shard 0. Generation-scoped entries in BOTH
  // partitions must go stale — shard 1 never saw the refit.
  ASSERT_TRUE(send_all(fds[0], observe_line() + "\n"));
  auto lines = read_lines(fds[0], 1);
  ASSERT_EQ(lines.size(), 1u);
  ASSERT_TRUE(Json::parse(lines[0]).bool_or("ok", false)) << lines[0];
  ASSERT_TRUE(
      send_all(fds[0], R"({"type":"refit","platform":"GTX Titan"})" "\n"));
  lines = read_lines(fds[0], 1);
  ASSERT_EQ(lines.size(), 1u);
  ASSERT_TRUE(Json::parse(lines[0]).bool_or("ok", false)) << lines[0];

  std::string after[2];
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(send_all(fds[i], std::string(kPredict) + "\n"));
    const auto replies = read_lines(fds[i], 1);
    ASSERT_EQ(replies.size(), 1u);
    after[i] = replies[0];
  }
  EXPECT_EQ(after[0], after[1]);
  EXPECT_NE(after[0], before[0])
      << "a shard partition served a pre-refit generation";
  const ShardedLruCache::Stats stats = transport.server().cache_stats();
  EXPECT_GE(stats.stale, 2u)
      << "refit did not invalidate the entry in every partition";

  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeTcpShard, ChurnedRefitsNeverServeAStaleGeneration) {
  TcpOptions tcp;
  tcp.shards = 4;
  tcp.use_reuseport = false;  // pin conn i -> shard i
  TcpTransport transport(small_options(), tcp);

  constexpr int kShards = 4;
  const char* kBatch =
      R"({"type":"predict_batch","platform":"GTX Titan","elements":)"
      R"([{"flops":1e9,"intensity":4},{"flops":2e9,"intensity":0.5}]})";
  const char* kPolicy =
      R"({"type":"policy_advise","platform":"GTX Titan",)"
      R"("objective":"min_edp","flops":1e12,"intensity":8})";

  // Serial connects, each confirmed served before the next, so accept
  // order pins conn i to shard i. The warm predict also seeds every
  // partition with the pre-refit generation.
  int fds[kShards];
  std::string prev_predict;
  for (int i = 0; i < kShards; ++i) {
    fds[i] = connect_to(transport.port());
    ASSERT_GE(fds[i], 0);
    ASSERT_TRUE(send_all(fds[i], std::string(kPredict) + "\n"));
    const auto lines = read_lines(fds[i], 1);
    ASSERT_EQ(lines.size(), 1u);
    prev_predict = lines[0];
  }

  const ShardedLruCache::Stats start = transport.server().cache_stats();
  constexpr int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    // Publish a new generation through a rotating shard. Every other
    // shard only learns about it through generation-scoped
    // invalidation — none of them saw the refit request.
    const int publisher = round % kShards;
    const double peak = 2e9 * std::pow(4.0, round + 1);
    ASSERT_TRUE(send_all(fds[publisher], observe_line(peak) + "\n"));
    auto lines = read_lines(fds[publisher], 1);
    ASSERT_EQ(lines.size(), 1u);
    ASSERT_TRUE(Json::parse(lines[0]).bool_or("ok", false)) << lines[0];
    ASSERT_TRUE(send_all(fds[publisher],
                         R"({"type":"refit","platform":"GTX Titan"})" "\n"));
    lines = read_lines(fds[publisher], 1);
    ASSERT_EQ(lines.size(), 1u);
    ASSERT_TRUE(Json::parse(lines[0]).bool_or("ok", false)) << lines[0];

    // Two passes over every shard and every cacheable endpoint: the
    // first pass may compute-and-insert, the second must come from the
    // partition's cached copy. All partitions must agree byte-for-byte
    // and the consensus must move whenever a refit lands.
    for (const char* request : {kPredict, kBatch, kPolicy}) {
      std::string bodies[2][kShards];
      for (int pass = 0; pass < 2; ++pass) {
        for (int i = 0; i < kShards; ++i) {
          ASSERT_TRUE(send_all(fds[i], std::string(request) + "\n"));
          const auto replies = read_lines(fds[i], 1);
          ASSERT_EQ(replies.size(), 1u);
          bodies[pass][i] = replies[0];
        }
      }
      for (int i = 0; i < kShards; ++i) {
        EXPECT_EQ(bodies[0][i], bodies[0][0])
            << "partitions disagree in round " << round << ": " << request;
        EXPECT_EQ(bodies[1][i], bodies[0][i])
            << "cached copy diverged in round " << round << ": " << request;
      }
      if (request == kPredict) {
        EXPECT_NE(bodies[0][0], prev_predict)
            << "round " << round << " served a pre-refit generation";
        prev_predict = bodies[0][0];
      }
    }
  }

  // Each refit must have killed at least the cached predict entry
  // (stale is counted on next access), and the second passes must have
  // actually been partition hits.
  const ShardedLruCache::Stats end = transport.server().cache_stats();
  EXPECT_GE(end.stale - start.stale, static_cast<std::size_t>(kRounds));
  EXPECT_GT(end.hits, start.hits);

  for (const int fd : fds) ::close(fd);
}

// ---- Bugfix regression: drain grace vs. poll interval --------------------

/// SocketOps whose write side is permanently full — the stalled peer
/// from the loop's point of view. Reads and accepts are real.
class StuckSendOps final : public SocketOps {
 public:
  ssize_t send(int, const char*, std::size_t) noexcept override {
    errno = EAGAIN;
    return -1;
  }
  ssize_t sendv(int, const struct iovec*, int) noexcept override {
    errno = EAGAIN;
    return -1;
  }
};

/// Server + listener + loop thread with by-hand stop control, for the
/// shutdown-timing tests (the TcpTransport fixture hides the join).
struct ManualTransport {
  explicit ManualTransport(TcpOptions tcp) : server(small_options()) {
    server.start();
    tcp.port = 0;
    listener = std::make_unique<TcpListener>(server, tcp);
    std::string error;
    opened = listener->open(&error);
    EXPECT_TRUE(opened) << error;
    if (opened)
      loop = std::thread([this] {
        listener->run(stop);
        done.store(true, std::memory_order_release);
      });
  }

  ~ManualTransport() {
    stop.store(true, std::memory_order_release);
    if (loop.joinable()) loop.join();
    server.shutdown();
  }

  Server server;
  std::unique_ptr<TcpListener> listener;
  std::atomic<bool> stop{false};
  std::atomic<bool> done{false};
  std::thread loop;
  bool opened = false;
};

TEST(ServeTcpShard, DrainGraceHonoredDespiteLongPollInterval) {
  StuckSendOps ops;
  TcpOptions tcp;
  tcp.poll_interval_ms = 5000;  // much longer than the grace
  tcp.drain_grace_ms = 300;
  tcp.socket_ops = &ops;
  ManualTransport t(tcp);
  ASSERT_TRUE(t.opened);

  // One request whose reply can never flush: the connection is exactly
  // the "peer stopped reading" shutdown hostage.
  const int fd = connect_to(t.listener->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, std::string(kPredict) + "\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  const auto t0 = std::chrono::steady_clock::now();
  t.stop.store(true, std::memory_order_release);
  // Wake the loop out of its 5 s epoll_wait so it notices the stop;
  // from that point the grace clock runs.
  const int waker = connect_to(t.listener->port());
  while (!t.done.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(4))
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);

  // Pre-fix: the grace check only ran when epoll_wait returned, so the
  // stalled peer held shutdown for the full 5 s poll interval. Post-fix
  // the epoll timeout is clamped to the remaining grace: ~300 ms.
  EXPECT_TRUE(t.done.load(std::memory_order_acquire))
      << "loop still draining after 4 s";
  EXPECT_LT(elapsed.count(), 2000) << "shutdown outlived the drain grace";
  EXPECT_GE(elapsed.count(), 250) << "force-close fired before the grace";
  if (waker >= 0) ::close(waker);
  ::close(fd);
}

TEST(ServeTcpShard, DrainGraceDeadlineIsExactUnderSimClock) {
  archline::sim::SimClock clock;
  StuckSendOps ops;
  TcpOptions tcp;
  tcp.poll_interval_ms = 5;  // fast real-time wakes; time is simulated
  tcp.drain_grace_ms = 1000;
  tcp.clock = &clock;
  tcp.socket_ops = &ops;
  ManualTransport t(tcp);
  ASSERT_TRUE(t.opened);

  const int fd = connect_to(t.listener->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, std::string(kPredict) + "\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  t.stop.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // Sim time is frozen at the stop instant: zero grace has elapsed, so
  // the stalled connection must still be draining.
  EXPECT_FALSE(t.done.load(std::memory_order_acquire));

  // Exactly AT the grace boundary the contract is "keep draining" (the
  // check is strictly greater-than)...
  clock.advance_ms(1000);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_FALSE(t.done.load(std::memory_order_acquire))
      << "force-close fired AT the boundary; the deadline is exclusive";

  // ...and one millisecond past it, the force-close must fire.
  clock.advance_ms(1);
  const auto t0 = std::chrono::steady_clock::now();
  while (!t.done.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(2))
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(t.done.load(std::memory_order_acquire));
  EXPECT_TRUE(wait_for_eof(fd));
  ::close(fd);
}

}  // namespace
