// Tests for stats::Rng (PCG32) — determinism, range, distribution moments.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace {

using archline::stats::Rng;

TEST(Rng, SameSeedSameStream) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, DifferentStreamsDiverge) {
  Rng a(7, 1);
  Rng b(7, 2);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(1234);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.uniform();
  EXPECT_NEAR(archline::stats::mean(xs), 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(rng.below(7), 7u);
}

TEST(Rng, BelowZeroAndOneAreZero) {
  Rng rng(17);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(5);
  std::array<int, 5> counts{};
  for (int i = 0; i < 5000; ++i) ++counts[rng.below(5)];
  for (const int c : counts) EXPECT_GT(c, 800);  // fair-ish
}

TEST(Rng, NormalMoments) {
  Rng rng(2024);
  std::vector<double> xs(50000);
  for (double& x : xs) x = rng.normal();
  EXPECT_NEAR(archline::stats::mean(xs), 0.0, 0.02);
  EXPECT_NEAR(archline::stats::stddev(xs), 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(2025);
  std::vector<double> xs(50000);
  for (double& x : xs) x = rng.normal(10.0, 2.0);
  EXPECT_NEAR(archline::stats::mean(xs), 10.0, 0.05);
  EXPECT_NEAR(archline::stats::stddev(xs), 2.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, LognormalMedianNearExpMu) {
  Rng rng(31);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.lognormal(1.0, 0.7);
  EXPECT_NEAR(archline::stats::median(xs), std::exp(1.0), 0.08);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(77);
  std::vector<double> xs(50000);
  for (double& x : xs) x = rng.exponential(4.0);
  EXPECT_NEAR(archline::stats::mean(xs), 0.25, 0.01);
  for (const double x : xs) EXPECT_GE(x, 0.0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(555);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (parent() == child()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == 0xFFFFFFFFu);
  Rng rng(1);
  (void)rng();
}

TEST(Splitmix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(archline::stats::splitmix64(s1), archline::stats::splitmix64(s2));
}

}  // namespace
