// Parameterized property tests: model invariants that must hold for every
// Table I platform across the full intensity range.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/analysis.hpp"
#include "core/roofline.hpp"
#include "platforms/platform_db.hpp"

namespace {

namespace co = archline::core;
namespace pl = archline::platforms;

class PlatformProperty : public ::testing::TestWithParam<std::string> {
 protected:
  [[nodiscard]] co::MachineParams machine() const {
    return pl::platform(GetParam()).machine();
  }
  [[nodiscard]] static std::vector<double> grid() {
    return co::intensity_grid(1.0 / 64.0, 1024.0, 3);
  }
};

TEST_P(PlatformProperty, TimeDominatesEveryLowerBound) {
  const co::MachineParams m = machine();
  for (const double intensity : grid()) {
    const co::Workload w = co::Workload::from_intensity(1e12, intensity);
    const double t = co::time(m, w);
    EXPECT_GE(t, w.flops * m.tau_flop * (1 - 1e-12));
    EXPECT_GE(t, w.bytes * m.tau_mem * (1 - 1e-12));
    EXPECT_GE(t, (w.flops * m.eps_flop + w.bytes * m.eps_mem) / m.delta_pi *
                     (1 - 1e-12));
  }
}

TEST_P(PlatformProperty, ClosedFormPowerEqualsEnergyOverTime) {
  const co::MachineParams m = machine();
  for (const double intensity : grid()) {
    const co::Workload w = co::Workload::from_intensity(1e12, intensity);
    const double direct = co::avg_power(m, w);
    const double closed = co::avg_power_closed_form(m, intensity);
    EXPECT_NEAR(direct, closed, 1e-6 * closed)
        << GetParam() << " at I=" << intensity;
  }
}

TEST_P(PlatformProperty, PowerNeverExceedsCap) {
  const co::MachineParams m = machine();
  for (const double intensity : grid()) {
    EXPECT_LE(co::avg_power_closed_form(m, intensity),
              (m.pi1 + m.delta_pi) * (1 + 1e-12));
  }
}

TEST_P(PlatformProperty, PowerNeverBelowConstant) {
  const co::MachineParams m = machine();
  for (const double intensity : grid())
    EXPECT_GE(co::avg_power_closed_form(m, intensity), m.pi1);
}

TEST_P(PlatformProperty, PerformanceMonotoneNondecreasingInIntensity) {
  const co::MachineParams m = machine();
  double prev = 0.0;
  for (const double intensity : grid()) {
    const double perf = co::performance(m, intensity);
    EXPECT_GE(perf, prev * (1 - 1e-12)) << GetParam();
    prev = perf;
  }
}

TEST_P(PlatformProperty, EfficiencyMonotoneNondecreasingInIntensity) {
  const co::MachineParams m = machine();
  double prev = 0.0;
  for (const double intensity : grid()) {
    const double eff = co::energy_efficiency(m, intensity);
    EXPECT_GE(eff, prev * (1 - 1e-12)) << GetParam();
    prev = eff;
  }
}

TEST_P(PlatformProperty, CappedNeverFasterThanUncapped) {
  const co::MachineParams m = machine();
  const co::MachineParams u = m.without_cap();
  for (const double intensity : grid()) {
    EXPECT_LE(co::performance(m, intensity),
              co::performance(u, intensity) * (1 + 1e-12));
  }
}

TEST_P(PlatformProperty, HugeCapConvergesToUncappedModel) {
  co::MachineParams m = machine();
  m.delta_pi = 1e12;
  const co::MachineParams u = m.without_cap();
  for (const double intensity : grid()) {
    EXPECT_NEAR(co::performance(m, intensity), co::performance(u, intensity),
                1e-9 * co::performance(u, intensity));
    EXPECT_NEAR(co::energy_efficiency(m, intensity),
                co::energy_efficiency(u, intensity),
                1e-9 * co::energy_efficiency(u, intensity));
  }
}

TEST_P(PlatformProperty, EnergyScalesLinearlyWithWork) {
  const co::MachineParams m = machine();
  for (const double intensity : {0.25, 4.0, 64.0}) {
    const co::Workload w1 = co::Workload::from_intensity(1e10, intensity);
    const co::Workload w2 = co::Workload::from_intensity(3e10, intensity);
    EXPECT_NEAR(co::energy(m, w2), 3.0 * co::energy(m, w1),
                1e-9 * co::energy(m, w2));
  }
}

TEST_P(PlatformProperty, EfficiencyBoundedByPeak) {
  const co::MachineParams m = machine();
  const double peak = co::peak_flops_per_joule(m);
  for (const double intensity : grid())
    EXPECT_LE(co::energy_efficiency(m, intensity), peak * (1 + 1e-12));
}

TEST_P(PlatformProperty, PeakEfficiencyReachedAsymptotically) {
  // At I -> inf the cap can still throttle flops (delta_pi < pi_flop on
  // e.g. the NUC GPU), so the asymptote carries a throttle factor on the
  // constant-power term: 1 / (eps_flop + pi1 * tau_flop * cf).
  const co::MachineParams m = machine();
  const double cf = std::max(1.0, m.pi_flop() / m.delta_pi);
  const double limit = 1.0 / (m.eps_flop + m.pi1 * m.tau_flop * cf);
  EXPECT_NEAR(co::energy_efficiency(m, 1e9), limit, 1e-6 * limit);
  // The uncapped annotation value (Fig. 5 headline) is an upper bound.
  EXPECT_LE(limit, co::peak_flops_per_joule(m) * (1 + 1e-12));
}

TEST_P(PlatformProperty, RegimeConsistentWithClosedFormPieces) {
  const co::MachineParams m = machine();
  for (const double intensity : grid()) {
    const co::Regime r = co::regime_at(m, intensity);
    const double power = co::avg_power_closed_form(m, intensity);
    if (r == co::Regime::PowerCap)
      EXPECT_NEAR(power, m.pi1 + m.delta_pi, 1e-9 * (m.pi1 + m.delta_pi))
          << GetParam() << " I=" << intensity;
    else
      EXPECT_LE(power, (m.pi1 + m.delta_pi) * (1 + 1e-12));
  }
}

TEST_P(PlatformProperty, TimeBalanceSeparatesRegimesWhenPowerSufficient) {
  co::MachineParams m = machine();
  m.delta_pi = 10.0 * (m.pi_flop() + m.pi_mem());
  EXPECT_EQ(co::regime_at(m, m.time_balance() * 0.5), co::Regime::Memory);
  EXPECT_EQ(co::regime_at(m, m.time_balance() * 2.0), co::Regime::Compute);
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, PlatformProperty,
    ::testing::ValuesIn(pl::platform_names()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

}  // namespace
