// Tests for cache-level benchmark sizing.

#include <gtest/gtest.h>

#include <stdexcept>

#include "microbench/cache_bench.hpp"
#include "platforms/platform_db.hpp"
#include "sim/factory.hpp"

namespace {

namespace mb = archline::microbench;
namespace co = archline::core;
namespace si = archline::sim;
namespace pl = archline::platforms;

si::SimMachine phi() { return si::make_machine(pl::platform("Xeon Phi")); }

TEST(WorkingSet, HalfOfCacheCapacity) {
  const si::SimMachine m = phi();
  EXPECT_DOUBLE_EQ(mb::working_set_for_level(m, co::MemLevel::L1),
                   0.5 * m.config().l1->capacity_bytes);
  EXPECT_DOUBLE_EQ(mb::working_set_for_level(m, co::MemLevel::L2),
                   0.5 * m.config().l2->capacity_bytes);
}

TEST(WorkingSet, DramUsesLargeFootprint) {
  EXPECT_GT(mb::working_set_for_level(phi(), co::MemLevel::DRAM),
            1e6);
}

TEST(WorkingSet, MissingLevelThrows) {
  const si::SimMachine m = si::make_machine(pl::platform("NUC GPU"));
  EXPECT_THROW((void)mb::working_set_for_level(m, co::MemLevel::L1),
               std::invalid_argument);
}

TEST(CacheSweep, OneKernelPerIntensity) {
  const si::SimMachine m = phi();
  const std::vector<double> grid = {0.5, 2.0, 8.0};
  const auto kernels = mb::cache_sweep(m, co::MemLevel::L1, grid,
                                       co::Precision::Single, 0.1);
  ASSERT_EQ(kernels.size(), 3u);
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_NEAR(kernels[i].intensity(), grid[i], 1e-9);
}

TEST(CacheSweep, FootprintFitsInLevel) {
  const si::SimMachine m = phi();
  const auto kernels =
      mb::cache_sweep(m, co::MemLevel::L1, {0.25, 4.0, 64.0},
                      co::Precision::Single, 0.1);
  for (const auto& k : kernels)
    EXPECT_LE(k.working_set_bytes, m.config().l1->capacity_bytes);
}

TEST(CacheSweep, KernelsTargetRequestedLevel) {
  const si::SimMachine m = phi();
  for (const auto& k : mb::cache_sweep(m, co::MemLevel::L2, {1.0},
                                       co::Precision::Single, 0.1))
    EXPECT_EQ(k.level, co::MemLevel::L2);
}

TEST(CacheSweep, DurationSizingRoughlyHolds) {
  const si::SimMachine m = phi();
  const double target = 0.2;
  const auto kernels = mb::cache_sweep(m, co::MemLevel::L2, {0.5, 8.0},
                                       co::Precision::Single, target);
  for (const auto& k : kernels) {
    const double t = m.ideal_time(k);
    EXPECT_NEAR(t, target, 0.05 * target) << k.label;
  }
}

TEST(BandwidthKernel, LivesInMemoryRegime) {
  const si::SimMachine m = phi();
  const auto k = mb::bandwidth_kernel(m, co::MemLevel::DRAM, 0.1);
  EXPECT_LT(k.intensity(), 0.01);
  archline::stats::Rng rng(1);
  EXPECT_EQ(m.run(k, rng).regime, co::Regime::Memory);
}

TEST(BandwidthKernel, MeasuresLevelBandwidth) {
  const si::SimMachine m = phi();
  const auto k = mb::bandwidth_kernel(m, co::MemLevel::L1, 0.1);
  const double t = m.ideal_time(k);
  const double bw = k.bytes / t;
  EXPECT_NEAR(bw, 1.0 / m.config().l1->tau_byte, 0.05 * bw);
}

}  // namespace
