// Tests for the phase-mix application model.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/phase_mix.hpp"
#include "core/roofline.hpp"
#include "platforms/platform_db.hpp"

namespace {

namespace co = archline::core;
namespace pl = archline::platforms;

co::MachineParams titan() { return pl::platform("GTX Titan").machine(); }

std::vector<co::Phase> app() {
  return {co::make_phase("spmv", 1e11, 0.35),
          co::make_phase("fft", 4e11, 2.8),
          co::make_phase("gemm", 8e11, 32.0)};
}

TEST(MakePhase, FieldsAndValidation) {
  const co::Phase p = co::make_phase("x", 10.0, 2.0);
  EXPECT_EQ(p.label, "x");
  EXPECT_DOUBLE_EQ(p.work.flops, 10.0);
  EXPECT_DOUBLE_EQ(p.work.intensity(), 2.0);
  EXPECT_THROW((void)co::make_phase("bad", 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)co::make_phase("bad", 1.0, 0.0),
               std::invalid_argument);
}

TEST(MixTime, SumsPhaseTimes) {
  const auto phases = app();
  const co::MachineParams m = titan();
  double expected = 0.0;
  for (const co::Phase& p : phases) expected += co::time(m, p.work);
  EXPECT_DOUBLE_EQ(co::mix_time(m, phases), expected);
}

TEST(MixEnergy, SumsPhaseEnergies) {
  const auto phases = app();
  const co::MachineParams m = titan();
  double expected = 0.0;
  for (const co::Phase& p : phases) expected += co::energy(m, p.work);
  EXPECT_DOUBLE_EQ(co::mix_energy(m, phases), expected);
}

TEST(MixPower, BetweenPhaseExtremes) {
  const auto phases = app();
  const co::MachineParams m = titan();
  double lo = 1e300;
  double hi = 0.0;
  for (const co::Phase& p : phases) {
    const double watts = co::avg_power(m, p.work);
    lo = std::min(lo, watts);
    hi = std::max(hi, watts);
  }
  const double mix = co::mix_avg_power(m, phases);
  EXPECT_GE(mix, lo);
  EXPECT_LE(mix, hi);
}

TEST(MixIntensity, FlopsOverBytes) {
  const std::vector<co::Phase> phases = {co::make_phase("a", 8.0, 2.0),
                                         co::make_phase("b", 4.0, 1.0)};
  // bytes: 4 + 4 = 8; flops 12 -> I = 1.5.
  EXPECT_DOUBLE_EQ(co::mix_intensity(phases), 1.5);
}

TEST(MixIntensity, AggregateIntensityUnderestimatesMixTime) {
  // Running phases separately forfeits overlap a single hypothetical
  // kernel at the aggregate intensity would enjoy: the mix can never be
  // faster than that ideal kernel.
  const auto phases = app();
  const co::MachineParams m = titan();
  double flops = 0.0;
  double bytes = 0.0;
  for (const co::Phase& p : phases) {
    flops += p.work.flops;
    bytes += p.work.bytes;
  }
  const double ideal =
      co::time(m, co::Workload{.flops = flops, .bytes = bytes});
  EXPECT_GE(co::mix_time(m, phases), ideal * (1 - 1e-12));
}

TEST(MixBreakdown, SharesSumToOne) {
  const auto b = co::mix_breakdown(titan(), app());
  ASSERT_EQ(b.size(), 3u);
  double t_share = 0.0;
  double e_share = 0.0;
  for (const co::PhaseBreakdown& pb : b) {
    t_share += pb.time_share;
    e_share += pb.energy_share;
  }
  EXPECT_NEAR(t_share, 1.0, 1e-12);
  EXPECT_NEAR(e_share, 1.0, 1e-12);
}

TEST(MixBreakdown, LabelsPreserved) {
  const auto b = co::mix_breakdown(titan(), app());
  EXPECT_EQ(b[0].label, "spmv");
  EXPECT_EQ(b[2].label, "gemm");
}

TEST(Mix, BestMachineCanDifferFromPhaseWinners) {
  // A bandwidth-heavy mix on the Arndale GPU vs the Titan: the Titan wins
  // every phase in flop/s, but the energy winner flips with mix balance.
  const co::MachineParams big = titan();
  const co::MachineParams small = pl::platform("Arndale GPU").machine();
  const std::vector<co::Phase> bw_heavy = {
      co::make_phase("stream", 9e10, 0.125),
      co::make_phase("fft", 1e10, 2.8)};
  const std::vector<co::Phase> compute_heavy = {
      co::make_phase("stream", 1e10, 0.125),
      co::make_phase("nbody", 9e11, 128.0)};
  const double small_bw_eff =
      (9e10 + 1e10) / co::mix_energy(small, bw_heavy);
  const double big_bw_eff = (9e10 + 1e10) / co::mix_energy(big, bw_heavy);
  const double small_cb_eff =
      (1e10 + 9e11) / co::mix_energy(small, compute_heavy);
  const double big_cb_eff =
      (1e10 + 9e11) / co::mix_energy(big, compute_heavy);
  EXPECT_GT(small_bw_eff, big_bw_eff);   // Arndale wins the bw-heavy mix
  EXPECT_LT(small_cb_eff, big_cb_eff);   // Titan wins the compute mix
}

TEST(MixIntensity, ZeroBytesThrows) {
  const std::vector<co::Phase> phases;
  EXPECT_THROW((void)co::mix_intensity(phases), std::invalid_argument);
}

}  // namespace
