// Property tests for the energy roofline model (paper §III, eqs. 1-7):
// instead of spot-checking Table I numbers (test_roofline.cpp does
// that), these sample hundreds of randomized machines and workloads
// from a seeded Rng and assert the model's structural invariants —
// monotonicity of T in W and Q, the E >= pi1*T floor, the average
// power window [pi1, pi1 + delta_pi], and the B- <= B <= B+ balance
// ordering. A violation means an eq. (1)-(7) transcription bug no
// fixed example would catch.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/machine_params.hpp"
#include "core/roofline.hpp"
#include "stats/rng.hpp"

namespace {

using namespace archline::core;
using archline::stats::Rng;

/// A random but physically plausible machine: costs log-uniform across
/// several decades (Table I's platforms span ~2 decades per column),
/// pi1 in [0.1, 300] W, and delta_pi either uncapped (1 in 4) or drawn
/// so the cap actually binds for some intensities.
MachineParams random_machine(Rng& rng) {
  MachineParams m;
  m.tau_flop = std::exp(rng.uniform(std::log(1e-12), std::log(1e-8)));
  m.eps_flop = std::exp(rng.uniform(std::log(1e-12), std::log(1e-8)));
  m.tau_mem = std::exp(rng.uniform(std::log(1e-11), std::log(1e-7)));
  m.eps_mem = std::exp(rng.uniform(std::log(1e-11), std::log(1e-7)));
  m.pi1 = rng.uniform(0.1, 300.0);
  if (rng.below(4) == 0)
    m.delta_pi = kUncapped;
  else
    m.delta_pi =
        rng.uniform(0.05, 1.5) * (m.pi_flop() + m.pi_mem());
  m.validate("random_machine");
  return m;
}

Workload random_workload(Rng& rng) {
  return Workload{
      .flops = std::exp(rng.uniform(std::log(1e3), std::log(1e15))),
      .bytes = std::exp(rng.uniform(std::log(1e3), std::log(1e15)))};
}

constexpr int kMachines = 200;
constexpr int kWorkloadsPerMachine = 20;

TEST(ModelProperties, TimeIsMaxOfThreeTermsAndMonotone) {
  // Eq. (3): T = max(W tau_f, Q tau_m, (W eps_f + Q eps_m)/delta_pi).
  // Verify against a direct evaluation, then check monotonicity: more
  // work (either axis) can never take less time.
  Rng rng(2024);
  for (int i = 0; i < kMachines; ++i) {
    const MachineParams m = random_machine(rng);
    for (int j = 0; j < kWorkloadsPerMachine; ++j) {
      const Workload w = random_workload(rng);
      const double t = time(m, w);
      double expected = std::max(w.flops * m.tau_flop, w.bytes * m.tau_mem);
      if (!m.uncapped())
        expected = std::max(
            expected,
            (w.flops * m.eps_flop + w.bytes * m.eps_mem) / m.delta_pi);
      EXPECT_DOUBLE_EQ(t, expected);

      // Monotone non-decreasing in W and in Q, and strictly positive.
      EXPECT_GT(t, 0.0);
      const double grow = 1.0 + rng.uniform(0.0, 4.0);
      EXPECT_GE(time(m, Workload{w.flops * grow, w.bytes}), t);
      EXPECT_GE(time(m, Workload{w.flops, w.bytes * grow}), t);
      EXPECT_GE(time(m, Workload{w.flops * grow, w.bytes * grow}), t);
    }
  }
}

TEST(ModelProperties, EnergyDominatesConstantPowerFloor) {
  // Eq. (1): E = W eps_f + Q eps_m + pi1 T, so E >= pi1 * T always,
  // with equality only in the (excluded) zero-work limit.
  Rng rng(2025);
  for (int i = 0; i < kMachines; ++i) {
    const MachineParams m = random_machine(rng);
    for (int j = 0; j < kWorkloadsPerMachine; ++j) {
      const Workload w = random_workload(rng);
      const double t = time(m, w);
      const double e = energy(m, w);
      EXPECT_GT(e, m.pi1 * t);
      // And the flop/byte part is exactly the difference.
      EXPECT_NEAR(e - m.pi1 * t,
                  w.flops * m.eps_flop + w.bytes * m.eps_mem,
                  1e-9 * e);
    }
  }
}

TEST(ModelProperties, AveragePowerStaysInsideTheCapWindow) {
  // P = E/T must satisfy pi1 <= P <= pi1 + delta_pi: the machine never
  // draws less than its constant power nor more than its cap allows.
  // (Uncapped machines only have the lower bound.)
  Rng rng(2026);
  for (int i = 0; i < kMachines; ++i) {
    const MachineParams m = random_machine(rng);
    for (int j = 0; j < kWorkloadsPerMachine; ++j) {
      const Workload w = random_workload(rng);
      const double p = avg_power(m, w);
      const double slack = 1e-9 * m.max_power();
      EXPECT_GE(p, m.pi1 - slack);
      EXPECT_LE(p, m.max_power() + slack);
      if (!m.uncapped()) {
        EXPECT_LE(p, m.pi1 + m.delta_pi + slack);
      }
    }
  }
}

TEST(ModelProperties, ClosedFormPowerMatchesDefinition) {
  // Eq. (7) is an algebraic rearrangement of E/T; the two evaluations
  // must agree at every intensity, including near B- and B+.
  Rng rng(2027);
  for (int i = 0; i < kMachines; ++i) {
    const MachineParams m = random_machine(rng);
    for (int j = 0; j < kWorkloadsPerMachine; ++j) {
      const double intensity = std::exp(rng.uniform(std::log(1.0 / 1024.0),
                                                    std::log(1024.0)));
      const Workload w = Workload::from_intensity(1e9, intensity);
      const double direct = avg_power(m, w);
      const double closed = avg_power_closed_form(m, intensity);
      EXPECT_NEAR(direct, closed, 1e-9 * direct)
          << "at intensity " << intensity;
    }
  }
}

TEST(ModelProperties, BalancePointsAreOrdered) {
  // Eqs. (5)-(6): B_tau- <= B_tau <= B_tau+ for every machine, with
  // equality exactly when the cap is power-sufficient.
  Rng rng(2028);
  for (int i = 0; i < 5 * kMachines; ++i) {
    const MachineParams m = random_machine(rng);
    const double lo = m.balance_lo();
    const double mid = m.time_balance();
    const double hi = m.balance_hi();
    EXPECT_GE(lo, 0.0);  // 0 is legal: delta_pi <= pi_mem leaves no
                         // flop headroom and the window floor vanishes
    EXPECT_LE(lo, mid * (1 + 1e-12));
    EXPECT_LE(mid, hi * (1 + 1e-12));
    if (m.power_sufficient()) {
      EXPECT_DOUBLE_EQ(lo, mid);
      EXPECT_DOUBLE_EQ(mid, hi);
    } else {
      // An insufficient cap strictly widens the window.
      EXPECT_LT(lo, mid);
      EXPECT_GT(hi, mid);
    }
  }
}

TEST(ModelProperties, RegimeMatchesDominantTerm) {
  // The reported regime must be the argmax of eq. (3)'s three terms,
  // and the throttled regime can only appear under an insufficient cap.
  Rng rng(2029);
  for (int i = 0; i < kMachines; ++i) {
    const MachineParams m = random_machine(rng);
    for (int j = 0; j < kWorkloadsPerMachine; ++j) {
      const Workload w = random_workload(rng);
      const double t = time(m, w);
      switch (regime(m, w)) {
        case Regime::Compute:
          EXPECT_DOUBLE_EQ(t, w.flops * m.tau_flop);
          break;
        case Regime::Memory:
          EXPECT_DOUBLE_EQ(t, w.bytes * m.tau_mem);
          break;
        case Regime::PowerCap:
          ASSERT_FALSE(m.uncapped());
          EXPECT_DOUBLE_EQ(
              t, (w.flops * m.eps_flop + w.bytes * m.eps_mem) / m.delta_pi);
          EXPECT_FALSE(m.power_sufficient());
          break;
      }
    }
  }
}

TEST(ModelProperties, TimePerFlopAgreesWithWorkloadForm) {
  // Eq. (4) is eq. (3) divided by W at fixed intensity; the two
  // parameterizations must agree.
  Rng rng(2030);
  for (int i = 0; i < kMachines; ++i) {
    const MachineParams m = random_machine(rng);
    for (int j = 0; j < kWorkloadsPerMachine; ++j) {
      const double intensity = std::exp(rng.uniform(std::log(1.0 / 1024.0),
                                                    std::log(1024.0)));
      const double flops = std::exp(rng.uniform(std::log(1e6),
                                                std::log(1e12)));
      const Workload w = Workload::from_intensity(flops, intensity);
      EXPECT_NEAR(time(m, w) / flops, time_per_flop(m, intensity),
                  1e-9 * time_per_flop(m, intensity));
      EXPECT_NEAR(energy(m, w) / flops, energy_per_flop(m, intensity),
                  1e-9 * energy_per_flop(m, intensity));
    }
  }
}

}  // namespace
