// Tests for the droop capping extension (core::DroopModel) and its
// 1-parameter fit — the paper's §V-C "different model of capping".

#include <gtest/gtest.h>

#include "core/droop_model.hpp"
#include "fit/droop_fit.hpp"
#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"
#include "sim/factory.hpp"

namespace {

namespace co = archline::core;
namespace ft = archline::fit;
namespace mb = archline::microbench;
namespace pl = archline::platforms;
namespace si = archline::sim;

co::MachineParams arndale() { return pl::platform("Arndale GPU").machine(); }

TEST(DroopModel, ZeroEtaReducesToCappedModel) {
  const co::DroopModel d{.machine = arndale(), .eta = 0.0};
  for (const double intensity : {0.25, 1.0, 4.0, 32.0, 256.0}) {
    const co::Workload w = co::Workload::from_intensity(1e10, intensity);
    EXPECT_DOUBLE_EQ(d.time(w), co::time(d.machine, w)) << intensity;
    EXPECT_DOUBLE_EQ(d.energy(w), co::energy(d.machine, w)) << intensity;
    EXPECT_DOUBLE_EQ(d.avg_power(w), co::avg_power(d.machine, w));
  }
}

TEST(DroopModel, DroopOnlyActsInCapRegime) {
  const co::MachineParams m = arndale();
  const co::DroopModel d{.machine = m, .eta = 0.3};
  // Memory-bound (I = 0.25 < B_tau- ~ 0.68) and deep compute-bound points
  // are untouched; mid intensities (cap regime) slow down.
  const co::Workload mem = co::Workload::from_intensity(1e10, 0.25);
  EXPECT_DOUBLE_EQ(d.time(mem), co::time(m, mem));
  const co::Workload mid = co::Workload::from_intensity(1e10, 2.0);
  EXPECT_GT(d.time(mid), co::time(m, mid));
}

TEST(DroopModel, TimeIncreasesWithEta) {
  const co::Workload mid = co::Workload::from_intensity(1e10, 2.0);
  double prev = 0.0;
  for (const double eta : {0.0, 0.1, 0.2, 0.4}) {
    const co::DroopModel d{.machine = arndale(), .eta = eta};
    const double t = d.time(mid);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(DroopModel, PowerStaysAtCapWhileThrottled) {
  // Droop stretches the run but the governor still burns delta_pi, so
  // average power in the cap regime stays pi1 + delta_pi.
  const co::MachineParams m = arndale();
  const co::DroopModel d{.machine = m, .eta = 0.25};
  const co::Workload mid = co::Workload::from_intensity(1e10, 2.0);
  EXPECT_NEAR(d.avg_power(mid), m.pi1 + m.delta_pi,
              1e-9 * (m.pi1 + m.delta_pi));
}

TEST(DroopModel, MatchesSimulatorPhysicsExactly) {
  // The simulator's droop and the extended model implement the same
  // physics: predictions must agree to machine precision (noise off).
  const pl::PlatformSpec& spec = pl::platform("Arndale GPU");
  si::NonidealityProfile profile = si::default_nonidealities(spec);
  profile.noise.time_rel_sd = 0.0;
  profile.noise.power_rel_sd = 0.0;
  const si::SimMachine machine = si::make_machine(spec, profile);
  const co::DroopModel d{.machine = spec.machine(),
                         .eta = profile.noise.cap_droop_eta};
  for (const double intensity : {0.25, 1.0, 2.0, 4.0, 8.0, 64.0}) {
    const co::Workload w = co::Workload::from_intensity(1e10, intensity);
    si::KernelDesc k;
    k.label = "probe";
    k.flops = w.flops;
    k.bytes = w.bytes;
    EXPECT_NEAR(machine.ideal_time(k), d.time(w), 1e-12 * d.time(w))
        << intensity;
    EXPECT_NEAR(machine.ideal_energy(k), d.energy(w),
                1e-9 * d.energy(w))
        << intensity;
  }
}

TEST(DroopModel, PerformanceHelper) {
  const co::DroopModel d{.machine = arndale(), .eta = 0.1};
  const co::Workload w = co::Workload::from_intensity(1e12, 2.0);
  EXPECT_NEAR(d.performance(2.0), w.flops / d.time(w),
              1e-6 * d.performance(2.0));
}

mb::SuiteData arndale_suite() {
  const si::SimMachine machine =
      si::make_machine(pl::platform("Arndale GPU"));
  archline::stats::Rng rng(314);
  mb::SuiteOptions opt;
  opt.repeats = 3;
  opt.target_seconds = 0.1;
  opt.include_double = false;
  opt.include_caches = false;
  opt.include_random = false;
  return mb::run_suite(machine, opt, rng);
}

TEST(FitDroopEta, RecoversSimulatedEta) {
  // Ground truth: Arndale GPU simulated with eta = 0.12 (§V-C profile).
  const mb::SuiteData data = arndale_suite();
  const double eta = ft::fit_droop_eta(arndale(), data.dram_sp);
  EXPECT_NEAR(eta, 0.12, 0.05);
}

TEST(FitDroopEta, ExtensionReducesResiduals) {
  const mb::SuiteData data = arndale_suite();
  const co::MachineParams m = arndale();
  const double eta = ft::fit_droop_eta(m, data.dram_sp);
  const double base = ft::droop_sum_squared_residuals(
      co::DroopModel{.machine = m, .eta = 0.0}, data.dram_sp);
  const double extended = ft::droop_sum_squared_residuals(
      co::DroopModel{.machine = m, .eta = eta}, data.dram_sp);
  // The droop term removes the systematic mid-intensity error; what
  // remains is the measurement-noise floor.
  EXPECT_GT(eta, 0.05);
  EXPECT_LT(extended, 0.7 * base);
}

TEST(FitDroopEta, ZeroOnDroopFreePlatform) {
  // GTX Titan's ground truth has no droop: the fit must not invent one.
  const si::SimMachine machine =
      si::make_machine(pl::platform("GTX Titan"));
  archline::stats::Rng rng(315);
  mb::SuiteOptions opt;
  opt.repeats = 2;
  opt.target_seconds = 0.1;
  opt.include_double = false;
  opt.include_caches = false;
  opt.include_random = false;
  const mb::SuiteData data = mb::run_suite(machine, opt, rng);
  const double eta = ft::fit_droop_eta(
      pl::platform("GTX Titan").machine(), data.dram_sp);
  EXPECT_LT(eta, 0.03);
}

TEST(FitDroopEta, BadArgumentsThrow) {
  const std::vector<mb::Observation> empty;
  EXPECT_THROW((void)ft::fit_droop_eta(arndale(), empty),
               std::invalid_argument);
  const mb::SuiteData data = arndale_suite();
  EXPECT_THROW((void)ft::fit_droop_eta(arndale(), data.dram_sp, 0.0),
               std::invalid_argument);
}

}  // namespace
