// Quickstart: the archline API in one page.
//
// Build a machine from the paper's Table I, ask the model about an
// algorithm, and run one simulated measurement through the PowerMon 2
// stack.

#include <cstdio>

#include "core/analysis.hpp"
#include "core/roofline.hpp"
#include "core/scenarios.hpp"
#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"
#include "sim/factory.hpp"

int main() {
  using namespace archline;
  namespace rp = report;

  // 1. A machine: the GTX Titan as fitted in the paper's Table I.
  const platforms::PlatformSpec& spec = platforms::platform("GTX Titan");
  const core::MachineParams titan = spec.machine();
  std::printf("machine: %s (%s)\n", spec.name.c_str(),
              spec.processor.c_str());
  std::printf("  sustained: %s, %s | pi1 %s + cap %s\n",
              rp::si_format(titan.peak_flops(), "flop/s", 3).c_str(),
              rp::si_format(titan.peak_bandwidth(), "B/s", 3).c_str(),
              rp::si_format(titan.pi1, "W", 3).c_str(),
              rp::si_format(titan.delta_pi, "W", 3).c_str());

  // 2. An algorithm: a large single-precision FFT is roughly 2 flop:Byte.
  const core::Workload fft = core::Workload::from_intensity(1e12, 2.0);
  std::printf("\nalgorithm: 1 Tflop at intensity %s flop:B\n",
              rp::sig_format(fft.intensity(), 2).c_str());
  std::printf("  predicted time   %s\n",
              rp::si_format(core::time(titan, fft), "s", 3).c_str());
  std::printf("  predicted energy %s\n",
              rp::si_format(core::energy(titan, fft), "J", 3).c_str());
  std::printf("  predicted power  %s (%s regime)\n",
              rp::si_format(core::avg_power(titan, fft), "W", 3).c_str(),
              core::regime_name(core::regime(titan, fft)));

  // 3. A what-if: throttle the card to half its usable power. At the
  // FFT's intensity the run is bandwidth-bound and barely notices; a
  // compute-bound kernel (I = 16) pays the full throttle.
  const core::MachineParams throttled = core::with_cap_scaled(titan, 2.0);
  std::printf("\nunder a delta_pi/2 power cap:\n");
  for (const double intensity : {2.0, 16.0})
    std::printf("  I=%-4s performance %s -> %s\n",
                rp::sig_format(intensity, 3).c_str(),
                rp::si_format(core::performance(titan, intensity),
                              "flop/s", 3)
                    .c_str(),
                rp::si_format(core::performance(throttled, intensity),
                              "flop/s", 3)
                    .c_str());

  // 4. A simulated measurement through the PowerMon 2 stack.
  const sim::SimMachine machine = sim::make_machine(spec);
  stats::Rng rng(42);
  sim::KernelDesc kernel;
  kernel.label = "quickstart";
  kernel.flops = fft.flops;
  kernel.bytes = fft.bytes;
  const auto obs = microbench::measure_kernel(machine, kernel, 1, {}, rng);
  std::printf("\nsimulated measurement of the same kernel:\n");
  std::printf("  measured %s, %s, %s\n",
              rp::si_format(obs[0].seconds, "s", 3).c_str(),
              rp::si_format(obs[0].joules, "J", 3).c_str(),
              rp::si_format(obs[0].watts, "W", 3).c_str());
  std::printf("\npeak efficiency: %s (Fig. 5 headline: 16 Gflop/J)\n",
              rp::si_format(core::peak_flops_per_joule(titan), "flop/J", 2)
                  .c_str());
  return 0;
}
