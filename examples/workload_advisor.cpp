// workload_advisor: which Table I building block should run my workload?
//
// Uses the named workload library (SpMV, FFT, DGEMM, Stencil, STREAM,
// GraphTraversal, NBody) and ranks all twelve platforms by performance,
// energy efficiency, or perf/W at the workload's representative
// intensity. Random-access workloads rank by the measured pointer-chase
// constants instead of the streaming model.
//
// Usage: workload_advisor [workload] [perf|energy|perfwatt]
//   no arguments: list workloads and show the energy ranking for each.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/workloads.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

namespace {

using namespace archline;
namespace rp = report;

std::vector<std::pair<std::string, core::MachineParams>> machines() {
  std::vector<std::pair<std::string, core::MachineParams>> out;
  for (const platforms::PlatformSpec& spec : platforms::all_platforms())
    out.emplace_back(spec.name, spec.machine());
  return out;
}

void rank_random_access() {
  // Graph workloads live on the pointer-chase constants (paper §IV-f and
  // the §VI Xeon Phi observation).
  struct Row {
    std::string name;
    double acc_per_s = 0.0;
    double acc_per_j = 0.0;
  };
  std::vector<Row> rows;
  for (const platforms::PlatformSpec& spec : platforms::all_platforms()) {
    if (!spec.has_random_access()) continue;
    const core::RandomAccessMachine m = spec.random_machine();
    rows.push_back(Row{.name = spec.name,
                       .acc_per_s = m.access_rate(),
                       .acc_per_j = m.accesses_per_joule()});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) {
              return a.acc_per_j > b.acc_per_j;
            });
  rp::Table t({"Platform", "accesses/s", "accesses/J (incl pi1)"});
  for (const Row& r : rows)
    t.add_row({r.name, rp::si_format(r.acc_per_s, "acc/s", 3),
               rp::si_format(r.acc_per_j, "acc/J", 3)});
  std::printf("%s\n", t.to_text().c_str());
}

void show_ranking(const core::WorkloadProfile& w, core::RankBy by) {
  std::printf("workload %s (%s), representative intensity %s flop:B\n",
              w.name.c_str(), w.description.c_str(),
              rp::sig_format(w.representative_intensity(), 3).c_str());
  if (w.pattern == core::AccessPattern::Random) {
    rank_random_access();
    return;
  }
  const auto ranked = core::rank_machines(w, machines(), by);
  rp::Table t({"Platform", "flop/s", "flop/J", "W", "regime"});
  for (const core::WorkloadRanking& r : ranked)
    t.add_row({r.machine_name, rp::si_format(r.performance, "", 3),
               rp::si_format(r.efficiency, "", 3),
               rp::sig_format(r.power, 3),
               core::regime_name(r.regime)});
  std::printf("%s\n", t.to_text().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  core::RankBy by = core::RankBy::Efficiency;
  if (argc > 2) {
    const std::string metric = argv[2];
    if (metric == "perf") by = core::RankBy::Performance;
    else if (metric == "perfwatt") by = core::RankBy::PerformancePerWatt;
    else if (metric != "energy") {
      std::printf("unknown metric '%s' (perf|energy|perfwatt)\n",
                  metric.c_str());
      return 1;
    }
  }

  if (argc > 1) {
    const std::string name = argv[1];
    for (const core::WorkloadProfile& w : core::workload_library()) {
      if (w.name == name) {
        show_ranking(w, by);
        return 0;
      }
    }
    std::printf("unknown workload '%s'. available:\n", name.c_str());
    for (const std::string& n : core::workload_names())
      std::printf("  %s — %s\n", n.c_str(),
                  core::workload(n).description.c_str());
    return 1;
  }

  for (const core::WorkloadProfile& w : core::workload_library()) {
    show_ranking(w, by);
    std::printf("\n");
  }
  return 0;
}
