// native_roofline: characterize THIS host with the real (native) kernels —
// the intensity ladder, streaming triad, and pointer chase actually
// execute; nothing is simulated. Produces a miniature time-roofline of
// the machine you run it on.
//
// Usage: native_roofline [elements]   (default 1<<20)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "microbench/native_kernels.hpp"
#include "report/si.hpp"
#include "report/table.hpp"
#include "stats/rng.hpp"

int main(int argc, char** argv) {
  using namespace archline;
  namespace rp = report;

  const std::size_t elements =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : (1u << 20);
  if (elements < 16) {
    std::printf("need at least 16 elements\n");
    return 1;
  }

  std::printf("native host characterization (%zu elements per kernel)\n\n",
              elements);

  // Intensity ladder: flops per element from 2 to 256.
  rp::Table ladder({"flops/elem", "intensity", "flop/s", "B/s", "seconds"});
  const std::vector<int> rungs = {2, 4, 8, 16, 32, 64, 128, 256};
  const auto sweep = microbench::native_intensity_sweep(
      elements, rungs, core::Precision::Single);
  for (const microbench::NativeResult& r : sweep)
    ladder.add_row({rp::sig_format(r.flops / (r.bytes / 4.0), 3),
                    rp::sig_format(r.intensity(), 3),
                    rp::si_format(r.flops_per_second(), "flop/s", 3),
                    rp::si_format(r.bytes_per_second(), "B/s", 3),
                    rp::si_format(r.seconds, "s", 3)});
  std::printf("intensity ladder (single precision):\n%s\n",
              ladder.to_text().c_str());

  // Streaming bandwidth.
  const microbench::NativeResult triad =
      microbench::run_stream_triad(elements, core::Precision::Double, 4);
  std::printf("stream triad (double): %s\n",
              rp::si_format(triad.bytes_per_second(), "B/s", 3).c_str());

  // Pointer chase: cache-resident vs memory-sized working sets.
  stats::Rng rng(11);
  rp::Table chase({"working set", "accesses/s", "ns/access"});
  for (const std::size_t slots :
       {std::size_t{1} << 12, std::size_t{1} << 16, std::size_t{1} << 21}) {
    const microbench::NativeResult r =
        microbench::run_pointer_chase(slots, 4 * slots, rng);
    chase.add_row(
        {rp::si_format(static_cast<double>(slots * sizeof(std::size_t)),
                       "B", 3),
         rp::si_format(r.accesses_per_second(), "acc/s", 3),
         rp::sig_format(1e9 * r.seconds / r.accesses, 3)});
  }
  std::printf("pointer chase (dependent loads):\n%s\n",
              chase.to_text().c_str());

  const double peak_flops = sweep.back().flops_per_second();
  const double peak_bw = triad.bytes_per_second();
  std::printf("host time balance B_tau ~ %s flop:B\n",
              rp::sig_format(peak_flops / peak_bw, 2).c_str());
  std::printf("(attach an energy meter and fit_from_csv to get the full "
              "energy roofline.)\n");
  return 0;
}
