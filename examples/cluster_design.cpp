// cluster_design: given a node power budget and a target workload
// intensity, which Table I building block gives the best aggregate
// performance and energy efficiency? The paper's Fig. 1 / §V-D design
// question generalized to all twelve blocks.
//
// Usage: cluster_design [budget-watts] [intensity]
//   defaults: 287 (a GTX Titan node) and 0.25 (SpMV-like)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/roofline.hpp"
#include "core/scenarios.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace archline;
  namespace rp = report;

  const double budget = argc > 1 ? std::atof(argv[1]) : 287.0;
  const double intensity = argc > 2 ? std::atof(argv[2]) : 0.25;
  if (!(budget > 0.0) || !(intensity > 0.0)) {
    std::printf("usage: cluster_design [budget-watts>0] [intensity>0]\n");
    return 1;
  }

  std::printf("node budget %s, workload intensity %s flop:B\n\n",
              rp::si_format(budget, "W", 3).c_str(),
              rp::sig_format(intensity, 3).c_str());

  struct Row {
    std::string name;
    int count = 0;
    double perf = 0.0;
    double eff = 0.0;
    double power = 0.0;
  };
  std::vector<Row> rows;
  for (const platforms::PlatformSpec& spec : platforms::all_platforms()) {
    const core::MachineParams block = spec.machine();
    const int n = core::blocks_to_match_power(block, budget);
    if (n < 1) continue;
    // Largest count that still fits the budget (match-power rounds up).
    const int fit_n = std::max(
        1, static_cast<int>(budget / (block.pi1 + block.delta_pi)));
    const core::MachineParams agg = core::aggregate(block, fit_n);
    rows.push_back(Row{.name = spec.name,
                       .count = fit_n,
                       .perf = core::performance(agg, intensity),
                       .eff = core::energy_efficiency(agg, intensity),
                       .power = core::avg_power_closed_form(agg, intensity)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.perf > b.perf; });

  rp::Table t({"Building block", "count", "agg flop/s", "agg flop/J",
               "power at I"});
  for (const Row& r : rows)
    t.add_row({r.name, rp::sig_format(r.count, 4),
               rp::si_format(r.perf, "", 3), rp::si_format(r.eff, "", 3),
               rp::si_format(r.power, "W", 3)});
  std::printf("%s\n", t.to_text().c_str());

  if (!rows.empty())
    std::printf("best block at this intensity: %s (x%d)\n"
                "caveat: interconnect and integration costs are ignored, "
                "as in the paper's best-case analysis.\n",
                rows.front().name.c_str(), rows.front().count);
  return 0;
}
