// power_capping: explore what a power cap does to one platform — the
// paper's §V-D "what-if" analysis as an interactive tool.
//
// Usage: power_capping [platform] [intensity]
//   defaults: "Xeon Phi" 2.0

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/analysis.hpp"
#include "core/scenarios.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace archline;
  namespace rp = report;

  std::string name = argc > 1 ? argv[1] : "Xeon Phi";
  const double intensity = argc > 2 ? std::atof(argv[2]) : 2.0;
  if (!platforms::has_platform(name)) {
    std::printf("unknown platform '%s'\n", name.c_str());
    return 1;
  }
  if (!(intensity > 0.0)) {
    std::printf("intensity must be positive\n");
    return 1;
  }

  const core::MachineParams m = platforms::platform(name).machine();
  const core::EfficiencySummary s = core::summarize_efficiency(m);

  std::printf("%s at intensity %s flop:B\n\n", name.c_str(),
              rp::sig_format(intensity, 3).c_str());
  std::printf("machine balance: B- %s <= B %s <= B+ %s flop:B\n",
              rp::sig_format(s.balance_lo, 3).c_str(),
              rp::sig_format(s.balance, 3).c_str(),
              rp::sig_format(s.balance_hi, 3).c_str());
  std::printf("constant power fraction pi1/(pi1+dpi): %s\n\n",
              rp::percent_format(s.constant_fraction).c_str());

  rp::Table t({"cap", "dpi W", "node W", "flop/s", "flop/J", "regime",
               "perf vs full", "flop rate", "mem rate"});
  const double full_perf = core::performance(m, intensity);
  for (const double k : {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0}) {
    const core::MachineParams capped = core::with_cap_scaled(m, k);
    const double perf = core::performance(capped, intensity);
    // The abstract's operational answer: by how much each engine must be
    // throttled to live under this cap.
    const core::ThrottleRequirement req =
        core::throttle_requirement(m, intensity, capped.delta_pi);
    t.add_row({"dpi/" + rp::sig_format(k, 3),
               rp::sig_format(capped.delta_pi, 3),
               rp::sig_format(core::avg_power_closed_form(capped, intensity),
                              3),
               rp::si_format(perf, "", 3),
               rp::si_format(core::energy_efficiency(capped, intensity), "",
                             3),
               core::regime_name(core::regime_at(capped, intensity)),
               rp::percent_format(perf / full_perf),
               rp::percent_format(req.flop_rate_fraction),
               rp::percent_format(req.mem_rate_fraction)});
  }
  std::printf("%s\n", t.to_text().c_str());

  std::printf("note: power shrinks by less than the cap divisor because "
              "pi1 = %s never scales (paper §V-D).\n",
              rp::si_format(m.pi1, "W", 3).c_str());
  return 0;
}
