// app_designer: model an application as a mix of phases and find the best
// building block for the WHOLE application — which can differ from the
// winner of any single phase.
//
// Usage:
//   app_designer                        # built-in demo app (CFD-like)
//   app_designer name:flops:intensity [name:flops:intensity ...]
// e.g.
//   app_designer halo:1e10:0.125 stencil:5e11:0.8 fft:2e11:2.8

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/phase_mix.hpp"
#include "core/roofline.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

namespace {

using namespace archline;
namespace rp = report;

std::vector<core::Phase> parse_phases(int argc, char** argv) {
  std::vector<core::Phase> phases;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t c1 = arg.find(':');
    const std::size_t c2 = c1 == std::string::npos
                               ? std::string::npos
                               : arg.find(':', c1 + 1);
    if (c2 == std::string::npos)
      throw std::invalid_argument("phase format: name:flops:intensity");
    phases.push_back(core::make_phase(
        arg.substr(0, c1), std::atof(arg.substr(c1 + 1, c2 - c1 - 1).c_str()),
        std::atof(arg.substr(c2 + 1).c_str())));
  }
  return phases;
}

std::vector<core::Phase> demo_app() {
  // A CFD-solver-shaped mix: bandwidth-heavy residual sweeps, a spectral
  // step, and a small dense solve.
  return {core::make_phase("residual-sweep", 3e11, 0.4),
          core::make_phase("spectral-step", 2e11, 2.8),
          core::make_phase("dense-solve", 1e11, 24.0)};
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<core::Phase> phases;
  try {
    phases = argc > 1 ? parse_phases(argc, argv) : demo_app();
  } catch (const std::exception& e) {
    std::printf("error: %s\n", e.what());
    return 1;
  }

  double total_flops = 0.0;
  for (const core::Phase& p : phases) total_flops += p.work.flops;
  std::printf("application: %zu phases, %s total, aggregate intensity %s "
              "flop:B\n\n",
              phases.size(),
              rp::si_format(total_flops, "flop", 3).c_str(),
              rp::sig_format(core::mix_intensity(phases), 3).c_str());

  struct Row {
    std::string name;
    double seconds = 0.0;
    double joules = 0.0;
    double watts = 0.0;
  };
  std::vector<Row> rows;
  for (const platforms::PlatformSpec& spec : platforms::all_platforms()) {
    const core::MachineParams m = spec.machine();
    rows.push_back(Row{.name = spec.name,
                       .seconds = core::mix_time(m, phases),
                       .joules = core::mix_energy(m, phases),
                       .watts = core::mix_avg_power(m, phases)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.joules < b.joules; });

  rp::Table t({"Platform", "time", "energy", "avg power", "flop/J"});
  for (const Row& r : rows)
    t.add_row({r.name, rp::si_format(r.seconds, "s", 3),
               rp::si_format(r.joules, "J", 3),
               rp::si_format(r.watts, "W", 3),
               rp::si_format(total_flops / r.joules, "flop/J", 3)});
  std::printf("ranked by total application energy:\n%s\n",
              t.to_text().c_str());

  // Breakdown on the energy winner.
  const core::MachineParams winner =
      platforms::platform(rows.front().name).machine();
  std::printf("phase breakdown on %s:\n", rows.front().name.c_str());
  rp::Table bt({"Phase", "time", "energy", "time share", "energy share",
                "regime"});
  for (const core::PhaseBreakdown& b :
       core::mix_breakdown(winner, phases)) {
    // Find the phase's regime on the winner for context.
    core::Regime regime = core::Regime::Compute;
    for (const core::Phase& p : phases)
      if (p.label == b.label) regime = core::regime(winner, p.work);
    bt.add_row({b.label, rp::si_format(b.seconds, "s", 3),
                rp::si_format(b.joules, "J", 3),
                rp::percent_format(b.time_share),
                rp::percent_format(b.energy_share),
                core::regime_name(regime)});
  }
  std::printf("%s\n", bt.to_text().c_str());
  return 0;
}
