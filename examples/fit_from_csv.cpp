// fit_from_csv: fit the capped energy-roofline model to your own
// measurements.
//
// Usage:
//   fit_from_csv measurements.csv [idle-watts]
//   fit_from_csv --demo            (writes demo.csv and fits it)
//
// CSV columns (header required): flops,bytes,seconds,joules
// Each row is one measured kernel run: total flops executed, bytes moved
// to/from memory, wall time, and total energy over the run.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/roofline.hpp"
#include "fit/model_fit.hpp"
#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"
#include "report/csv.hpp"
#include "report/si.hpp"
#include "sim/factory.hpp"

namespace {

using namespace archline;
namespace rp = report;

std::vector<microbench::Observation> load_observations(
    const std::string& path) {
  const auto rows = rp::read_csv_file(path);
  if (rows.size() < 2)
    throw std::runtime_error("CSV needs a header plus data rows");
  const auto& header = rows[0];
  if (header.size() < 4 || header[0] != "flops" || header[1] != "bytes" ||
      header[2] != "seconds" || header[3] != "joules")
    throw std::runtime_error(
        "expected header: flops,bytes,seconds,joules");
  std::vector<microbench::Observation> obs;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() < 4) continue;
    microbench::Observation o;
    o.kernel.label = "csv row " + std::to_string(i);
    o.kernel.flops = std::atof(row[0].c_str());
    o.kernel.bytes = std::atof(row[1].c_str());
    o.seconds = std::atof(row[2].c_str());
    o.joules = std::atof(row[3].c_str());
    if (!(o.seconds > 0.0) || !(o.joules > 0.0)) continue;
    o.watts = o.joules / o.seconds;
    obs.push_back(std::move(o));
  }
  return obs;
}

std::string write_demo_csv() {
  // Simulate a sweep on the Arndale GPU and dump it as the demo input.
  const sim::SimMachine machine =
      sim::make_machine(platforms::platform("Arndale GPU"));
  stats::Rng rng(7);
  microbench::SuiteOptions opt;
  opt.repeats = 2;
  opt.target_seconds = 0.2;
  opt.include_double = false;
  opt.include_caches = false;
  opt.include_random = false;
  const microbench::SuiteData data = microbench::run_suite(machine, opt,
                                                           rng);
  rp::CsvWriter csv({"flops", "bytes", "seconds", "joules"});
  for (const microbench::Observation& o : data.dram_sp)
    csv.add_row({rp::sig_format(o.kernel.flops, 9),
                 rp::sig_format(o.kernel.bytes, 9),
                 rp::sig_format(o.seconds, 9),
                 rp::sig_format(o.joules, 9)});
  const std::string path = "demo.csv";
  csv.write_file(path);
  std::printf("wrote %s (simulated Arndale GPU sweep; idle ~1.3 W)\n\n",
              path.c_str());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: fit_from_csv <measurements.csv> [idle-watts]\n"
                "       fit_from_csv --demo\n");
    return 1;
  }
  std::string path = argv[1];
  double idle = 0.0;
  if (path == "--demo") path = write_demo_csv();
  else if (argc > 2) idle = std::atof(argv[2]);

  try {
    const auto obs = load_observations(path);
    std::printf("loaded %zu observations from %s\n", obs.size(),
                path.c_str());

    fit::FitOptions opt;
    opt.idle_watts_hint = idle;
    for (const microbench::Observation& o : obs)
      opt.max_watts_hint = std::max(opt.max_watts_hint, o.watts);
    const fit::FitResult r = fit::fit_observations(obs, opt);

    const core::MachineParams& m = r.machine;
    std::printf("\nfitted capped model (R^2 of log-perf: %s):\n",
                rp::sig_format(r.r_squared_perf, 4).c_str());
    std::printf("  sustained flops      %s\n",
                rp::si_format(m.peak_flops(), "flop/s", 3).c_str());
    std::printf("  sustained bandwidth  %s\n",
                rp::si_format(m.peak_bandwidth(), "B/s", 3).c_str());
    std::printf("  eps_flop             %s\n",
                rp::si_format(m.eps_flop, "J/flop", 3).c_str());
    std::printf("  eps_mem              %s\n",
                rp::si_format(m.eps_mem, "J/B", 3).c_str());
    std::printf("  pi1                  %s\n",
                rp::si_format(m.pi1, "W", 3).c_str());
    std::printf("  delta_pi             %s\n",
                rp::si_format(m.delta_pi, "W", 3).c_str());
    std::printf("  time balance B_tau   %s flop:B\n",
                rp::sig_format(m.time_balance(), 3).c_str());
    std::printf("  peak efficiency      %s\n",
                rp::si_format(1.0 / (m.eps_flop + m.pi1 * m.tau_flop),
                              "flop/J", 3)
                    .c_str());
  } catch (const std::exception& err) {
    std::printf("error: %s\n", err.what());
    return 1;
  }
  return 0;
}
