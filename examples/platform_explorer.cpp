// platform_explorer: everything archline knows about one Table I
// platform, on one page — constants, balances, regime map, sensitivities,
// workload standings, and the what-if headlines.
//
// Usage: platform_explorer [platform]      (default "Xeon Phi")

#include <cstdio>
#include <string>

#include "core/analysis.hpp"
#include "core/params_io.hpp"
#include "core/scenarios.hpp"
#include "core/sensitivity.hpp"
#include "core/workloads.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace archline;
  namespace rp = report;

  const std::string name = argc > 1 ? argv[1] : "Xeon Phi";
  if (!platforms::has_platform(name)) {
    std::printf("unknown platform '%s'. available:\n", name.c_str());
    for (const std::string& n : platforms::platform_names())
      std::printf("  %s\n", n.c_str());
    return 1;
  }
  const platforms::PlatformSpec& spec = platforms::platform(name);
  const core::MachineParams m = spec.machine();
  const core::EfficiencySummary s = core::summarize_efficiency(m);

  std::printf("%s — %s (%d nm, %s)\n\n", spec.name.c_str(),
              spec.processor.c_str(), spec.process_nm,
              platforms::to_string(spec.device_class));

  std::printf("model constants:\n%s\n",
              core::to_text(m, spec.name).c_str());

  rp::Table t({"quantity", "value"});
  t.add_row({"sustained flops",
             rp::si_format(s.sustained_flops, "flop/s", 3) + " (" +
                 rp::percent_format(spec.sustained_flop_fraction()) +
                 " of peak)"});
  t.add_row({"sustained bandwidth",
             rp::si_format(s.sustained_bandwidth, "B/s", 3) + " (" +
                 rp::percent_format(spec.sustained_bandwidth_fraction()) +
                 ")"});
  t.add_row({"peak energy efficiency",
             rp::si_format(s.peak_flops_per_joule, "flop/J", 3)});
  t.add_row({"peak data efficiency",
             rp::si_format(s.peak_bytes_per_joule, "B/J", 3)});
  t.add_row({"effective stream energy",
             rp::si_format(core::effective_stream_energy_per_byte(m),
                           "J/B", 3) +
                 " (incl pi1 charge)"});
  t.add_row({"constant power fraction",
             rp::percent_format(s.constant_fraction)});
  t.add_row({"time balance B_tau",
             rp::sig_format(s.balance, 3) + " flop:B"});
  t.add_row({"cap window [B-, B+]",
             "[" + rp::sig_format(s.balance_lo, 3) + ", " +
                 rp::sig_format(s.balance_hi, 3) + "]"});
  t.add_row({"power shrink at dpi/8",
             rp::sig_format(core::power_reduction_factor(m, 8.0), 3) +
                 "x of the ideal 8x"});
  if (spec.has_random_access()) {
    const core::RandomAccessMachine rm = spec.random_machine();
    t.add_row({"random access",
               rp::si_format(rm.access_rate(), "acc/s", 3) + ", " +
                   rp::si_format(rm.effective_energy_per_access(),
                                 "J/acc", 3) +
                   " effective"});
  }
  std::printf("%s\n", t.to_text().c_str());

  // Sensitivity: what limits this platform per workload class.
  rp::Table st({"intensity", "regime", "perf limited by",
                "energy limited by"});
  for (const double intensity : {0.25, 2.0, 16.0, 128.0}) {
    const auto perf = core::sensitivity_profile(
        m, core::Metric::Performance, intensity);
    const auto eff = core::sensitivity_profile(
        m, core::Metric::EnergyEfficiency, intensity);
    st.add_row({rp::intensity_label(intensity),
                core::regime_name(core::regime_at(m, intensity)),
                core::to_string(perf.dominant()),
                core::to_string(eff.dominant())});
  }
  std::printf("what limits it (largest |elasticity|):\n%s\n",
              st.to_text().c_str());

  // Standing per workload archetype (rank among the 12 by flop/J).
  std::vector<std::pair<std::string, core::MachineParams>> machines;
  for (const platforms::PlatformSpec& p : platforms::all_platforms())
    machines.emplace_back(p.name, p.machine());
  rp::Table wt({"workload", "I rep", "flop/J rank", "flop/s rank"});
  for (const core::WorkloadProfile& w : core::workload_library()) {
    if (w.pattern == core::AccessPattern::Random) continue;
    const auto by_eff =
        core::rank_machines(w, machines, core::RankBy::Efficiency);
    const auto by_perf =
        core::rank_machines(w, machines, core::RankBy::Performance);
    const auto rank_of = [&](const auto& ranked) {
      for (std::size_t i = 0; i < ranked.size(); ++i)
        if (ranked[i].machine_name == name) return i + 1;
      return std::size_t{0};
    };
    wt.add_row({w.name,
                rp::sig_format(w.representative_intensity(), 2),
                rp::sig_format(rank_of(by_eff), 2) + " / 12",
                rp::sig_format(rank_of(by_perf), 2) + " / 12"});
  }
  std::printf("standing per workload archetype:\n%s\n",
              wt.to_text().c_str());
  return 0;
}
