// compare_blocks: head-to-head comparison of any two Table I platforms,
// in the style of the paper's Fig. 1 / §I-A demonstration.
//
// Usage: compare_blocks [big-platform] [small-platform]
//   defaults: "GTX Titan" "Arndale GPU"

#include <cstdio>
#include <string>

#include "experiments/exp_fig1.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace archline;
  namespace rp = report;

  experiments::Fig1Options opt;
  if (argc > 1) opt.big_platform = argv[1];
  if (argc > 2) opt.small_platform = argv[2];
  opt.with_measurements = false;

  if (!platforms::has_platform(opt.big_platform) ||
      !platforms::has_platform(opt.small_platform)) {
    std::printf("unknown platform. available:\n");
    for (const std::string& name : platforms::platform_names())
      std::printf("  %s\n", name.c_str());
    return 1;
  }

  const experiments::Fig1Result r = experiments::run_fig1(opt);

  std::printf("%s vs %s\n\n", r.big_name.c_str(), r.small_name.c_str());
  rp::Table t({"I (flop:B)", r.big_name + " flop/s",
               r.small_name + " flop/s", r.big_name + " flop/J",
               r.small_name + " flop/J", "agg flop/s", "agg/big"});
  for (std::size_t i = 0; i < r.big.size(); i += 2) {
    t.add_row({rp::intensity_label(r.big[i].intensity),
               rp::si_format(r.big[i].model_perf, "", 3),
               rp::si_format(r.small_[i].model_perf, "", 3),
               rp::si_format(r.big[i].model_efficiency, "", 3),
               rp::si_format(r.small_[i].model_efficiency, "", 3),
               rp::si_format(r.aggregate[i].model_perf, "", 3),
               rp::sig_format(r.aggregate[i].model_perf /
                                  r.big[i].model_perf,
                              2) +
                   "x"});
  }
  std::printf("%s\n", t.to_text().c_str());

  std::printf("power-matched aggregate: %d x %s\n", r.aggregate_count,
              r.small_name.c_str());
  if (r.efficiency_crossover > 0.0)
    std::printf("flop/J parity ends near I = %s flop:B\n",
                rp::sig_format(r.efficiency_crossover, 2).c_str());
  else
    std::printf("no flop/J crossover inside the sweep\n");
  std::printf("aggregate best case: %sx faster (bandwidth-bound), "
              "%sx at high intensity\n",
              rp::sig_format(r.aggregate_peak_speedup, 2).c_str(),
              rp::sig_format(r.aggregate_peak_ratio, 2).c_str());
  return 0;
}
