# Empty compiler generated dependencies file for app_designer.
# This may be replaced when dependencies are built.
