file(REMOVE_RECURSE
  "CMakeFiles/app_designer.dir/app_designer.cpp.o"
  "CMakeFiles/app_designer.dir/app_designer.cpp.o.d"
  "app_designer"
  "app_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
