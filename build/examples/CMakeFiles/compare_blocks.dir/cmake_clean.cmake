file(REMOVE_RECURSE
  "CMakeFiles/compare_blocks.dir/compare_blocks.cpp.o"
  "CMakeFiles/compare_blocks.dir/compare_blocks.cpp.o.d"
  "compare_blocks"
  "compare_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
