# Empty compiler generated dependencies file for compare_blocks.
# This may be replaced when dependencies are built.
