file(REMOVE_RECURSE
  "CMakeFiles/fit_from_csv.dir/fit_from_csv.cpp.o"
  "CMakeFiles/fit_from_csv.dir/fit_from_csv.cpp.o.d"
  "fit_from_csv"
  "fit_from_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fit_from_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
