# Empty compiler generated dependencies file for fit_from_csv.
# This may be replaced when dependencies are built.
