# Empty dependencies file for cluster_design.
# This may be replaced when dependencies are built.
