# Empty compiler generated dependencies file for workload_advisor.
# This may be replaced when dependencies are built.
