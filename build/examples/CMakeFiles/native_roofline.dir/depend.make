# Empty dependencies file for native_roofline.
# This may be replaced when dependencies are built.
