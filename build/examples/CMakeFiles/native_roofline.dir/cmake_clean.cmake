file(REMOVE_RECURSE
  "CMakeFiles/native_roofline.dir/native_roofline.cpp.o"
  "CMakeFiles/native_roofline.dir/native_roofline.cpp.o.d"
  "native_roofline"
  "native_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
