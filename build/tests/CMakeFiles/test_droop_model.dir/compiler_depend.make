# Empty compiler generated dependencies file for test_droop_model.
# This may be replaced when dependencies are built.
