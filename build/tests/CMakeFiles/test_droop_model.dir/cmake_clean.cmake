file(REMOVE_RECURSE
  "CMakeFiles/test_droop_model.dir/test_droop_model.cpp.o"
  "CMakeFiles/test_droop_model.dir/test_droop_model.cpp.o.d"
  "test_droop_model"
  "test_droop_model.pdb"
  "test_droop_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_droop_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
