# Empty dependencies file for test_intensity.
# This may be replaced when dependencies are built.
