# Empty compiler generated dependencies file for test_pointer_chase.
# This may be replaced when dependencies are built.
