file(REMOVE_RECURSE
  "CMakeFiles/test_pointer_chase.dir/test_pointer_chase.cpp.o"
  "CMakeFiles/test_pointer_chase.dir/test_pointer_chase.cpp.o.d"
  "test_pointer_chase"
  "test_pointer_chase.pdb"
  "test_pointer_chase[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pointer_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
