# Empty dependencies file for test_cache_roofline.
# This may be replaced when dependencies are built.
