file(REMOVE_RECURSE
  "CMakeFiles/test_cache_roofline.dir/test_cache_roofline.cpp.o"
  "CMakeFiles/test_cache_roofline.dir/test_cache_roofline.cpp.o.d"
  "test_cache_roofline"
  "test_cache_roofline.pdb"
  "test_cache_roofline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
