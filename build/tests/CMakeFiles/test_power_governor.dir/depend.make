# Empty dependencies file for test_power_governor.
# This may be replaced when dependencies are built.
