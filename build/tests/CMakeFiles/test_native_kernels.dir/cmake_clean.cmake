file(REMOVE_RECURSE
  "CMakeFiles/test_native_kernels.dir/test_native_kernels.cpp.o"
  "CMakeFiles/test_native_kernels.dir/test_native_kernels.cpp.o.d"
  "test_native_kernels"
  "test_native_kernels.pdb"
  "test_native_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_native_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
