# Empty compiler generated dependencies file for test_integrator.
# This may be replaced when dependencies are built.
