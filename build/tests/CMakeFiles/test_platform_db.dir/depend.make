# Empty dependencies file for test_platform_db.
# This may be replaced when dependencies are built.
