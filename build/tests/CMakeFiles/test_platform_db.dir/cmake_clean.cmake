file(REMOVE_RECURSE
  "CMakeFiles/test_platform_db.dir/test_platform_db.cpp.o"
  "CMakeFiles/test_platform_db.dir/test_platform_db.cpp.o.d"
  "test_platform_db"
  "test_platform_db.pdb"
  "test_platform_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
