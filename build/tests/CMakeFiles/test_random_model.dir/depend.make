# Empty dependencies file for test_random_model.
# This may be replaced when dependencies are built.
