file(REMOVE_RECURSE
  "CMakeFiles/test_random_model.dir/test_random_model.cpp.o"
  "CMakeFiles/test_random_model.dir/test_random_model.cpp.o.d"
  "test_random_model"
  "test_random_model.pdb"
  "test_random_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
