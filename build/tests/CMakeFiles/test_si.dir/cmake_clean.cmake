file(REMOVE_RECURSE
  "CMakeFiles/test_si.dir/test_si.cpp.o"
  "CMakeFiles/test_si.dir/test_si.cpp.o.d"
  "test_si"
  "test_si.pdb"
  "test_si[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_si.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
