file(REMOVE_RECURSE
  "CMakeFiles/test_machine_params.dir/test_machine_params.cpp.o"
  "CMakeFiles/test_machine_params.dir/test_machine_params.cpp.o.d"
  "test_machine_params"
  "test_machine_params.pdb"
  "test_machine_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
