# Empty compiler generated dependencies file for test_machine_params.
# This may be replaced when dependencies are built.
