file(REMOVE_RECURSE
  "CMakeFiles/test_suite_io.dir/test_suite_io.cpp.o"
  "CMakeFiles/test_suite_io.dir/test_suite_io.cpp.o.d"
  "test_suite_io"
  "test_suite_io.pdb"
  "test_suite_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
