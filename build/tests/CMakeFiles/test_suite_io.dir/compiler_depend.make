# Empty compiler generated dependencies file for test_suite_io.
# This may be replaced when dependencies are built.
