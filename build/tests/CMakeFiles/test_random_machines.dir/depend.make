# Empty dependencies file for test_random_machines.
# This may be replaced when dependencies are built.
