file(REMOVE_RECURSE
  "CMakeFiles/test_bootstrap_fit.dir/test_bootstrap_fit.cpp.o"
  "CMakeFiles/test_bootstrap_fit.dir/test_bootstrap_fit.cpp.o.d"
  "test_bootstrap_fit"
  "test_bootstrap_fit.pdb"
  "test_bootstrap_fit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bootstrap_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
