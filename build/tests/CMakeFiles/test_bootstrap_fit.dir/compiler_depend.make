# Empty compiler generated dependencies file for test_bootstrap_fit.
# This may be replaced when dependencies are built.
