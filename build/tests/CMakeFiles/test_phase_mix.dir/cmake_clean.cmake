file(REMOVE_RECURSE
  "CMakeFiles/test_phase_mix.dir/test_phase_mix.cpp.o"
  "CMakeFiles/test_phase_mix.dir/test_phase_mix.cpp.o.d"
  "test_phase_mix"
  "test_phase_mix.pdb"
  "test_phase_mix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
