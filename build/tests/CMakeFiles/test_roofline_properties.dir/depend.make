# Empty dependencies file for test_roofline_properties.
# This may be replaced when dependencies are built.
