file(REMOVE_RECURSE
  "CMakeFiles/test_roofline_properties.dir/test_roofline_properties.cpp.o"
  "CMakeFiles/test_roofline_properties.dir/test_roofline_properties.cpp.o.d"
  "test_roofline_properties"
  "test_roofline_properties.pdb"
  "test_roofline_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roofline_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
