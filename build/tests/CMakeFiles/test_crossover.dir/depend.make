# Empty dependencies file for test_crossover.
# This may be replaced when dependencies are built.
