file(REMOVE_RECURSE
  "CMakeFiles/test_crossover.dir/test_crossover.cpp.o"
  "CMakeFiles/test_crossover.dir/test_crossover.cpp.o.d"
  "test_crossover"
  "test_crossover.pdb"
  "test_crossover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
