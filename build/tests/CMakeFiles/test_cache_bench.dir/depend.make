# Empty dependencies file for test_cache_bench.
# This may be replaced when dependencies are built.
