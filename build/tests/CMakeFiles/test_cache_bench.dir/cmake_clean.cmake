file(REMOVE_RECURSE
  "CMakeFiles/test_cache_bench.dir/test_cache_bench.cpp.o"
  "CMakeFiles/test_cache_bench.dir/test_cache_bench.cpp.o.d"
  "test_cache_bench"
  "test_cache_bench.pdb"
  "test_cache_bench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
