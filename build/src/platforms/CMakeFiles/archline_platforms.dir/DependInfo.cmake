
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platforms/platform_db.cpp" "src/platforms/CMakeFiles/archline_platforms.dir/platform_db.cpp.o" "gcc" "src/platforms/CMakeFiles/archline_platforms.dir/platform_db.cpp.o.d"
  "/root/repo/src/platforms/spec.cpp" "src/platforms/CMakeFiles/archline_platforms.dir/spec.cpp.o" "gcc" "src/platforms/CMakeFiles/archline_platforms.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/archline_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
