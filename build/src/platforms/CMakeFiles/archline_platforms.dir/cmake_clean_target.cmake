file(REMOVE_RECURSE
  "libarchline_platforms.a"
)
