# Empty compiler generated dependencies file for archline_platforms.
# This may be replaced when dependencies are built.
