file(REMOVE_RECURSE
  "CMakeFiles/archline_platforms.dir/platform_db.cpp.o"
  "CMakeFiles/archline_platforms.dir/platform_db.cpp.o.d"
  "CMakeFiles/archline_platforms.dir/spec.cpp.o"
  "CMakeFiles/archline_platforms.dir/spec.cpp.o.d"
  "libarchline_platforms.a"
  "libarchline_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archline_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
