# Empty compiler generated dependencies file for archline_powermon.
# This may be replaced when dependencies are built.
