file(REMOVE_RECURSE
  "libarchline_powermon.a"
)
