
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/powermon/channel.cpp" "src/powermon/CMakeFiles/archline_powermon.dir/channel.cpp.o" "gcc" "src/powermon/CMakeFiles/archline_powermon.dir/channel.cpp.o.d"
  "/root/repo/src/powermon/integrator.cpp" "src/powermon/CMakeFiles/archline_powermon.dir/integrator.cpp.o" "gcc" "src/powermon/CMakeFiles/archline_powermon.dir/integrator.cpp.o.d"
  "/root/repo/src/powermon/sampler.cpp" "src/powermon/CMakeFiles/archline_powermon.dir/sampler.cpp.o" "gcc" "src/powermon/CMakeFiles/archline_powermon.dir/sampler.cpp.o.d"
  "/root/repo/src/powermon/trace.cpp" "src/powermon/CMakeFiles/archline_powermon.dir/trace.cpp.o" "gcc" "src/powermon/CMakeFiles/archline_powermon.dir/trace.cpp.o.d"
  "/root/repo/src/powermon/trace_stats.cpp" "src/powermon/CMakeFiles/archline_powermon.dir/trace_stats.cpp.o" "gcc" "src/powermon/CMakeFiles/archline_powermon.dir/trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/archline_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
