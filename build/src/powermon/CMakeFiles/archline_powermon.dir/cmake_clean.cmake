file(REMOVE_RECURSE
  "CMakeFiles/archline_powermon.dir/channel.cpp.o"
  "CMakeFiles/archline_powermon.dir/channel.cpp.o.d"
  "CMakeFiles/archline_powermon.dir/integrator.cpp.o"
  "CMakeFiles/archline_powermon.dir/integrator.cpp.o.d"
  "CMakeFiles/archline_powermon.dir/sampler.cpp.o"
  "CMakeFiles/archline_powermon.dir/sampler.cpp.o.d"
  "CMakeFiles/archline_powermon.dir/trace.cpp.o"
  "CMakeFiles/archline_powermon.dir/trace.cpp.o.d"
  "CMakeFiles/archline_powermon.dir/trace_stats.cpp.o"
  "CMakeFiles/archline_powermon.dir/trace_stats.cpp.o.d"
  "libarchline_powermon.a"
  "libarchline_powermon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archline_powermon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
