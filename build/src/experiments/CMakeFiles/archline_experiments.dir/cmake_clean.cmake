file(REMOVE_RECURSE
  "CMakeFiles/archline_experiments.dir/exp_cache_roofline.cpp.o"
  "CMakeFiles/archline_experiments.dir/exp_cache_roofline.cpp.o.d"
  "CMakeFiles/archline_experiments.dir/exp_crossover.cpp.o"
  "CMakeFiles/archline_experiments.dir/exp_crossover.cpp.o.d"
  "CMakeFiles/archline_experiments.dir/exp_dp.cpp.o"
  "CMakeFiles/archline_experiments.dir/exp_dp.cpp.o.d"
  "CMakeFiles/archline_experiments.dir/exp_fig1.cpp.o"
  "CMakeFiles/archline_experiments.dir/exp_fig1.cpp.o.d"
  "CMakeFiles/archline_experiments.dir/exp_fig4.cpp.o"
  "CMakeFiles/archline_experiments.dir/exp_fig4.cpp.o.d"
  "CMakeFiles/archline_experiments.dir/exp_fig5.cpp.o"
  "CMakeFiles/archline_experiments.dir/exp_fig5.cpp.o.d"
  "CMakeFiles/archline_experiments.dir/exp_memhier.cpp.o"
  "CMakeFiles/archline_experiments.dir/exp_memhier.cpp.o.d"
  "CMakeFiles/archline_experiments.dir/exp_powerbound.cpp.o"
  "CMakeFiles/archline_experiments.dir/exp_powerbound.cpp.o.d"
  "CMakeFiles/archline_experiments.dir/exp_table1.cpp.o"
  "CMakeFiles/archline_experiments.dir/exp_table1.cpp.o.d"
  "CMakeFiles/archline_experiments.dir/exp_throttle.cpp.o"
  "CMakeFiles/archline_experiments.dir/exp_throttle.cpp.o.d"
  "libarchline_experiments.a"
  "libarchline_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archline_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
