file(REMOVE_RECURSE
  "libarchline_experiments.a"
)
