
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/experiments/exp_cache_roofline.cpp" "src/experiments/CMakeFiles/archline_experiments.dir/exp_cache_roofline.cpp.o" "gcc" "src/experiments/CMakeFiles/archline_experiments.dir/exp_cache_roofline.cpp.o.d"
  "/root/repo/src/experiments/exp_crossover.cpp" "src/experiments/CMakeFiles/archline_experiments.dir/exp_crossover.cpp.o" "gcc" "src/experiments/CMakeFiles/archline_experiments.dir/exp_crossover.cpp.o.d"
  "/root/repo/src/experiments/exp_dp.cpp" "src/experiments/CMakeFiles/archline_experiments.dir/exp_dp.cpp.o" "gcc" "src/experiments/CMakeFiles/archline_experiments.dir/exp_dp.cpp.o.d"
  "/root/repo/src/experiments/exp_fig1.cpp" "src/experiments/CMakeFiles/archline_experiments.dir/exp_fig1.cpp.o" "gcc" "src/experiments/CMakeFiles/archline_experiments.dir/exp_fig1.cpp.o.d"
  "/root/repo/src/experiments/exp_fig4.cpp" "src/experiments/CMakeFiles/archline_experiments.dir/exp_fig4.cpp.o" "gcc" "src/experiments/CMakeFiles/archline_experiments.dir/exp_fig4.cpp.o.d"
  "/root/repo/src/experiments/exp_fig5.cpp" "src/experiments/CMakeFiles/archline_experiments.dir/exp_fig5.cpp.o" "gcc" "src/experiments/CMakeFiles/archline_experiments.dir/exp_fig5.cpp.o.d"
  "/root/repo/src/experiments/exp_memhier.cpp" "src/experiments/CMakeFiles/archline_experiments.dir/exp_memhier.cpp.o" "gcc" "src/experiments/CMakeFiles/archline_experiments.dir/exp_memhier.cpp.o.d"
  "/root/repo/src/experiments/exp_powerbound.cpp" "src/experiments/CMakeFiles/archline_experiments.dir/exp_powerbound.cpp.o" "gcc" "src/experiments/CMakeFiles/archline_experiments.dir/exp_powerbound.cpp.o.d"
  "/root/repo/src/experiments/exp_table1.cpp" "src/experiments/CMakeFiles/archline_experiments.dir/exp_table1.cpp.o" "gcc" "src/experiments/CMakeFiles/archline_experiments.dir/exp_table1.cpp.o.d"
  "/root/repo/src/experiments/exp_throttle.cpp" "src/experiments/CMakeFiles/archline_experiments.dir/exp_throttle.cpp.o" "gcc" "src/experiments/CMakeFiles/archline_experiments.dir/exp_throttle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/archline_core.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/CMakeFiles/archline_platforms.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/archline_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/powermon/CMakeFiles/archline_powermon.dir/DependInfo.cmake"
  "/root/repo/build/src/microbench/CMakeFiles/archline_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/fit/CMakeFiles/archline_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/archline_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/archline_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
