# Empty compiler generated dependencies file for archline_experiments.
# This may be replaced when dependencies are built.
