# Empty dependencies file for archline_sim.
# This may be replaced when dependencies are built.
