file(REMOVE_RECURSE
  "libarchline_sim.a"
)
