
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/factory.cpp" "src/sim/CMakeFiles/archline_sim.dir/factory.cpp.o" "gcc" "src/sim/CMakeFiles/archline_sim.dir/factory.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/archline_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/archline_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/pipeline_model.cpp" "src/sim/CMakeFiles/archline_sim.dir/pipeline_model.cpp.o" "gcc" "src/sim/CMakeFiles/archline_sim.dir/pipeline_model.cpp.o.d"
  "/root/repo/src/sim/power_governor.cpp" "src/sim/CMakeFiles/archline_sim.dir/power_governor.cpp.o" "gcc" "src/sim/CMakeFiles/archline_sim.dir/power_governor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/archline_core.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/CMakeFiles/archline_platforms.dir/DependInfo.cmake"
  "/root/repo/build/src/powermon/CMakeFiles/archline_powermon.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/archline_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
