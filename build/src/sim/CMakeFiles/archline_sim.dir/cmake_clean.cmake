file(REMOVE_RECURSE
  "CMakeFiles/archline_sim.dir/factory.cpp.o"
  "CMakeFiles/archline_sim.dir/factory.cpp.o.d"
  "CMakeFiles/archline_sim.dir/machine.cpp.o"
  "CMakeFiles/archline_sim.dir/machine.cpp.o.d"
  "CMakeFiles/archline_sim.dir/pipeline_model.cpp.o"
  "CMakeFiles/archline_sim.dir/pipeline_model.cpp.o.d"
  "CMakeFiles/archline_sim.dir/power_governor.cpp.o"
  "CMakeFiles/archline_sim.dir/power_governor.cpp.o.d"
  "libarchline_sim.a"
  "libarchline_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archline_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
