
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/microbench/cache_bench.cpp" "src/microbench/CMakeFiles/archline_microbench.dir/cache_bench.cpp.o" "gcc" "src/microbench/CMakeFiles/archline_microbench.dir/cache_bench.cpp.o.d"
  "/root/repo/src/microbench/intensity.cpp" "src/microbench/CMakeFiles/archline_microbench.dir/intensity.cpp.o" "gcc" "src/microbench/CMakeFiles/archline_microbench.dir/intensity.cpp.o.d"
  "/root/repo/src/microbench/native_kernels.cpp" "src/microbench/CMakeFiles/archline_microbench.dir/native_kernels.cpp.o" "gcc" "src/microbench/CMakeFiles/archline_microbench.dir/native_kernels.cpp.o.d"
  "/root/repo/src/microbench/parallel.cpp" "src/microbench/CMakeFiles/archline_microbench.dir/parallel.cpp.o" "gcc" "src/microbench/CMakeFiles/archline_microbench.dir/parallel.cpp.o.d"
  "/root/repo/src/microbench/pointer_chase.cpp" "src/microbench/CMakeFiles/archline_microbench.dir/pointer_chase.cpp.o" "gcc" "src/microbench/CMakeFiles/archline_microbench.dir/pointer_chase.cpp.o.d"
  "/root/repo/src/microbench/suite.cpp" "src/microbench/CMakeFiles/archline_microbench.dir/suite.cpp.o" "gcc" "src/microbench/CMakeFiles/archline_microbench.dir/suite.cpp.o.d"
  "/root/repo/src/microbench/suite_io.cpp" "src/microbench/CMakeFiles/archline_microbench.dir/suite_io.cpp.o" "gcc" "src/microbench/CMakeFiles/archline_microbench.dir/suite_io.cpp.o.d"
  "/root/repo/src/microbench/tuning.cpp" "src/microbench/CMakeFiles/archline_microbench.dir/tuning.cpp.o" "gcc" "src/microbench/CMakeFiles/archline_microbench.dir/tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/archline_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/powermon/CMakeFiles/archline_powermon.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/CMakeFiles/archline_platforms.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/archline_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/archline_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/archline_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
