# Empty dependencies file for archline_microbench.
# This may be replaced when dependencies are built.
