file(REMOVE_RECURSE
  "libarchline_microbench.a"
)
