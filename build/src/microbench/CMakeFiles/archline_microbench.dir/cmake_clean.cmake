file(REMOVE_RECURSE
  "CMakeFiles/archline_microbench.dir/cache_bench.cpp.o"
  "CMakeFiles/archline_microbench.dir/cache_bench.cpp.o.d"
  "CMakeFiles/archline_microbench.dir/intensity.cpp.o"
  "CMakeFiles/archline_microbench.dir/intensity.cpp.o.d"
  "CMakeFiles/archline_microbench.dir/native_kernels.cpp.o"
  "CMakeFiles/archline_microbench.dir/native_kernels.cpp.o.d"
  "CMakeFiles/archline_microbench.dir/parallel.cpp.o"
  "CMakeFiles/archline_microbench.dir/parallel.cpp.o.d"
  "CMakeFiles/archline_microbench.dir/pointer_chase.cpp.o"
  "CMakeFiles/archline_microbench.dir/pointer_chase.cpp.o.d"
  "CMakeFiles/archline_microbench.dir/suite.cpp.o"
  "CMakeFiles/archline_microbench.dir/suite.cpp.o.d"
  "CMakeFiles/archline_microbench.dir/suite_io.cpp.o"
  "CMakeFiles/archline_microbench.dir/suite_io.cpp.o.d"
  "CMakeFiles/archline_microbench.dir/tuning.cpp.o"
  "CMakeFiles/archline_microbench.dir/tuning.cpp.o.d"
  "libarchline_microbench.a"
  "libarchline_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archline_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
