file(REMOVE_RECURSE
  "CMakeFiles/archline_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/archline_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/archline_stats.dir/correlation.cpp.o"
  "CMakeFiles/archline_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/archline_stats.dir/descriptive.cpp.o"
  "CMakeFiles/archline_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/archline_stats.dir/ks_test.cpp.o"
  "CMakeFiles/archline_stats.dir/ks_test.cpp.o.d"
  "CMakeFiles/archline_stats.dir/rng.cpp.o"
  "CMakeFiles/archline_stats.dir/rng.cpp.o.d"
  "libarchline_stats.a"
  "libarchline_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archline_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
