file(REMOVE_RECURSE
  "libarchline_stats.a"
)
