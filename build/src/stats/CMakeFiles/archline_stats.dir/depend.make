# Empty dependencies file for archline_stats.
# This may be replaced when dependencies are built.
