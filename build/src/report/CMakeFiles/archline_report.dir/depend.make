# Empty dependencies file for archline_report.
# This may be replaced when dependencies are built.
