# Empty compiler generated dependencies file for archline_report.
# This may be replaced when dependencies are built.
