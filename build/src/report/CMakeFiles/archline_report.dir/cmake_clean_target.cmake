file(REMOVE_RECURSE
  "libarchline_report.a"
)
