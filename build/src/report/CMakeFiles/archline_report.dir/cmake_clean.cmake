file(REMOVE_RECURSE
  "CMakeFiles/archline_report.dir/ascii_plot.cpp.o"
  "CMakeFiles/archline_report.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/archline_report.dir/csv.cpp.o"
  "CMakeFiles/archline_report.dir/csv.cpp.o.d"
  "CMakeFiles/archline_report.dir/si.cpp.o"
  "CMakeFiles/archline_report.dir/si.cpp.o.d"
  "CMakeFiles/archline_report.dir/svg_plot.cpp.o"
  "CMakeFiles/archline_report.dir/svg_plot.cpp.o.d"
  "CMakeFiles/archline_report.dir/table.cpp.o"
  "CMakeFiles/archline_report.dir/table.cpp.o.d"
  "libarchline_report.a"
  "libarchline_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archline_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
