
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/archline_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/archline_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/droop_model.cpp" "src/core/CMakeFiles/archline_core.dir/droop_model.cpp.o" "gcc" "src/core/CMakeFiles/archline_core.dir/droop_model.cpp.o.d"
  "/root/repo/src/core/dvfs.cpp" "src/core/CMakeFiles/archline_core.dir/dvfs.cpp.o" "gcc" "src/core/CMakeFiles/archline_core.dir/dvfs.cpp.o.d"
  "/root/repo/src/core/interconnect.cpp" "src/core/CMakeFiles/archline_core.dir/interconnect.cpp.o" "gcc" "src/core/CMakeFiles/archline_core.dir/interconnect.cpp.o.d"
  "/root/repo/src/core/machine_params.cpp" "src/core/CMakeFiles/archline_core.dir/machine_params.cpp.o" "gcc" "src/core/CMakeFiles/archline_core.dir/machine_params.cpp.o.d"
  "/root/repo/src/core/params_io.cpp" "src/core/CMakeFiles/archline_core.dir/params_io.cpp.o" "gcc" "src/core/CMakeFiles/archline_core.dir/params_io.cpp.o.d"
  "/root/repo/src/core/phase_mix.cpp" "src/core/CMakeFiles/archline_core.dir/phase_mix.cpp.o" "gcc" "src/core/CMakeFiles/archline_core.dir/phase_mix.cpp.o.d"
  "/root/repo/src/core/random_model.cpp" "src/core/CMakeFiles/archline_core.dir/random_model.cpp.o" "gcc" "src/core/CMakeFiles/archline_core.dir/random_model.cpp.o.d"
  "/root/repo/src/core/roofline.cpp" "src/core/CMakeFiles/archline_core.dir/roofline.cpp.o" "gcc" "src/core/CMakeFiles/archline_core.dir/roofline.cpp.o.d"
  "/root/repo/src/core/scenarios.cpp" "src/core/CMakeFiles/archline_core.dir/scenarios.cpp.o" "gcc" "src/core/CMakeFiles/archline_core.dir/scenarios.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/archline_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/archline_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/workloads.cpp" "src/core/CMakeFiles/archline_core.dir/workloads.cpp.o" "gcc" "src/core/CMakeFiles/archline_core.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
