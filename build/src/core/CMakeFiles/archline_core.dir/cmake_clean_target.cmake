file(REMOVE_RECURSE
  "libarchline_core.a"
)
