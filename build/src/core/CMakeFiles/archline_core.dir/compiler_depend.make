# Empty compiler generated dependencies file for archline_core.
# This may be replaced when dependencies are built.
