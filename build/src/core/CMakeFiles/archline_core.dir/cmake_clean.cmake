file(REMOVE_RECURSE
  "CMakeFiles/archline_core.dir/analysis.cpp.o"
  "CMakeFiles/archline_core.dir/analysis.cpp.o.d"
  "CMakeFiles/archline_core.dir/droop_model.cpp.o"
  "CMakeFiles/archline_core.dir/droop_model.cpp.o.d"
  "CMakeFiles/archline_core.dir/dvfs.cpp.o"
  "CMakeFiles/archline_core.dir/dvfs.cpp.o.d"
  "CMakeFiles/archline_core.dir/interconnect.cpp.o"
  "CMakeFiles/archline_core.dir/interconnect.cpp.o.d"
  "CMakeFiles/archline_core.dir/machine_params.cpp.o"
  "CMakeFiles/archline_core.dir/machine_params.cpp.o.d"
  "CMakeFiles/archline_core.dir/params_io.cpp.o"
  "CMakeFiles/archline_core.dir/params_io.cpp.o.d"
  "CMakeFiles/archline_core.dir/phase_mix.cpp.o"
  "CMakeFiles/archline_core.dir/phase_mix.cpp.o.d"
  "CMakeFiles/archline_core.dir/random_model.cpp.o"
  "CMakeFiles/archline_core.dir/random_model.cpp.o.d"
  "CMakeFiles/archline_core.dir/roofline.cpp.o"
  "CMakeFiles/archline_core.dir/roofline.cpp.o.d"
  "CMakeFiles/archline_core.dir/scenarios.cpp.o"
  "CMakeFiles/archline_core.dir/scenarios.cpp.o.d"
  "CMakeFiles/archline_core.dir/sensitivity.cpp.o"
  "CMakeFiles/archline_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/archline_core.dir/workloads.cpp.o"
  "CMakeFiles/archline_core.dir/workloads.cpp.o.d"
  "libarchline_core.a"
  "libarchline_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archline_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
