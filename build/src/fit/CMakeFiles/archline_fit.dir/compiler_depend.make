# Empty compiler generated dependencies file for archline_fit.
# This may be replaced when dependencies are built.
