
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fit/bootstrap_fit.cpp" "src/fit/CMakeFiles/archline_fit.dir/bootstrap_fit.cpp.o" "gcc" "src/fit/CMakeFiles/archline_fit.dir/bootstrap_fit.cpp.o.d"
  "/root/repo/src/fit/droop_fit.cpp" "src/fit/CMakeFiles/archline_fit.dir/droop_fit.cpp.o" "gcc" "src/fit/CMakeFiles/archline_fit.dir/droop_fit.cpp.o.d"
  "/root/repo/src/fit/levmar.cpp" "src/fit/CMakeFiles/archline_fit.dir/levmar.cpp.o" "gcc" "src/fit/CMakeFiles/archline_fit.dir/levmar.cpp.o.d"
  "/root/repo/src/fit/linalg.cpp" "src/fit/CMakeFiles/archline_fit.dir/linalg.cpp.o" "gcc" "src/fit/CMakeFiles/archline_fit.dir/linalg.cpp.o.d"
  "/root/repo/src/fit/model_fit.cpp" "src/fit/CMakeFiles/archline_fit.dir/model_fit.cpp.o" "gcc" "src/fit/CMakeFiles/archline_fit.dir/model_fit.cpp.o.d"
  "/root/repo/src/fit/nelder_mead.cpp" "src/fit/CMakeFiles/archline_fit.dir/nelder_mead.cpp.o" "gcc" "src/fit/CMakeFiles/archline_fit.dir/nelder_mead.cpp.o.d"
  "/root/repo/src/fit/objective.cpp" "src/fit/CMakeFiles/archline_fit.dir/objective.cpp.o" "gcc" "src/fit/CMakeFiles/archline_fit.dir/objective.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/archline_core.dir/DependInfo.cmake"
  "/root/repo/build/src/microbench/CMakeFiles/archline_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/archline_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/archline_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/powermon/CMakeFiles/archline_powermon.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/CMakeFiles/archline_platforms.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/archline_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
