file(REMOVE_RECURSE
  "libarchline_fit.a"
)
