file(REMOVE_RECURSE
  "CMakeFiles/archline_fit.dir/bootstrap_fit.cpp.o"
  "CMakeFiles/archline_fit.dir/bootstrap_fit.cpp.o.d"
  "CMakeFiles/archline_fit.dir/droop_fit.cpp.o"
  "CMakeFiles/archline_fit.dir/droop_fit.cpp.o.d"
  "CMakeFiles/archline_fit.dir/levmar.cpp.o"
  "CMakeFiles/archline_fit.dir/levmar.cpp.o.d"
  "CMakeFiles/archline_fit.dir/linalg.cpp.o"
  "CMakeFiles/archline_fit.dir/linalg.cpp.o.d"
  "CMakeFiles/archline_fit.dir/model_fit.cpp.o"
  "CMakeFiles/archline_fit.dir/model_fit.cpp.o.d"
  "CMakeFiles/archline_fit.dir/nelder_mead.cpp.o"
  "CMakeFiles/archline_fit.dir/nelder_mead.cpp.o.d"
  "CMakeFiles/archline_fit.dir/objective.cpp.o"
  "CMakeFiles/archline_fit.dir/objective.cpp.o.d"
  "libarchline_fit.a"
  "libarchline_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archline_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
