file(REMOVE_RECURSE
  "../bench/sensitivity_analysis"
  "../bench/sensitivity_analysis.pdb"
  "CMakeFiles/sensitivity_analysis.dir/sensitivity_analysis.cpp.o"
  "CMakeFiles/sensitivity_analysis.dir/sensitivity_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
