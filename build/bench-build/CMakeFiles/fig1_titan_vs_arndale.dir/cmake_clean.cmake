file(REMOVE_RECURSE
  "../bench/fig1_titan_vs_arndale"
  "../bench/fig1_titan_vs_arndale.pdb"
  "CMakeFiles/fig1_titan_vs_arndale.dir/fig1_titan_vs_arndale.cpp.o"
  "CMakeFiles/fig1_titan_vs_arndale.dir/fig1_titan_vs_arndale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_titan_vs_arndale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
