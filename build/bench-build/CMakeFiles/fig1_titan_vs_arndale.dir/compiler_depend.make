# Empty compiler generated dependencies file for fig1_titan_vs_arndale.
# This may be replaced when dependencies are built.
