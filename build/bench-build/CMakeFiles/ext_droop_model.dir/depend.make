# Empty dependencies file for ext_droop_model.
# This may be replaced when dependencies are built.
