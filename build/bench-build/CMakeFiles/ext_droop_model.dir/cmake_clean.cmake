file(REMOVE_RECURSE
  "../bench/ext_droop_model"
  "../bench/ext_droop_model.pdb"
  "CMakeFiles/ext_droop_model.dir/ext_droop_model.cpp.o"
  "CMakeFiles/ext_droop_model.dir/ext_droop_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_droop_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
