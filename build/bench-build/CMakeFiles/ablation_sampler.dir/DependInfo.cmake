
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_sampler.cpp" "bench-build/CMakeFiles/ablation_sampler.dir/ablation_sampler.cpp.o" "gcc" "bench-build/CMakeFiles/ablation_sampler.dir/ablation_sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/archline_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/fit/CMakeFiles/archline_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/microbench/CMakeFiles/archline_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/archline_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/CMakeFiles/archline_platforms.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/archline_core.dir/DependInfo.cmake"
  "/root/repo/build/src/powermon/CMakeFiles/archline_powermon.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/archline_report.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/archline_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
