# Empty dependencies file for ablation_sampler.
# This may be replaced when dependencies are built.
