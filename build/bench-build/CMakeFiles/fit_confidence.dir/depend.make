# Empty dependencies file for fit_confidence.
# This may be replaced when dependencies are built.
