file(REMOVE_RECURSE
  "../bench/fit_confidence"
  "../bench/fit_confidence.pdb"
  "CMakeFiles/fit_confidence.dir/fit_confidence.cpp.o"
  "CMakeFiles/fit_confidence.dir/fit_confidence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fit_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
