file(REMOVE_RECURSE
  "../bench/ext_network_overhead"
  "../bench/ext_network_overhead.pdb"
  "CMakeFiles/ext_network_overhead.dir/ext_network_overhead.cpp.o"
  "CMakeFiles/ext_network_overhead.dir/ext_network_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_network_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
