# Empty compiler generated dependencies file for ext_network_overhead.
# This may be replaced when dependencies are built.
