file(REMOVE_RECURSE
  "../bench/dp_analysis"
  "../bench/dp_analysis.pdb"
  "CMakeFiles/dp_analysis.dir/dp_analysis.cpp.o"
  "CMakeFiles/dp_analysis.dir/dp_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
