file(REMOVE_RECURSE
  "../bench/memhier_energy"
  "../bench/memhier_energy.pdb"
  "CMakeFiles/memhier_energy.dir/memhier_energy.cpp.o"
  "CMakeFiles/memhier_energy.dir/memhier_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memhier_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
