# Empty dependencies file for memhier_energy.
# This may be replaced when dependencies are built.
