# Empty dependencies file for reproduction_checklist.
# This may be replaced when dependencies are built.
