file(REMOVE_RECURSE
  "../bench/reproduction_checklist"
  "../bench/reproduction_checklist.pdb"
  "CMakeFiles/reproduction_checklist.dir/reproduction_checklist.cpp.o"
  "CMakeFiles/reproduction_checklist.dir/reproduction_checklist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproduction_checklist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
