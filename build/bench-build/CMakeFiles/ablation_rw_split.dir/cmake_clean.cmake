file(REMOVE_RECURSE
  "../bench/ablation_rw_split"
  "../bench/ablation_rw_split.pdb"
  "CMakeFiles/ablation_rw_split.dir/ablation_rw_split.cpp.o"
  "CMakeFiles/ablation_rw_split.dir/ablation_rw_split.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rw_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
