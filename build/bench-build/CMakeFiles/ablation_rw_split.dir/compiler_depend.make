# Empty compiler generated dependencies file for ablation_rw_split.
# This may be replaced when dependencies are built.
