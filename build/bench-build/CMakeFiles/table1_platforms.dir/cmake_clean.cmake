file(REMOVE_RECURSE
  "../bench/table1_platforms"
  "../bench/table1_platforms.pdb"
  "CMakeFiles/table1_platforms.dir/table1_platforms.cpp.o"
  "CMakeFiles/table1_platforms.dir/table1_platforms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
