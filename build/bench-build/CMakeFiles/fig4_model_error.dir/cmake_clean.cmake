file(REMOVE_RECURSE
  "../bench/fig4_model_error"
  "../bench/fig4_model_error.pdb"
  "CMakeFiles/fig4_model_error.dir/fig4_model_error.cpp.o"
  "CMakeFiles/fig4_model_error.dir/fig4_model_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_model_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
