# Empty dependencies file for fig4_model_error.
# This may be replaced when dependencies are built.
