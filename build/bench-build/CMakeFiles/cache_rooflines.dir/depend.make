# Empty dependencies file for cache_rooflines.
# This may be replaced when dependencies are built.
