file(REMOVE_RECURSE
  "../bench/cache_rooflines"
  "../bench/cache_rooflines.pdb"
  "CMakeFiles/cache_rooflines.dir/cache_rooflines.cpp.o"
  "CMakeFiles/cache_rooflines.dir/cache_rooflines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_rooflines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
