file(REMOVE_RECURSE
  "../bench/fig6_power_throttling"
  "../bench/fig6_power_throttling.pdb"
  "CMakeFiles/fig6_power_throttling.dir/fig6_power_throttling.cpp.o"
  "CMakeFiles/fig6_power_throttling.dir/fig6_power_throttling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_power_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
