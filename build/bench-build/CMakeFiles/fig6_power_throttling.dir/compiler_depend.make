# Empty compiler generated dependencies file for fig6_power_throttling.
# This may be replaced when dependencies are built.
