file(REMOVE_RECURSE
  "../bench/powerbound_scenario"
  "../bench/powerbound_scenario.pdb"
  "CMakeFiles/powerbound_scenario.dir/powerbound_scenario.cpp.o"
  "CMakeFiles/powerbound_scenario.dir/powerbound_scenario.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powerbound_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
