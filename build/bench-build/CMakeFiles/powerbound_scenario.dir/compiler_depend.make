# Empty compiler generated dependencies file for powerbound_scenario.
# This may be replaced when dependencies are built.
