file(REMOVE_RECURSE
  "../bench/ext_dvfs_vs_cap"
  "../bench/ext_dvfs_vs_cap.pdb"
  "CMakeFiles/ext_dvfs_vs_cap.dir/ext_dvfs_vs_cap.cpp.o"
  "CMakeFiles/ext_dvfs_vs_cap.dir/ext_dvfs_vs_cap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dvfs_vs_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
