# Empty dependencies file for fig5_power_profiles.
# This may be replaced when dependencies are built.
