file(REMOVE_RECURSE
  "../bench/fig5_power_profiles"
  "../bench/fig5_power_profiles.pdb"
  "CMakeFiles/fig5_power_profiles.dir/fig5_power_profiles.cpp.o"
  "CMakeFiles/fig5_power_profiles.dir/fig5_power_profiles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_power_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
