# Empty dependencies file for ablation_nonideality.
# This may be replaced when dependencies are built.
