file(REMOVE_RECURSE
  "../bench/ablation_nonideality"
  "../bench/ablation_nonideality.pdb"
  "CMakeFiles/ablation_nonideality.dir/ablation_nonideality.cpp.o"
  "CMakeFiles/ablation_nonideality.dir/ablation_nonideality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nonideality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
