file(REMOVE_RECURSE
  "../bench/generate_report"
  "../bench/generate_report.pdb"
  "CMakeFiles/generate_report.dir/generate_report.cpp.o"
  "CMakeFiles/generate_report.dir/generate_report.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
