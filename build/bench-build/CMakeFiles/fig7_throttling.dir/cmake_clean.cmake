file(REMOVE_RECURSE
  "../bench/fig7_throttling"
  "../bench/fig7_throttling.pdb"
  "CMakeFiles/fig7_throttling.dir/fig7_throttling.cpp.o"
  "CMakeFiles/fig7_throttling.dir/fig7_throttling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
