# Empty dependencies file for fig7_throttling.
# This may be replaced when dependencies are built.
