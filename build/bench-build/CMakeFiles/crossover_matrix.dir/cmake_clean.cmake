file(REMOVE_RECURSE
  "../bench/crossover_matrix"
  "../bench/crossover_matrix.pdb"
  "CMakeFiles/crossover_matrix.dir/crossover_matrix.cpp.o"
  "CMakeFiles/crossover_matrix.dir/crossover_matrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossover_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
