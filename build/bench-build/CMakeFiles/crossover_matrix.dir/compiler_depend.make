# Empty compiler generated dependencies file for crossover_matrix.
# This may be replaced when dependencies are built.
