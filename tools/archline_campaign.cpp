// archline_campaign — seeded virtual-time traffic campaigns against the
// serve stack, from the command line.
//
// Runs one sim::Campaign scenario (see campaign_scenario_names()) and
// prints its CampaignReport. The whole run is a pure function of
// (--scenario, --seed, overrides): the JSON report is byte-identical
// across machines and runs, so a CI artifact reproduces locally with
// the flags stamped inside it.
//
// Usage:
//   archline_campaign [--scenario NAME] [--seed N] [--connections N]
//                     [--virtual-seconds X] [--json] [--list]
//
// --json prints the one-line machine-readable report (the CI artifact
// format); the default is a human-readable summary. Exit status: 0 on
// a drain-clean, fully-accounted campaign, 1 otherwise, 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "sim/campaign.hpp"

namespace {

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s [--scenario NAME] [--seed N] [--connections N]\n"
               "          [--virtual-seconds X] [--json] [--list]\n",
               argv0);
  std::exit(code);
}

void print_human(const archline::sim::CampaignReport& r) {
  std::printf("campaign: seed=%llu virtual=%.3fs drained_at=%.3fs%s\n",
              static_cast<unsigned long long>(r.seed), r.virtual_seconds,
              r.drained_at_s, r.drain_clean ? "" : "  [DRAIN NOT CLEAN]");
  std::printf(
      "conns:    opened=%llu refused=%llu closed_clean=%llu reset=%llu "
      "idle_closed=%llu%s\n",
      static_cast<unsigned long long>(r.connections_opened),
      static_cast<unsigned long long>(r.connections_refused),
      static_cast<unsigned long long>(r.closed_clean),
      static_cast<unsigned long long>(r.reset_by_client),
      static_cast<unsigned long long>(r.idle_closed),
      r.connections_accounted ? "" : "  [NOT ACCOUNTED]");
  std::printf(
      "requests: sent=%llu framed=%llu delivered=%llu abandoned=%llu "
      "dropped=%llu\n",
      static_cast<unsigned long long>(r.requests_sent),
      static_cast<unsigned long long>(r.requests_framed),
      static_cast<unsigned long long>(r.replies_delivered),
      static_cast<unsigned long long>(r.replies_abandoned),
      static_cast<unsigned long long>(r.dropped_replies));
  std::printf("outcomes: ok=%llu overloaded=%llu deadline_exceeded=%llu\n",
              static_cast<unsigned long long>(r.ok),
              static_cast<unsigned long long>(r.overloaded),
              static_cast<unsigned long long>(r.deadline_exceeded));
  for (const auto& [code, n] : r.errors_by_code)
    std::printf("  error %-20s %llu\n", code.c_str(),
                static_cast<unsigned long long>(n));
  std::printf(
      "latency:  p50=%.1fus p99=%.1fus p99.9=%.1fus max=%.1fus (n=%llu)\n",
      r.total.p50_ns * 1e-3, r.total.p99_ns * 1e-3, r.total.p999_ns * 1e-3,
      r.total.max_ns * 1e-3, static_cast<unsigned long long>(r.total.count));
  for (const auto& [name, s] : r.endpoints)
    std::printf("  %-14s p50=%.1fus p99=%.1fus p99.9=%.1fus (n=%llu)\n",
                name.c_str(), s.p50_ns * 1e-3, s.p99_ns * 1e-3,
                s.p999_ns * 1e-3, static_cast<unsigned long long>(s.count));
  std::printf("cache:    hits=%llu misses=%llu stale=%llu hit_rate=%.4f\n",
              static_cast<unsigned long long>(r.cache_hits),
              static_cast<unsigned long long>(r.cache_misses),
              static_cast<unsigned long long>(r.cache_stale),
              r.cache_hit_rate);
  std::printf("queues:   max_light_depth=%llu max_heavy_depth=%llu\n",
              static_cast<unsigned long long>(r.max_light_depth),
              static_cast<unsigned long long>(r.max_heavy_depth));
  std::printf("events:   %llu\n",
              static_cast<unsigned long long>(r.events_processed));
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario = "steady";
  std::uint64_t seed = 1;
  int connections = 0;        // 0 = scenario default
  double virtual_seconds = 0; // 0 = scenario default
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], 2);
      return argv[++i];
    };
    if (arg == "--scenario") {
      scenario = value();
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--connections") {
      connections = std::atoi(value());
      if (connections < 1) usage(argv[0], 2);
    } else if (arg == "--virtual-seconds") {
      virtual_seconds = std::atof(value());
      if (!(virtual_seconds > 0.0)) usage(argv[0], 2);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--list") {
      for (const auto& name : archline::sim::campaign_scenario_names())
        std::printf("%s\n", name.c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg.c_str());
      usage(argv[0], 2);
    }
  }

  try {
    archline::sim::CampaignOptions options =
        archline::sim::campaign_scenario(scenario);
    options.seed = seed;
    if (connections > 0) options.connections = connections;
    if (virtual_seconds > 0.0) options.virtual_seconds = virtual_seconds;

    archline::sim::Campaign campaign(options);
    const archline::sim::CampaignReport report = campaign.run();

    if (json)
      std::printf("%s\n", report.to_json().c_str());
    else
      print_human(report);
    return report.drain_clean && report.connections_accounted ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
}
