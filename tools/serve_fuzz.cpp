// serve_fuzz — structure-aware fuzzer for the serve request path.
//
// Mutates the golden corpus (tests/data/serve_golden_requests.txt) and
// replays seeded mutants through Server::handle_into in-process,
// checking the protocol contract: no crash/UB (run under
// -DARCHLINE_SANITIZE=address for the machine-checked half) and every
// reply is valid one-line JSON that is {"ok":true,...} or {"ok":false,
// "error":<known code>,...}. See docs/TESTING.md.
//
// Usage:
//   serve_fuzz --corpus FILE [--seed N] [--iters N] [--begin N]
//              [--max-mutations N] [--quiet]
//
// Reproducing a finding: iteration k is a pure function of
// (--seed, k). The tool prints both on failure;
//   serve_fuzz --corpus FILE --seed S --begin K --iters 1
// rebuilds the exact offending input, no matter how long the original
// campaign ran. Exit status: 0 clean, 1 findings, 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.hpp"
#include "sim/fuzz.hpp"

namespace {

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s --corpus FILE [--seed N] [--iters N] [--begin N]\n"
               "          [--max-mutations N] [--quiet]\n",
               argv0);
  std::exit(code);
}

long parse_long(const char* argv0, const char* flag, const char* value) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (!end || *end != '\0' || v < 0) {
    std::fprintf(stderr, "%s: bad value for %s: %s\n", argv0, flag, value);
    usage(argv0, 2);
  }
  return v;
}

/// Findings can contain NULs and control bytes; print them C-escaped
/// so the report survives a terminal and pastes back into a test.
void print_escaped(const std::string& s) {
  for (const char c : s) {
    const auto b = static_cast<unsigned char>(c);
    if (b == '\\' || b == '"')
      std::printf("\\%c", c);
    else if (b >= 0x20 && b < 0x7f)
      std::putchar(c);
    else
      std::printf("\\x%02x", b);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_path;
  archline::sim::FuzzOptions options;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], 2);
      return argv[++i];
    };
    if (arg == "--corpus")
      corpus_path = value();
    else if (arg == "--seed")
      options.seed =
          static_cast<std::uint64_t>(parse_long(argv[0], "--seed", value()));
    else if (arg == "--iters")
      options.iterations =
          static_cast<std::size_t>(parse_long(argv[0], "--iters", value()));
    else if (arg == "--begin")
      options.begin =
          static_cast<std::size_t>(parse_long(argv[0], "--begin", value()));
    else if (arg == "--max-mutations")
      options.max_mutations = static_cast<int>(
          parse_long(argv[0], "--max-mutations", value()));
    else if (arg == "--quiet")
      quiet = true;
    else if (arg == "--help" || arg == "-h")
      usage(argv[0], 0);
    else
      usage(argv[0], 2);
  }
  if (corpus_path.empty()) usage(argv[0], 2);

  const std::vector<std::string> corpus =
      archline::sim::load_corpus(corpus_path);
  if (corpus.empty()) {
    std::fprintf(stderr, "%s: empty or unreadable corpus: %s\n", argv[0],
                 corpus_path.c_str());
    return 2;
  }

  archline::serve::Server server;  // synchronous path; no workers needed
  const archline::sim::FuzzReport report =
      archline::sim::run_fuzz(server, corpus, options);

  if (!quiet || !report.clean())
    std::printf(
        "serve_fuzz: seed=%llu begin=%zu iterations=%zu corpus=%zu "
        "ok=%zu error=%zu findings=%zu\n",
        static_cast<unsigned long long>(options.seed), options.begin,
        report.iterations, corpus.size(), report.ok_replies,
        report.error_replies, report.findings.size());

  for (const archline::sim::FuzzFinding& f : report.findings) {
    std::printf("FINDING iteration=%zu (repro: --seed %llu --begin %zu "
                "--iters 1)\n  why: %s\n  input: \"",
                f.iteration, static_cast<unsigned long long>(options.seed),
                f.iteration, f.why.c_str());
    print_escaped(f.input);
    std::printf("\"\n  reply: \"");
    print_escaped(f.reply);
    std::printf("\"\n");
  }
  return report.clean() ? 0 : 1;
}
