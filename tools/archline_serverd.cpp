// archline_serverd — the archline model-serving daemon.
//
// Serves the energy-roofline model stack (predict / crossover /
// scenario / sensitivity / scenario_sweep / fit / platforms / stats)
// over a newline-delimited JSON protocol. See docs/SERVER.md for the
// wire format and the registry that defines the endpoint table.
//
// Usage:
//   archline_serverd [--port N] [--bind ADDR] [--shards N]
//                    [--no-reuseport] [--pin-shards]
//                    [--threads N] [--queue N]
//                    [--heavy-lane-capacity N] [--heavy-workers N]
//                    [--cache N] [--cache-shards N] [--max-conns N]
//                    [--idle-timeout-ms N] [--drain-grace-ms N]
//                    [--deadline-ms N] [--heavy-deadline-ms N]
//                    [--refit-interval-ms N] [--forgetting-factor F]
//                    [--stdio]
//
// --shards N runs N thread-per-core event-loop shards, each with its
// own SO_REUSEPORT listener (or a round-robin fd handoff from shard 0
// with --no-reuseport / on kernels without SO_REUSEPORT), connection
// table, and response-cache partition. NOTE: before the sharded front
// end, --shards set the cache's internal lock striping — that knob is
// now --cache-shards. --pin-shards additionally pins shard i's loop
// thread to CPU i (ignored, with a stderr note, when the machine has
// fewer online CPUs than shards).
//
// Online fitting (docs/MODEL.md "Online fitting"): the "observe"
// endpoint streams measured (flops, bytes, seconds, joules) tuples into
// a per-platform RLS filter. --refit-interval-ms N starts a background
// thread that re-solves the full capped model every N ms for platforms
// with fresh observations (0 = re-solve only on explicit "refit"
// requests — the default, which keeps --stdio replay deterministic).
// --forgetting-factor sets the RLS decay in (0, 1]: lower values track
// drifting hardware faster at the cost of wider confidence intervals.
//
// Transports:
//   default   TCP listener on --bind:--port (port 0 = ephemeral,
//             printed on startup)
//   --stdio   read requests from stdin, write responses to stdout
//             (for tests, pipes, and socket-less sandboxes)
//   --serial  with --stdio: handle each line synchronously on the main
//             thread instead of through the worker pool. Requests then
//             EXECUTE in input order — required when regenerating the
//             golden corpus, whose observe/refit lines mutate server
//             state and so must replay in exactly the order written
//
// Signals:
//   SIGINT/SIGTERM  graceful shutdown: stop accepting, drain the
//                   queue, print a metrics summary, exit 0
//   SIGUSR1         dump the metrics summary to stderr, keep serving

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "serve/server.hpp"
#include "serve/tcp.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump_stats = 0;

void on_terminate(int) { g_stop = 1; }
void on_usr1(int) { g_dump_stats = 1; }

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--bind ADDR] [--shards N] [--no-reuseport]\n"
      "          [--pin-shards]\n"
      "          [--threads N] [--queue N]\n"
      "          [--heavy-lane-capacity N] [--heavy-workers N]\n"
      "          [--cache N] [--cache-shards N] [--max-conns N]\n"
      "          [--idle-timeout-ms N] [--drain-grace-ms N]\n"
      "          [--deadline-ms N]\n"
      "          [--heavy-deadline-ms N] [--refit-interval-ms N]\n"
      "          [--forgetting-factor F] [--stdio] [--serial] [--quiet]\n",
      argv0);
  std::exit(code);
}

long parse_long(const char* argv0, const char* flag, const char* value) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (!end || *end != '\0' || v < 0) {
    std::fprintf(stderr, "%s: bad value for %s: %s\n", argv0, flag, value);
    usage(argv0, 2);
  }
  return v;
}

double parse_double(const char* argv0, const char* flag, const char* value) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (!end || *end != '\0') {
    std::fprintf(stderr, "%s: bad value for %s: %s\n", argv0, flag, value);
    usage(argv0, 2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace archline::serve;

  ServerOptions options;
  TcpOptions tcp;
  bool stdio_mode = false;
  bool serial = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], 2);
      return argv[++i];
    };
    if (arg == "--port")
      tcp.port = static_cast<std::uint16_t>(
          parse_long(argv[0], "--port", value()));
    else if (arg == "--bind")
      tcp.bind_address = value();
    else if (arg == "--threads")
      options.threads = static_cast<int>(
          parse_long(argv[0], "--threads", value()));
    else if (arg == "--queue")
      options.queue_capacity = static_cast<std::size_t>(
          parse_long(argv[0], "--queue", value()));
    else if (arg == "--heavy-lane-capacity")
      options.heavy_lane_capacity = static_cast<std::size_t>(
          parse_long(argv[0], "--heavy-lane-capacity", value()));
    else if (arg == "--heavy-workers")
      options.heavy_workers = static_cast<int>(
          parse_long(argv[0], "--heavy-workers", value()));
    else if (arg == "--cache")
      options.cache_capacity = static_cast<std::size_t>(
          parse_long(argv[0], "--cache", value()));
    else if (arg == "--shards")
      tcp.shards = static_cast<int>(
          parse_long(argv[0], "--shards", value()));
    else if (arg == "--no-reuseport")
      tcp.use_reuseport = false;
    else if (arg == "--pin-shards")
      tcp.pin_shards = true;
    else if (arg == "--cache-shards")
      options.cache_shards = static_cast<std::size_t>(
          parse_long(argv[0], "--cache-shards", value()));
    else if (arg == "--max-conns")
      tcp.max_connections = static_cast<std::size_t>(
          parse_long(argv[0], "--max-conns", value()));
    else if (arg == "--idle-timeout-ms")
      tcp.idle_timeout_ms = static_cast<int>(
          parse_long(argv[0], "--idle-timeout-ms", value()));
    else if (arg == "--drain-grace-ms")
      tcp.drain_grace_ms = static_cast<int>(
          parse_long(argv[0], "--drain-grace-ms", value()));
    else if (arg == "--deadline-ms")
      options.request_deadline_ms = static_cast<int>(
          parse_long(argv[0], "--deadline-ms", value()));
    else if (arg == "--heavy-deadline-ms")
      options.heavy_deadline_ms = static_cast<int>(
          parse_long(argv[0], "--heavy-deadline-ms", value()));
    else if (arg == "--refit-interval-ms")
      options.refit_interval_ms = static_cast<int>(
          parse_long(argv[0], "--refit-interval-ms", value()));
    else if (arg == "--forgetting-factor") {
      const double f =
          parse_double(argv[0], "--forgetting-factor", value());
      if (!(f > 0.0) || f > 1.0) {
        std::fprintf(stderr,
                     "%s: --forgetting-factor must be in (0, 1]\n", argv[0]);
        usage(argv[0], 2);
      }
      options.online.forgetting = f;
    } else if (arg == "--stdio")
      stdio_mode = true;
    else if (arg == "--serial")
      serial = true;
    else if (arg == "--quiet")
      quiet = true;
    else if (arg == "--help" || arg == "-h")
      usage(argv[0], 0);
    else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg.c_str());
      usage(argv[0], 2);
    }
  }

  std::signal(SIGINT, on_terminate);
  std::signal(SIGTERM, on_terminate);
  std::signal(SIGUSR1, on_usr1);
  std::signal(SIGPIPE, SIG_IGN);

  Server server(options);
  server.start();

  if (stdio_mode) {
    if (serial) {
      // Synchronous in-order execution on this thread: the state
      // sequence is exactly the input order, which is what the golden
      // corpus regeneration needs (observe/refit lines mutate state).
      std::string line, reply;
      while (std::getline(std::cin, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        server.handle_into(line, reply);
        std::cout << reply << '\n';
      }
      std::cout.flush();
    } else {
      run_stream(server, std::cin, std::cout);
    }
    server.shutdown();
    if (!quiet)
      std::fprintf(stderr, "%s\n", server.stats_text().c_str());
    return 0;
  }

  TcpListener listener(server, tcp);
  std::string error;
  if (!listener.open(&error)) {
    std::fprintf(stderr, "archline_serverd: %s\n", error.c_str());
    return 1;
  }
  if (!quiet)
    std::fprintf(stderr,
                 "archline_serverd: listening on %s:%u (%d shards via %s, "
                 "%d workers, %d heavy-capable, lanes %zu/%zu, "
                 "cache %zu/%zu shards, max %zu conns)\n",
                 tcp.bind_address.c_str(), listener.port(),
                 listener.shard_count(),
                 listener.reuseport_active() ? "SO_REUSEPORT" : "handoff",
                 server.options().threads, server.options().heavy_workers,
                 options.queue_capacity, options.heavy_lane_capacity,
                 options.cache_capacity, options.cache_shards,
                 tcp.max_connections);

  // The accept loop polls, so it revisits these flags every
  // poll_interval_ms. SIGUSR1 dumps are serviced by a helper thread to
  // keep the accept path simple.
  std::atomic<bool> stop{false};
  std::thread signal_watcher([&] {
    while (!g_stop) {
      if (g_dump_stats) {
        g_dump_stats = 0;
        std::fprintf(stderr, "%s\n", server.stats_text().c_str());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    stop.store(true, std::memory_order_release);
  });

  listener.run(stop);
  signal_watcher.join();
  server.shutdown();
  if (!quiet)
    std::fprintf(stderr, "%s\n", server.stats_text().c_str());
  return 0;
}
