// Ablation: how much measurement stack do you actually need?
//
// Degrades the simulated PowerMon 2 (sampling rate, ADC resolution,
// quantization on/off) and reports the energy-estimate error of the
// paper's mean-power integrator against the exact trace integral.

#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "platforms/platform_db.hpp"
#include "powermon/integrator.hpp"
#include "report/si.hpp"
#include "report/table.hpp"
#include "sim/factory.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace archline;
namespace rp = report;

/// Measures one Titan kernel with a given sampler config over many runs;
/// returns mean |energy error| vs the exact trace integral.
double mean_energy_error(const powermon::SamplerConfig& cfg,
                         std::uint64_t seed, int runs) {
  const sim::SimMachine machine =
      sim::make_machine(platforms::platform("GTX Titan"));
  sim::KernelDesc k;
  k.label = "ablation";
  k.flops = 4e11;
  k.bytes = 4e10;
  stats::Rng rng(seed);
  std::vector<double> errs;
  for (int i = 0; i < runs; ++i) {
    const sim::RunResult r = machine.run(k, rng);
    const powermon::SampledCapture sampled =
        powermon::sample(r.capture, cfg, rng);
    const powermon::Measurement m = powermon::integrate_mean(sampled);
    errs.push_back(std::abs(m.joules / r.true_energy - 1.0));
  }
  return stats::mean(errs);
}

}  // namespace

int main() {
  bench::banner(
      "Ablation: measurement stack fidelity",
      "Energy-estimate error of the mean-power integrator vs the exact "
      "trace integral, as the sampler degrades (GTX Titan workload).");

  rp::Table t({"Sampler", "mean |energy error|"});
  rp::CsvWriter csv({"sampler", "mean_abs_energy_error"});

  const auto emit = [&](const std::string& label,
                        const powermon::SamplerConfig& cfg) {
    const double err = mean_energy_error(cfg, 7, 20);
    t.add_row({label, rp::sig_format(err * 100.0, 3) + "%"});
    csv.add_row({label, rp::sig_format(err, 5)});
  };

  {
    powermon::SamplerConfig cfg;
    cfg.quantize = false;
    cfg.timestamp_jitter_s = 0.0;
    emit("ideal (no quantization, no jitter)", cfg);
  }
  emit("PowerMon 2 default (1024 Hz, 12-bit)", powermon::SamplerConfig{});
  for (const double hz : {256.0, 64.0, 16.0}) {
    powermon::SamplerConfig cfg;
    cfg.per_channel_hz = hz;
    cfg.aggregate_hz = hz * 3;
    emit(rp::sig_format(hz, 4) + " Hz per channel", cfg);
  }
  for (const int bits : {10, 8, 6}) {
    powermon::SamplerConfig cfg;
    cfg.adc_bits = bits;
    emit(rp::sig_format(bits, 2) + "-bit ADC", cfg);
  }
  {
    powermon::SamplerConfig cfg;
    cfg.timestamp_jitter_s = 500e-6;
    emit("500 us timestamp jitter", cfg);
  }

  std::printf("%s\n", t.to_text().c_str());
  std::printf("Reading: the paper's estimator is robust to rate reduction "
              "on steady workloads; coarse ADCs dominate the error "
              "budget.\n\n");
  bench::write_csv(csv, "ablation_sampler.csv");
  return 0;
}
