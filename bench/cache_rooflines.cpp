// Extension study: multi-level (cache-aware) rooflines assembled from
// Table I's per-level constants — the full-hierarchy view the paper
// measures (§IV-g) but does not plot.

#include <cstdio>

#include "bench/common.hpp"
#include "experiments/exp_cache_roofline.hpp"
#include "report/ascii_plot.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main() {
  using namespace archline;
  namespace ex = experiments;
  namespace rp = report;

  bench::banner(
      "Extension: cache-aware rooflines",
      "Per-platform performance rooflines with the working set resident "
      "in L1/scratchpad, L2, and DRAM (model lines + simulated dots).");

  const auto platforms_data = ex::run_cache_rooflines();
  rp::CsvWriter csv({"platform", "level", "intensity", "model_flops",
                     "measured_flops", "model_flopJ", "measured_flopJ"});

  for (const ex::CacheRooflinePlatform& p : platforms_data) {
    std::printf("-- %s (ridge points:", p.platform.c_str());
    for (const double r : p.ridge_points())
      std::printf(" %s", rp::sig_format(r, 3).c_str());
    std::printf(" flop:B)\n");

    rp::AsciiPlot plot("   flop/s by resident level", 64, 12);
    plot.set_y_scale(rp::AxisScale::Log2);
    const char glyphs[] = {'1', '2', 'D'};
    std::size_t gi = 0;
    for (const ex::CacheRooflineLevel& lvl : p.levels) {
      rp::Series s;
      s.name = core::to_string(lvl.level);
      s.glyph = glyphs[gi++ % 3];
      for (const ex::CacheRooflinePoint& pt : lvl.points) {
        s.x.push_back(pt.intensity);
        s.y.push_back(pt.model_perf);
        csv.add_row({p.platform, core::to_string(lvl.level),
                     rp::sig_format(pt.intensity, 5),
                     rp::sig_format(pt.model_perf, 5),
                     rp::sig_format(pt.measured_perf, 5),
                     rp::sig_format(pt.model_efficiency, 5),
                     rp::sig_format(pt.measured_efficiency, 5)});
      }
      plot.add_series(std::move(s));
    }
    std::printf("%s\n", plot.render().c_str());
  }
  std::printf(
      "Reading: each level's roofline ridge moves left as bandwidth "
      "grows; cache-resident\nworking sets stay compute-bound far below "
      "the DRAM balance point, which is why the\npaper's cache kernels "
      "can measure eps_L1/eps_L2 cleanly.\n\n");
  bench::write_csv(csv, "cache_rooflines.csv");
  return 0;
}
