// Regenerates the §V-B worked example: effective streaming energy per byte
// (eps_mem + pi1 * tau_mem) across platforms, the raw-vs-effective
// ordering inversion, and the memory-hierarchy cost table.

#include <cstdio>

#include "bench/common.hpp"
#include "core/units.hpp"
#include "experiments/exp_memhier.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main() {
  using namespace archline;
  namespace ex = experiments;
  namespace rp = report;

  bench::banner(
      "SV-B worked example",
      "What does it cost to stream one byte? The constant-power charge "
      "pi1*tau_mem inverts the raw eps_mem ordering.");

  const ex::MemHierResult r = ex::run_memhier();

  rp::Table t({"Platform", "eps_mem pJ/B", "pi1*tau_mem pJ/B",
               "effective pJ/B", "eps_L1 pJ/B", "eps_L2 pJ/B",
               "eps_rand nJ", "rand/mem", "L1<=L2<=mem"});
  rp::CsvWriter csv({"platform", "eps_mem_pJ", "constant_charge_pJ",
                     "effective_pJ", "eps_l1_pJ", "eps_l2_pJ",
                     "eps_rand_nJ", "rand_to_mem_ratio"});

  const auto pj = [](double joules) {
    return rp::sig_format(units::to_picojoules(joules), 3);
  };
  for (const ex::MemHierRow& row : r.rows) {
    t.add_row({row.platform, pj(row.eps_mem), pj(row.constant_charge),
               pj(row.effective_eps),
               row.eps_l1 ? pj(*row.eps_l1) : "-",
               row.eps_l2 ? pj(*row.eps_l2) : "-",
               row.eps_rand ? rp::sig_format(*row.eps_rand * 1e9, 3) : "-",
               row.eps_rand ? rp::sig_format(row.rand_to_mem_ratio, 3)
                            : "-",
               row.level_ordering_holds ? "yes" : "NO"});
    csv.add_row({row.platform, pj(row.eps_mem), pj(row.constant_charge),
                 pj(row.effective_eps),
                 row.eps_l1 ? pj(*row.eps_l1) : "",
                 row.eps_l2 ? pj(*row.eps_l2) : "",
                 row.eps_rand ? rp::sig_format(*row.eps_rand * 1e9, 4) : "",
                 row.eps_rand ? rp::sig_format(row.rand_to_mem_ratio, 4)
                              : ""});
  }
  std::printf("%s\n", t.to_text().c_str());

  std::printf("cheapest raw byte:       %s (paper: Xeon Phi, 136 pJ/B)\n",
              r.cheapest_raw.c_str());
  std::printf("cheapest effective byte: %s (paper: Arndale GPU, 671 pJ/B; "
              "GTX Titan 782 pJ/B; Xeon Phi 1.13 nJ/B)\n\n",
              r.cheapest_effective.c_str());

  bench::write_csv(csv, "memhier_energy.csv");
  return 0;
}
