// Extension study: the double-precision cost structure implied by
// Table I's eps_d column (the paper's figures are single-precision).

#include <cstdio>

#include "bench/common.hpp"
#include "core/units.hpp"
#include "experiments/exp_dp.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main() {
  using namespace archline;
  namespace ex = experiments;
  namespace rp = report;

  bench::banner(
      "Extension: double-precision analysis (Table I column 9)",
      "DP:SP energy and rate ratios, DP peak efficiency, and balance "
      "shifts for the nine DP-capable platforms.");

  const ex::DpResult r = ex::run_dp_analysis();

  rp::Table t({"Platform", "eps_s pJ", "eps_d pJ", "eps_d/eps_s",
               "SP/DP rate", "DP peak flop/J", "B_tau SP", "B_tau DP"});
  rp::CsvWriter csv({"platform", "eps_s_pJ", "eps_d_pJ", "energy_ratio",
                     "rate_ratio", "dp_peak_flop_per_J", "sp_balance",
                     "dp_balance"});
  for (const ex::DpRow& row : r.rows) {
    t.add_row({row.platform,
               rp::sig_format(units::to_picojoules(row.sp_eps_flop), 3),
               rp::sig_format(units::to_picojoules(row.dp_eps_flop), 3),
               rp::sig_format(row.energy_ratio, 3),
               rp::sig_format(row.rate_ratio, 3),
               rp::si_format(row.dp_peak_efficiency, "flop/J", 3),
               rp::sig_format(row.sp_balance, 3),
               rp::sig_format(row.dp_balance, 3)});
    csv.add_row({row.platform,
                 rp::sig_format(units::to_picojoules(row.sp_eps_flop), 5),
                 rp::sig_format(units::to_picojoules(row.dp_eps_flop), 5),
                 rp::sig_format(row.energy_ratio, 5),
                 rp::sig_format(row.rate_ratio, 5),
                 rp::sig_format(row.dp_peak_efficiency, 5),
                 rp::sig_format(row.sp_balance, 5),
                 rp::sig_format(row.dp_balance, 5)});
  }
  std::printf("%s\n", t.to_text().c_str());

  std::printf("no DP support:");
  for (const std::string& n : r.no_dp) std::printf(" %s;", n.c_str());
  std::printf("\nmost DP-energy-efficient: %s | lowest eps_d/eps_s "
              "penalty: %s\n",
              r.most_efficient_dp.c_str(), r.lowest_penalty.c_str());
  std::printf("DP balance < SP balance everywhere: pricier flops make "
              "every algorithm relatively more compute-bound.\n\n");

  bench::write_csv(csv, "dp_analysis.csv");
  return 0;
}
