// Regenerates Fig. 7a/7b: hypothetical performance and energy efficiency
// as the usable power cap shrinks to delta_pi / k.

#include <cstdio>

#include "bench/common.hpp"
#include "experiments/exp_throttle.hpp"
#include "platforms/platform_db.hpp"
#include "report/ascii_plot.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main() {
  using namespace archline;
  namespace ex = experiments;
  namespace rp = report;

  bench::banner(
      "Figure 7 (a: performance, b: energy efficiency)",
      "Hypothetical performance and flop/J as the cap drops to delta_pi/k; "
      "log-log, normalized per platform to its full-cap value.");

  const ex::ThrottleResult r = ex::run_throttle_study();
  rp::CsvWriter csv({"platform", "cap_divisor", "intensity",
                     "flops_per_sec", "flops_per_joule"});

  for (const ex::ThrottlePanel& p : r.panels) {
    std::printf("-- %s\n", p.platform.c_str());
    for (const char metric : {'a', 'b'}) {
      rp::AsciiPlot plot(metric == 'a' ? "   7a: flop/s (normalized)"
                                       : "   7b: flop/J (normalized)",
                         64, 10);
      plot.set_y_scale(rp::AxisScale::Log2);
      const char glyphs[] = {'1', '2', '4', '8'};
      std::size_t gi = 0;
      // Normalize to the k = 1 curve's maximum.
      double norm = 0.0;
      for (const core::ThrottlePoint& pt : p.points)
        if (pt.cap_divisor == 1.0)
          norm = std::max(norm, metric == 'a' ? pt.performance
                                              : pt.efficiency);
      for (const double k : p.cap_divisors) {
        rp::Series s;
        s.name = "dpi/" + rp::sig_format(k, 1);
        s.glyph = glyphs[gi++ % 4];
        for (const core::ThrottlePoint& pt : p.points) {
          if (pt.cap_divisor != k) continue;
          const double v =
              (metric == 'a' ? pt.performance : pt.efficiency) / norm;
          s.x.push_back(pt.intensity);
          s.y.push_back(v);
        }
        plot.add_series(std::move(s));
      }
      std::printf("%s\n", plot.render().c_str());
    }
    for (const core::ThrottlePoint& pt : p.points)
      csv.add_row({p.platform, rp::sig_format(pt.cap_divisor, 3),
                   rp::sig_format(pt.intensity, 5),
                   rp::sig_format(pt.performance, 5),
                   rp::sig_format(pt.efficiency, 5)});
  }

  // The paper's two degradation call-outs.
  const double titan_low = ex::throttled_perf_ratio(
      platforms::platform("GTX Titan").machine(), 0.25, 8.0);
  const double nuc_high = ex::throttled_perf_ratio(
      platforms::platform("NUC CPU").machine(), 128.0, 8.0);
  std::printf("GTX Titan retains %s of its performance at I=1/4 under "
              "dpi/8 (degrades least at low intensity)\n",
              rp::percent_format(titan_low).c_str());
  std::printf("NUC CPU retains %s at I=128 under dpi/8 (degrades least at "
              "high intensity)\n\n",
              rp::percent_format(nuc_high).c_str());

  bench::write_csv(csv, "fig7_throttling.csv");
  return 0;
}
