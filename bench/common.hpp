#pragma once
// Shared plumbing for the bench (figure/table regeneration) binaries:
// banner printing and CSV output location.

#include <cstdio>
#include <filesystem>
#include <string>

#include "report/csv.hpp"

namespace archline::bench {

/// Directory where bench binaries drop their CSVs (created on demand).
inline std::filesystem::path output_dir() {
  return std::filesystem::path("bench_out");
}

/// Prints the standard banner for a regenerated paper artifact.
inline void banner(const std::string& artifact, const std::string& caption) {
  std::printf("=====================================================\n");
  std::printf("archline | %s\n", artifact.c_str());
  std::printf("%s\n", caption.c_str());
  std::printf("=====================================================\n\n");
}

/// Writes a CSV into the bench output directory and reports the path.
inline void write_csv(const report::CsvWriter& csv, const std::string& name) {
  const std::filesystem::path path = output_dir() / name;
  csv.write_file(path);
  std::printf("[csv] wrote %s (%zu rows)\n", path.string().c_str(),
              csv.row_count());
}

}  // namespace archline::bench
