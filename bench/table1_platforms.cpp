// Regenerates Table I: for each of the twelve platforms, run the automated
// tuning search and the full microbenchmark campaign on the simulated
// machine, fit the capped model, and print fitted constants side by side
// with the published ones.

#include <cstdio>

#include "bench/common.hpp"
#include "core/units.hpp"
#include "experiments/exp_table1.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

namespace {

using namespace archline;
namespace ex = experiments;
namespace rp = report;

std::string pj(double joules) {
  return rp::sig_format(units::to_picojoules(joules), 3);
}

std::string gops(double per_second) {
  return rp::sig_format(per_second / 1e9, 3);
}

}  // namespace

int main() {
  bench::banner("Table I",
                "Platform summary: fitted model constants (refit from "
                "simulated measurements) vs published values.");

  const std::vector<ex::Table1Row> rows = ex::run_table1();

  rp::Table main_table({"Platform", "pi1 W (pub)", "dpi W (pub)",
                        "eps_s pJ (pub)", "eps_mem pJ/B (pub)",
                        "GF/s sust (pub)", "GB/s sust (pub)", "worst err",
                        "ident err", "R^2"});
  rp::CsvWriter csv({"platform", "param", "published", "refit",
                     "rel_error"});

  for (const ex::Table1Row& row : rows) {
    const core::MachineParams truth = row.spec->machine();
    const core::MachineParams& got = row.refit.machine;
    main_table.add_row(
        {row.spec->name,
         rp::sig_format(got.pi1, 3) + " (" + rp::sig_format(truth.pi1, 3) +
             ")",
         rp::sig_format(got.delta_pi, 3) + " (" +
             rp::sig_format(truth.delta_pi, 3) + ")",
         pj(got.eps_flop) + " (" + pj(truth.eps_flop) + ")",
         pj(got.eps_mem) + " (" + pj(truth.eps_mem) + ")",
         gops(got.peak_flops()) + " (" + gops(truth.peak_flops()) + ")",
         gops(got.peak_bandwidth()) + " (" + gops(truth.peak_bandwidth()) +
             ")",
         rp::percent_format(row.worst_param_error()),
         rp::percent_format(row.worst_identifiable_error()),
         rp::sig_format(row.refit.r_squared_perf, 3)});

    const auto emit = [&csv, &row](const char* param, double published,
                                   double refit) {
      csv.add_row({row.spec->name, param, rp::sig_format(published, 6),
                   rp::sig_format(refit, 6),
                   rp::sig_format(refit / published - 1.0, 4)});
    };
    emit("tau_flop_s", truth.tau_flop, got.tau_flop);
    emit("eps_flop_J", truth.eps_flop, got.eps_flop);
    emit("tau_mem_s_per_B", truth.tau_mem, got.tau_mem);
    emit("eps_mem_J_per_B", truth.eps_mem, got.eps_mem);
    emit("pi1_W", truth.pi1, got.pi1);
    emit("delta_pi_W", truth.delta_pi, got.delta_pi);
    if (row.refit.dp && row.spec->flop_dp)
      emit("eps_flop_dp_J", row.spec->flop_dp->energy_per_op,
           row.refit.dp->eps_flop);
    if (row.refit.l1 && row.spec->mem_l1)
      emit("eps_l1_J_per_B", row.spec->mem_l1->energy_per_op,
           row.refit.l1->eps_byte);
    if (row.refit.l2 && row.spec->mem_l2)
      emit("eps_l2_J_per_B", row.spec->mem_l2->energy_per_op,
           row.refit.l2->eps_byte);
    if (row.refit.random && row.spec->mem_rand)
      emit("eps_rand_J_per_access", row.spec->mem_rand->energy_per_op,
           row.refit.random->eps_access);
  }

  std::printf("%s\n", main_table.to_text().c_str());

  rp::Table tune_table({"Platform", "tuned GF/s", "of peak", "unroll",
                        "vec", "fma", "asm", "tuned GB/s", "of bw peak"});
  for (const ex::Table1Row& row : rows) {
    tune_table.add_row(
        {row.spec->name, gops(row.tune_sp.throughput),
         rp::percent_format(row.tune_sp.efficiency),
         rp::sig_format(row.tune_sp.config.unroll, 3),
         rp::sig_format(row.tune_sp.config.vector_width, 3),
         row.tune_sp.config.fma ? "y" : "n",
         row.tune_sp.config.asm_tuned ? "y" : "n",
         gops(row.tune_bw.throughput),
         rp::percent_format(row.tune_bw.efficiency)});
  }
  std::printf("Automated \"hand-tuning\" search results (paper SIV-e):\n%s\n",
              tune_table.to_text().c_str());

  bench::write_csv(csv, "table1_refit.csv");
  return 0;
}
