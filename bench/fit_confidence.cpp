// Extension study: parameter uncertainty by bootstrap.
//
// Table I publishes point estimates; this bench attaches 95% intervals
// and shows the identifiability structure directly: delta_pi's interval
// explodes exactly where the cap barely binds.

#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "fit/bootstrap_fit.hpp"
#include "microbench/parallel.hpp"
#include "sim/factory.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main() {
  using namespace archline;
  namespace rp = report;

  bench::banner(
      "Extension: bootstrap confidence intervals on fitted constants",
      "95% percentile intervals over 40 observation resamples per "
      "platform; width = how well the sweep determines each constant.");

  microbench::SuiteOptions suite_opt;
  suite_opt.repeats = 2;
  suite_opt.target_seconds = 0.1;
  suite_opt.include_double = false;
  suite_opt.include_caches = false;
  suite_opt.include_random = false;

  rp::Table t({"Platform", "pi1 (pub)", "dpi (pub)", "eps_s half-width",
               "eps_mem half-width", "pi1 half-width", "dpi half-width"});
  rp::CsvWriter csv({"platform", "param", "estimate", "ci_lo", "ci_hi",
                     "rel_halfwidth"});

  for (const char* name :
       {"GTX Titan", "Xeon Phi", "NUC CPU", "Arndale GPU",
        "PandaBoard ES", "Desktop CPU"}) {
    const platforms::PlatformSpec& spec = platforms::platform(name);
    const sim::SimMachine machine = sim::make_machine(spec);
    stats::Rng rng(microbench::campaign_seed(20140519, spec.name));
    const microbench::SuiteData data =
        microbench::run_suite(machine, suite_opt, rng);

    fit::BootstrapFitOptions opt;
    opt.replicates = 40;
    opt.fit.idle_watts_hint = data.idle_watts;
    for (const microbench::Observation& o : data.dram_sp)
      opt.fit.max_watts_hint = std::max(opt.fit.max_watts_hint, o.watts);
    const fit::FitConfidence c = fit::bootstrap_fit(data.dram_sp, opt);
    const auto hw = c.relative_halfwidths();

    t.add_row({name,
               rp::sig_format(c.pi1.estimate, 3) + " (" +
                   rp::sig_format(spec.pi1, 3) + ")",
               rp::sig_format(c.delta_pi.estimate, 3) + " (" +
                   rp::sig_format(spec.delta_pi, 3) + ")",
               rp::percent_format(hw[1]), rp::percent_format(hw[3]),
               rp::percent_format(hw[4]), rp::percent_format(hw[5])});

    const char* names[] = {"tau_flop", "eps_flop", "tau_mem",
                           "eps_mem", "pi1", "delta_pi"};
    const stats::BootstrapInterval* cis[] = {&c.tau_flop, &c.eps_flop,
                                             &c.tau_mem, &c.eps_mem,
                                             &c.pi1, &c.delta_pi};
    for (int i = 0; i < 6; ++i)
      csv.add_row({name, names[i], rp::sig_format(cis[i]->estimate, 6),
                   rp::sig_format(cis[i]->lo, 6),
                   rp::sig_format(cis[i]->hi, 6),
                   rp::sig_format(hw[i], 4)});
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "Reading: the Xeon Phi's delta_pi interval dwarfs the Titan's — "
      "its cap binds by\nonly ~2%%, so the sweep cannot pin it; exactly "
      "the identifiability limit Table I's\npoint estimates hide (see "
      "EXPERIMENTS.md).\n\n");
  bench::write_csv(csv, "fit_confidence.csv");
  return 0;
}
