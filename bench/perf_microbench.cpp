// Library microbenchmarks (google-benchmark): regression guard on the hot
// paths — model evaluation, simulator runs, sampling, fitting, and the
// native host kernels.

#include <benchmark/benchmark.h>

#include "core/roofline.hpp"
#include "fit/model_fit.hpp"
#include "microbench/native_kernels.hpp"
#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"
#include "sim/factory.hpp"

namespace {

using namespace archline;

void BM_ModelTimeEval(benchmark::State& state) {
  const core::MachineParams m = platforms::platform("GTX Titan").machine();
  const core::Workload w = core::Workload::from_intensity(1e12, 2.0);
  for (auto _ : state) benchmark::DoNotOptimize(core::time(m, w));
}
BENCHMARK(BM_ModelTimeEval);

void BM_ModelPowerClosedForm(benchmark::State& state) {
  const core::MachineParams m = platforms::platform("GTX Titan").machine();
  double intensity = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::avg_power_closed_form(m, intensity));
    intensity = intensity < 512.0 ? intensity * 1.01 : 0.1;
  }
}
BENCHMARK(BM_ModelPowerClosedForm);

void BM_SimMachineRun(benchmark::State& state) {
  const sim::SimMachine m =
      sim::make_machine(platforms::platform("GTX Titan"));
  stats::Rng rng(1);
  sim::KernelDesc k;
  k.label = "bench";
  k.flops = 1e12;
  k.bytes = 1e11;
  for (auto _ : state) benchmark::DoNotOptimize(m.run(k, rng));
}
BENCHMARK(BM_SimMachineRun);

void BM_SamplerOneSecondCapture(benchmark::State& state) {
  powermon::PowerTrace t;
  t.add_constant(1.0, 100.0);
  const powermon::Capture cap = powermon::split_across_rails(
      t, powermon::discrete_gpu_rails(), 0.0, 1.0);
  stats::Rng rng(2);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        powermon::sample(cap, powermon::SamplerConfig{}, rng));
}
BENCHMARK(BM_SamplerOneSecondCapture);

void BM_SuiteRunDramSweep(benchmark::State& state) {
  const sim::SimMachine m =
      sim::make_machine(platforms::platform("Xeon Phi"));
  microbench::SuiteOptions opt;
  opt.repeats = 1;
  opt.target_seconds = 0.1;
  opt.include_double = false;
  opt.include_caches = false;
  opt.include_random = false;
  stats::Rng rng(3);
  for (auto _ : state)
    benchmark::DoNotOptimize(microbench::run_suite(m, opt, rng));
}
BENCHMARK(BM_SuiteRunDramSweep);

void BM_FitCappedModel(benchmark::State& state) {
  const sim::SimMachine m =
      sim::make_machine(platforms::platform("GTX 680"));
  microbench::SuiteOptions opt;
  opt.repeats = 2;
  opt.target_seconds = 0.1;
  opt.include_double = false;
  opt.include_caches = false;
  opt.include_random = false;
  stats::Rng rng(4);
  const microbench::SuiteData data = microbench::run_suite(m, opt, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(fit::fit_observations(data.dram_sp));
}
BENCHMARK(BM_FitCappedModel);

void BM_NativeIntensityLadder(benchmark::State& state) {
  const auto elements = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(microbench::run_intensity_ladder(
        elements, 8, core::Precision::Single));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(elements));
}
BENCHMARK(BM_NativeIntensityLadder)->Arg(1 << 12)->Arg(1 << 16);

void BM_NativeStreamTriad(benchmark::State& state) {
  const auto elements = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        microbench::run_stream_triad(elements, core::Precision::Double));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(elements) * 24);
}
BENCHMARK(BM_NativeStreamTriad)->Arg(1 << 14)->Arg(1 << 18);

void BM_NativePointerChase(benchmark::State& state) {
  stats::Rng rng(5);
  const auto slots = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        microbench::run_pointer_chase(slots, slots, rng));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_NativePointerChase)->Arg(1 << 12)->Arg(1 << 18);

}  // namespace

BENCHMARK_MAIN();
