// Extension study: meeting a node power target by capping (the paper's
// delta_pi mechanism, after Rountree et al.'s "Beyond DVFS") vs by
// voltage-frequency scaling.

#include <cstdio>

#include "bench/common.hpp"
#include "core/dvfs.hpp"
#include "core/operating_point.hpp"
#include "core/policy.hpp"
#include "core/roofline.hpp"
#include "core/scenarios.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main() {
  using namespace archline;
  namespace rp = report;

  bench::banner(
      "Extension: power capping vs DVFS",
      "Meet the same worst-case node power target by throttling "
      "(constant per-op costs, the paper's model) or by down-clocking "
      "(per-op energy scales ~f^2).");

  const core::DvfsModel dvfs{.leakage_fraction = 0.3,
                             .scale_memory = false,
                             .min_scale = 0.2};

  rp::Table t({"Platform", "target", "I", "cap flop/s", "dvfs flop/s",
               "cap flop/J", "dvfs flop/J", "dvfs adv", "f scale"});
  rp::CsvWriter csv({"platform", "target_watts", "intensity",
                     "cap_flops", "dvfs_flops", "cap_flopJ", "dvfs_flopJ",
                     "freq_scale"});

  for (const char* name : {"GTX Titan", "Xeon Phi", "Arndale CPU"}) {
    const core::MachineParams m = platforms::platform(name).machine();
    const double full = m.max_power();
    for (const double frac : {0.85, 0.7, 0.55}) {
      const double target = m.pi1 + (full - m.pi1) * frac;
      for (const double intensity : {0.25, 8.0, 128.0}) {
        core::PowerMechanismComparison c;
        try {
          c = core::compare_cap_vs_dvfs(m, dvfs, target, intensity);
        } catch (const std::invalid_argument&) {
          continue;  // target below the voltage floor's reach
        }
        t.add_row({name, rp::sig_format(target, 3) + " W",
                   rp::intensity_label(intensity),
                   rp::si_format(c.cap_performance, "", 3),
                   rp::si_format(c.dvfs_performance, "", 3),
                   rp::si_format(c.cap_efficiency, "", 3),
                   rp::si_format(c.dvfs_efficiency, "", 3),
                   rp::sig_format(c.efficiency_advantage(), 3) + "x",
                   rp::sig_format(c.frequency_scale, 3)});
        csv.add_row({name, rp::sig_format(target, 5),
                     rp::sig_format(intensity, 5),
                     rp::sig_format(c.cap_performance, 5),
                     rp::sig_format(c.dvfs_performance, 5),
                     rp::sig_format(c.cap_efficiency, 5),
                     rp::sig_format(c.dvfs_efficiency, 5),
                     rp::sig_format(c.frequency_scale, 5)});
      }
    }
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "Reading: capping leaves bandwidth-bound work (low I) almost "
      "untouched — the governor\nonly bites where power demand is high — "
      "while DVFS slows the clock for everyone but\nbuys back per-flop "
      "energy in compute-bound regions. The better mechanism is\n"
      "intensity-dependent, which is exactly the kind of question the "
      "extended roofline\nmodel makes answerable analytically.\n\n");
  bench::write_csv(csv, "ext_dvfs_vs_cap.csv");

  // -------------------------------------------------------------------
  // The same question over the platforms' DISCRETE operating-point
  // ladders (the continuous sweep above is the limit case): per point,
  // the raw eq. (1)-(3) outcomes; per objective, what the policy engine
  // would pick given a relaxed deadline. This section is additive — the
  // comparison table above is pinned byte-for-byte against the
  // pre-refactor build.
  std::printf(
      "Discrete ladders: each platform's default operating points at "
      "I = 8 flop/B,\nand the policy engine's pick per objective "
      "(period = 2x nominal time).\n\n");
  rp::Table lt({"Platform", "point", "time", "energy", "avg W", "EDP",
                "regime"});
  rp::CsvWriter lcsv({"platform", "point", "freq_scale", "time_s",
                      "energy_j", "avg_power_w", "edp"});
  const core::Workload lw = core::Workload::from_intensity(1e12, 8.0);
  for (const char* name : {"GTX Titan", "Xeon Phi", "Arndale CPU"}) {
    const platforms::PlatformSpec& spec = platforms::platform(name);
    const core::MachineParams m = spec.machine();
    const auto rows =
        core::operating_point_sweep(m, spec.operating_points.points, lw);
    for (const auto& r : rows) {
      const auto& p = spec.operating_points.points[r.point_index];
      lt.add_row({name, p.label, rp::si_format(r.time_s, "s", 3),
                  rp::si_format(r.energy_j, "J", 3),
                  rp::sig_format(r.avg_power_w, 3),
                  rp::si_format(r.edp, "Js", 3),
                  core::regime_name(r.regime)});
      lcsv.add_row({name, p.label, rp::sig_format(p.freq_scale, 5),
                    rp::sig_format(r.time_s, 5), rp::sig_format(r.energy_j, 5),
                    rp::sig_format(r.avg_power_w, 5),
                    rp::sig_format(r.edp, 5)});
    }
    core::PolicyRequest preq;
    preq.workload = lw;
    preq.period_s = 2.0 * core::time(m, lw);
    for (const core::Objective obj :
         {core::Objective::MinEnergy, core::Objective::MinTime,
          core::Objective::MinEdp}) {
      preq.objective = obj;
      const core::PolicyAdvice a =
          core::policy_advise(m, spec.operating_points, preq);
      if (!a.has_recommendation()) continue;
      const core::PlanEvaluation& best = a.recommended();
      std::printf("  %-12s %-10s -> %s @ %s (E=%s, T=%s)\n", name,
                  core::to_string(obj), core::to_string(best.kind),
                  spec.operating_points.points[best.point_index].label.c_str(),
                  rp::si_format(best.energy_j, "J", 3).c_str(),
                  rp::si_format(best.time_s, "s", 3).c_str());
    }
  }
  std::printf("\n%s\n", lt.to_text().c_str());
  bench::write_csv(lcsv, "ext_dvfs_ladder.csv");
  return 0;
}
