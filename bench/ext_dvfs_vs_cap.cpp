// Extension study: meeting a node power target by capping (the paper's
// delta_pi mechanism, after Rountree et al.'s "Beyond DVFS") vs by
// voltage-frequency scaling.

#include <cstdio>

#include "bench/common.hpp"
#include "core/dvfs.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main() {
  using namespace archline;
  namespace rp = report;

  bench::banner(
      "Extension: power capping vs DVFS",
      "Meet the same worst-case node power target by throttling "
      "(constant per-op costs, the paper's model) or by down-clocking "
      "(per-op energy scales ~f^2).");

  const core::DvfsModel dvfs{.leakage_fraction = 0.3,
                             .scale_memory = false,
                             .min_scale = 0.2};

  rp::Table t({"Platform", "target", "I", "cap flop/s", "dvfs flop/s",
               "cap flop/J", "dvfs flop/J", "dvfs adv", "f scale"});
  rp::CsvWriter csv({"platform", "target_watts", "intensity",
                     "cap_flops", "dvfs_flops", "cap_flopJ", "dvfs_flopJ",
                     "freq_scale"});

  for (const char* name : {"GTX Titan", "Xeon Phi", "Arndale CPU"}) {
    const core::MachineParams m = platforms::platform(name).machine();
    const double full = m.max_power();
    for (const double frac : {0.85, 0.7, 0.55}) {
      const double target = m.pi1 + (full - m.pi1) * frac;
      for (const double intensity : {0.25, 8.0, 128.0}) {
        core::PowerMechanismComparison c;
        try {
          c = core::compare_cap_vs_dvfs(m, dvfs, target, intensity);
        } catch (const std::invalid_argument&) {
          continue;  // target below the voltage floor's reach
        }
        t.add_row({name, rp::sig_format(target, 3) + " W",
                   rp::intensity_label(intensity),
                   rp::si_format(c.cap_performance, "", 3),
                   rp::si_format(c.dvfs_performance, "", 3),
                   rp::si_format(c.cap_efficiency, "", 3),
                   rp::si_format(c.dvfs_efficiency, "", 3),
                   rp::sig_format(c.efficiency_advantage(), 3) + "x",
                   rp::sig_format(c.frequency_scale, 3)});
        csv.add_row({name, rp::sig_format(target, 5),
                     rp::sig_format(intensity, 5),
                     rp::sig_format(c.cap_performance, 5),
                     rp::sig_format(c.dvfs_performance, 5),
                     rp::sig_format(c.cap_efficiency, 5),
                     rp::sig_format(c.dvfs_efficiency, 5),
                     rp::sig_format(c.frequency_scale, 5)});
      }
    }
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "Reading: capping leaves bandwidth-bound work (low I) almost "
      "untouched — the governor\nonly bites where power demand is high — "
      "while DVFS slows the clock for everyone but\nbuys back per-flop "
      "energy in compute-bound regions. The better mechanism is\n"
      "intensity-dependent, which is exactly the kind of question the "
      "extended roofline\nmodel makes answerable analytically.\n\n");
  bench::write_csv(csv, "ext_dvfs_vs_cap.csv");
  return 0;
}
