// Regenerates Fig. 1: GTX Titan vs Arndale GPU — normalized performance,
// energy efficiency, and power across intensity, plus the power-matched
// "47 x Arndale GPU" hypothetical system.

#include <cstdio>

#include "bench/common.hpp"
#include "experiments/exp_fig1.hpp"
#include "report/ascii_plot.hpp"
#include "report/si.hpp"
#include "report/svg_plot.hpp"
#include "report/table.hpp"

namespace {

using namespace archline;
namespace ex = experiments;
namespace rp = report;

void plot_metric(const ex::Fig1Result& r, const char* title,
                 double ex::Fig1Point::*model,
                 double ex::Fig1Point::*measured, rp::AxisScale y_scale) {
  rp::AsciiPlot plot(title, 68, 16);
  plot.set_y_scale(y_scale);
  const auto series = [&](const std::vector<ex::Fig1Point>& pts,
                          double ex::Fig1Point::*field, std::string name,
                          char glyph) {
    rp::Series s;
    s.name = std::move(name);
    s.glyph = glyph;
    for (const ex::Fig1Point& p : pts) {
      const double v = p.*field;
      if (v <= 0.0) continue;
      s.x.push_back(p.intensity);
      s.y.push_back(v);
    }
    plot.add_series(std::move(s));
  };
  series(r.big, model, r.big_name + " (model)", '-');
  series(r.big, measured, r.big_name + " (meas)", 'o');
  series(r.small_, model, r.small_name + " (model)", '=');
  series(r.small_, measured, r.small_name + " (meas)", 'x');
  series(r.aggregate, model,
         std::to_string(r.aggregate_count) + "x " + r.small_name, '#');
  std::printf("%s\n", plot.render().c_str());
}

void write_svg(const ex::Fig1Result& r, const char* title,
               const char* filename, double ex::Fig1Point::*model,
               double ex::Fig1Point::*measured) {
  rp::SvgPlot svg(title);
  svg.set_y_scale(rp::AxisScale::Log2);
  const auto series = [&](const std::vector<ex::Fig1Point>& pts,
                          double ex::Fig1Point::*field, std::string name,
                          bool scatter) {
    rp::Series s;
    s.name = std::move(name);
    for (const ex::Fig1Point& p : pts) {
      const double v = p.*field;
      if (v <= 0.0) continue;
      s.x.push_back(p.intensity);
      s.y.push_back(v);
    }
    if (scatter) svg.add_scatter(std::move(s));
    else svg.add_line(std::move(s));
  };
  series(r.big, model, r.big_name, false);
  series(r.big, measured, r.big_name + " (meas)", true);
  series(r.small_, model, r.small_name, false);
  series(r.small_, measured, r.small_name + " (meas)", true);
  series(r.aggregate, model,
         std::to_string(r.aggregate_count) + "x " + r.small_name, false);
  const auto path = archline::bench::output_dir() / filename;
  svg.write_file(path);
  std::printf("[svg] wrote %s\n", path.string().c_str());
}

}  // namespace

int main() {
  bench::banner(
      "Figure 1",
      "Time-, energy-, and power-efficiency of a mobile GPU vs a desktop "
      "GPU over varying intensity; dots = simulated measurements.");

  const ex::Fig1Result r = ex::run_fig1();

  plot_metric(r, "Flop / Time [flop/s]", &ex::Fig1Point::model_perf,
              &ex::Fig1Point::measured_perf, rp::AxisScale::Log2);
  plot_metric(r, "Flop / Energy [flop/J]",
              &ex::Fig1Point::model_efficiency,
              &ex::Fig1Point::measured_efficiency, rp::AxisScale::Log2);
  plot_metric(r, "Power [W]", &ex::Fig1Point::model_power,
              &ex::Fig1Point::measured_power, rp::AxisScale::Log2);

  rp::Table summary({"Quantity", "Value"});
  summary.add_row({"power-matched aggregate",
                   std::to_string(r.aggregate_count) + " x " + r.small_name});
  summary.add_row({"flop/J tie intensity",
                   rp::sig_format(r.efficiency_crossover, 3) + " flop:B"});
  summary.add_row({"aggregate best speedup (bandwidth-bound)",
                   rp::sig_format(r.aggregate_peak_speedup, 3) + "x"});
  summary.add_row({"aggregate ratio at high intensity",
                   rp::sig_format(r.aggregate_peak_ratio, 3) + "x"});
  std::printf("%s\n", summary.to_text().c_str());
  std::printf(
      "Paper headline: parity in flop/J out to I ~ 4, aggregate up to\n"
      "~1.6x faster below I ~ 4, under 1/2 the peak for compute-bound.\n\n");

  rp::CsvWriter csv({"intensity", "series", "model_flops", "model_flopJ",
                     "model_watts", "meas_flops", "meas_flopJ",
                     "meas_watts"});
  const auto emit = [&csv](const std::vector<ex::Fig1Point>& pts,
                           const std::string& name) {
    for (const ex::Fig1Point& p : pts)
      csv.add_row({rp::sig_format(p.intensity, 6), name,
                   rp::sig_format(p.model_perf, 6),
                   rp::sig_format(p.model_efficiency, 6),
                   rp::sig_format(p.model_power, 6),
                   rp::sig_format(p.measured_perf, 6),
                   rp::sig_format(p.measured_efficiency, 6),
                   rp::sig_format(p.measured_power, 6)});
  };
  emit(r.big, r.big_name);
  emit(r.small_, r.small_name);
  emit(r.aggregate, "aggregate");
  bench::write_csv(csv, "fig1_titan_vs_arndale.csv");

  write_svg(r, "Fig. 1: Flop / Time", "fig1_performance.svg",
            &ex::Fig1Point::model_perf, &ex::Fig1Point::measured_perf);
  write_svg(r, "Fig. 1: Flop / Energy", "fig1_efficiency.svg",
            &ex::Fig1Point::model_efficiency,
            &ex::Fig1Point::measured_efficiency);
  write_svg(r, "Fig. 1: Power", "fig1_power.svg",
            &ex::Fig1Point::model_power, &ex::Fig1Point::measured_power);
  return 0;
}
