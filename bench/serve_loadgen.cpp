// serve_loadgen — closed-loop load generator for archline_serverd.
//
// Drives a mixed workload (default 90% predict / 10% fit) with a small
// repeated key pool, so the server's response cache is exercised the
// way production traffic would: most requests are cache hits, fits are
// ~10^4x the cost of predictions on a miss and nearly free on a hit.
//
// Usage:
//   serve_loadgen [--host H] [--port N] [--connections N] [--threads N]
//                 [--requests N] [--pipeline N] [--keys N]
//                 [--fit-frac F] [--seed S] [--scenario NAME]
//                 [--inproc] [--json]
//
// Scenarios (--scenario):
//   mixed            the default workload described above
//   heavy-starvation one client floods cache-defeating "fit" requests
//                    (each a real solver run) while the others send
//                    predicts one at a time; the reported client batch
//                    latency IS per-predict latency under the flood —
//                    the number the server's per-class lanes bound
//   observe-heavy    a live-learning ingest workload: 70% observe
//                    (streaming measured tuples, never cached), 20%
//                    predict, 10% params. Every connection draws from
//                    its own PCG32 stream, so the interleaving of
//                    ingest and reads is reproducible run to run
//   batch-predict    pure predict_batch traffic with a deterministic
//                    spread of batch sizes (1, 8, 64, 256 cycling over
//                    the key pool), so one run crosses the classifier
//                    boundary and exercises both the Light and Heavy
//                    lanes; replies are cacheable, so the determinism
//                    check replays byte-identically
//   trace-replay     an embedded codec-like trace: 12-frame GOPs
//                    (IBBPBBPBBPBB) of per-frame predicts whose
//                    flops/intensity follow the frame type, with one
//                    policy_advise at each GOP boundary (objective
//                    cycling min_energy/min_time/min_edp, period = 2x
//                    the GOP's nominal time). Connections replay the
//                    same trace from staggered offsets, so the mix is
//                    cache-heavy the way a steady control loop is; all
//                    replies are cacheable and replay byte-identically
//
// Modes:
//   TCP (default)  open --connections non-blocking sockets to a running
//                  archline_serverd, multiplexed over --threads client
//                  threads via poll(), each pipelining --pipeline
//                  requests deep — so 64+ concurrent connections cost
//                  the client a handful of threads, and the server's
//                  event loop is exercised by real concurrency, not
//                  just pipelining on one socket
//   --inproc       run the Server inside this process and call it
//                  directly from --connections threads (no sockets; for
//                  sandboxes and CI)
//
// Reports: achieved req/s, client-side batch latency, the server's own
// p50/p95/p99 and cache hit rate (via a "stats" request), and a
// determinism check (byte-identical responses for repeated requests).
// All randomness is PCG32 with a fixed seed, so two runs issue the
// identical request stream.
//
// --json replaces the human report with a single JSON summary object on
// stdout (machine-readable: req/s, latency percentiles, cache hit/miss
// split, determinism) so CI can archive the run as an artifact.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/roofline.hpp"
#include "platforms/platform_db.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "stats/rng.hpp"

namespace {

using namespace archline;

struct Config {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7411;
  int connections = 4;
  int threads = 0;  ///< client threads; 0 = min(connections, hw)
  long requests = 200000;
  int pipeline = 256;
  int keys = 64;          ///< distinct predict requests in the pool
  int fit_keys = 4;       ///< distinct fit requests in the pool
  double fit_frac = 0.10;
  std::uint64_t seed = 42;
  std::string scenario = "mixed";  ///< "mixed" | "heavy-starvation"
  bool inproc = false;
  bool json = false;  ///< emit one JSON summary object instead of text
};

/// Prefixes a unique id onto a pre-dumped request line, producing a
/// distinct cache key per call: `{"type":...}` -> `{"id":N,"type":...}`.
/// The heavy-starvation flood uses this so every fit is a real solver
/// run instead of a cache hit.
std::string with_unique_id(const std::string& line, long id) {
  std::string out = "{\"id\":";
  out += std::to_string(id);
  out += ',';
  out.append(line, 1, line.size() - 1);
  return out;
}

// ---- Request pool ---------------------------------------------------------

/// Distinct predict requests: platforms x log-spaced intensities.
std::vector<std::string> make_predict_pool(int keys) {
  const auto names = platforms::platform_names();
  std::vector<std::string> pool;
  pool.reserve(static_cast<std::size_t>(keys));
  for (int i = 0; i < keys; ++i) {
    serve::Json req = serve::Json::object();
    req.set("type", "predict");
    req.set("platform", names[static_cast<std::size_t>(i) % names.size()]);
    req.set("flops", 1e9);
    // 1/16 .. 512 flop/B, deterministic spread over the pool.
    req.set("intensity", std::exp2(-4.0 + 13.0 * i / std::max(1, keys - 1)));
    pool.push_back(req.dump());
  }
  return pool;
}

/// Distinct fit requests: synthetic sweeps generated from the model
/// itself (noiseless — the fit recovers the machine, and each request
/// is an expensive Nelder-Mead + LM run on a cache miss).
std::vector<std::string> make_fit_pool(int keys, std::uint64_t seed) {
  const auto names = platforms::platform_names();
  stats::Rng rng(seed, /*stream=*/7);
  std::vector<std::string> pool;
  pool.reserve(static_cast<std::size_t>(keys));
  for (int i = 0; i < keys; ++i) {
    const auto& spec =
        platforms::platform(names[static_cast<std::size_t>(i) % names.size()]);
    const core::MachineParams m = spec.machine();
    serve::Json obs = serve::Json::array();
    for (int p = 0; p < 12; ++p) {
      const double intensity = std::exp2(-4.0 + p);
      const core::Workload w = core::Workload::from_intensity(1e9, intensity);
      serve::Json row = serve::Json::object();
      row.set("flops", w.flops);
      row.set("bytes", w.bytes);
      // A hair of deterministic jitter so distinct keys stay distinct
      // even when two platforms share constants.
      const double jitter = 1.0 + 1e-6 * rng.uniform();
      row.set("seconds", core::time(m, w) * jitter);
      row.set("joules", core::energy(m, w) * jitter);
      obs.push_back(std::move(row));
    }
    serve::Json req = serve::Json::object();
    req.set("type", "fit");
    req.set("idle_watts", spec.idle_power);
    req.set("observations", std::move(obs));
    pool.push_back(req.dump());
  }
  return pool;
}

/// Distinct observe requests: per-platform batches of measured tuples
/// synthesized from the platform's own model with ~1% lognormal noise —
/// what a real measurement stream looks like, and enough signal for the
/// server's RLS filters to converge near the Table I constants.
std::vector<std::string> make_observe_pool(int keys, std::uint64_t seed) {
  const auto names = platforms::platform_names();
  stats::Rng rng(seed, /*stream=*/11);
  std::vector<std::string> pool;
  pool.reserve(static_cast<std::size_t>(keys));
  for (int i = 0; i < keys; ++i) {
    const auto& spec =
        platforms::platform(names[static_cast<std::size_t>(i) % names.size()]);
    const core::MachineParams m = spec.machine();
    serve::Json obs = serve::Json::array();
    for (int p = 0; p < 8; ++p) {
      const double intensity = std::exp2(-3.0 + p + (i % 2) * 0.5);
      const core::Workload w = core::Workload::from_intensity(1e9, intensity);
      serve::Json row = serve::Json::object();
      row.set("flops", w.flops);
      row.set("bytes", w.bytes);
      row.set("seconds", core::time(m, w) * rng.lognormal(0.0, 0.01));
      row.set("joules", core::energy(m, w) * rng.lognormal(0.0, 0.01));
      obs.push_back(std::move(row));
    }
    serve::Json req = serve::Json::object();
    req.set("type", "observe");
    req.set("platform", spec.name);
    req.set("observations", std::move(obs));
    pool.push_back(req.dump());
  }
  return pool;
}

/// The embedded codec-like trace: for each platform, one GOP of
/// IBBPBBPBBPBB frames. Every frame is a predict whose flops and
/// intensity follow the frame type (I-frames are the heavy full-refresh
/// decode, B-frames the light bidirectional ones), and each GOP opens
/// with a policy_advise for the whole GOP's work against a 2x-nominal
/// deadline — the "which P-state do I decode the next GOP at" question
/// a power-aware media pipeline would ask. Fully deterministic: no RNG,
/// so every connection replays the identical line sequence.
std::vector<std::string> make_trace_pool() {
  static constexpr char kGop[] = "IBBPBBPBBPBB";
  static const char* kObjectives[] = {"min_energy", "min_time", "min_edp"};
  const auto names = platforms::platform_names();
  std::vector<std::string> trace;
  trace.reserve(names.size() * (sizeof kGop));
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& spec = platforms::platform(names[i]);
    const core::MachineParams m = spec.machine();
    // Per-frame workloads: I = full refresh, P = forward delta,
    // B = cheap bidirectional fill. Totals drive the GOP-level advise.
    double gop_flops = 0.0;
    double gop_bytes = 0.0;
    std::vector<std::string> frames;
    for (const char* f = kGop; *f; ++f) {
      const double flops = *f == 'I' ? 8e9 : *f == 'P' ? 3e9 : 1e9;
      const double intensity = *f == 'I' ? 4.0 : *f == 'P' ? 8.0 : 16.0;
      gop_flops += flops;
      gop_bytes += flops / intensity;
      serve::Json req = serve::Json::object();
      req.set("type", "predict");
      req.set("platform", spec.name);
      req.set("flops", flops);
      req.set("intensity", intensity);
      frames.push_back(req.dump());
    }
    const core::Workload gop{gop_flops, gop_bytes};
    serve::Json advise = serve::Json::object();
    advise.set("type", "policy_advise");
    advise.set("platform", spec.name);
    advise.set("objective", kObjectives[i % 3]);
    advise.set("flops", gop_flops);
    advise.set("bytes", gop_bytes);
    advise.set("period_s", 2.0 * core::time(m, gop));
    trace.push_back(advise.dump());
    for (auto& frame : frames) trace.push_back(std::move(frame));
  }
  return trace;
}

/// One params request per platform (cacheable until a re-solve
/// publishes — the read side of the live-learning loop).
std::vector<std::string> make_params_pool() {
  std::vector<std::string> pool;
  for (const auto& name : platforms::platform_names()) {
    serve::Json req = serve::Json::object();
    req.set("type", "params");
    req.set("platform", name);
    pool.push_back(req.dump());
  }
  return pool;
}

/// Distinct predict_batch requests with a deterministic spread of
/// batch sizes (1, 8, 64, 256 cycling over the pool): one run crosses
/// the batch classifier boundary, so both the Light lane (small
/// batches) and the Heavy lane (large ones) see traffic. Every element
/// is a plain predict body, so replies are cacheable and replay
/// byte-identically.
std::vector<std::string> make_batch_predict_pool(int keys) {
  static constexpr int kSizes[] = {1, 8, 64, 256};
  const auto names = platforms::platform_names();
  std::vector<std::string> pool;
  pool.reserve(static_cast<std::size_t>(keys));
  for (int i = 0; i < keys; ++i) {
    const int batch = kSizes[static_cast<std::size_t>(i) % 4];
    serve::Json elements = serve::Json::array();
    for (int e = 0; e < batch; ++e) {
      serve::Json row = serve::Json::object();
      row.set("flops", 1e9);
      // 1/16 .. 512 flop/B across key and element index together, so
      // distinct keys stay distinct and elements within a batch span
      // the roofline.
      row.set("intensity",
              std::exp2(-4.0 +
                        13.0 * (i + e) / std::max(1, keys + batch - 2)));
      elements.push_back(std::move(row));
    }
    serve::Json req = serve::Json::object();
    req.set("type", "predict_batch");
    req.set("platform", names[static_cast<std::size_t>(i) % names.size()]);
    req.set("elements", std::move(elements));
    pool.push_back(req.dump());
  }
  return pool;
}

/// The request pools a connection draws from; which ones are used
/// depends on the scenario.
struct Pools {
  std::vector<std::string> predicts;
  std::vector<std::string> fits;
  std::vector<std::string> observes;
  std::vector<std::string> params;
  std::vector<std::string> batches;  ///< batch-predict scenario only
  std::vector<std::string> trace;    ///< trace-replay scenario only
};

/// The deterministic request stream: thread t's k-th request.
const std::string& pick_request(const std::vector<std::string>& predicts,
                                const std::vector<std::string>& fits,
                                double fit_frac, stats::Rng& rng) {
  if (rng.uniform() < fit_frac)
    return fits[static_cast<std::size_t>(rng.below(fits.size()))];
  return predicts[static_cast<std::size_t>(rng.below(predicts.size()))];
}

/// observe-heavy mix: 70% observe / 20% predict / 10% params.
const std::string& pick_observe_heavy(const Pools& pools, stats::Rng& rng) {
  const double r = rng.uniform();
  if (r < 0.70)
    return pools
        .observes[static_cast<std::size_t>(rng.below(pools.observes.size()))];
  if (r < 0.90)
    return pools
        .predicts[static_cast<std::size_t>(rng.below(pools.predicts.size()))];
  return pools.params[static_cast<std::size_t>(rng.below(pools.params.size()))];
}

// ---- Shared accounting ----------------------------------------------------

struct Totals {
  std::atomic<long> ok{0};
  std::atomic<long> errors{0};
  std::atomic<long> overloaded{0};
  std::mutex latency_mutex;
  std::vector<double> batch_latencies_s;  ///< per pipelined batch
  std::mutex errors_mutex;
  /// Every non-ok reply by its wire "error" code (includes
  /// "overloaded"), plus "unanswered" for requests that died with their
  /// connection — field-compatible with CampaignReport.errors_by_code.
  std::map<std::string, long> errors_by_code;

  void count(const std::string& body) {
    if (body.rfind("{\"ok\":true", 0) == 0) {
      ok.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::string code = "unknown";
    static constexpr std::string_view kKey = "\"error\":\"";
    const std::size_t at = body.find(kKey);
    if (at != std::string::npos) {
      const std::size_t begin = at + kKey.size();
      const std::size_t end = body.find('"', begin);
      if (end != std::string::npos) code = body.substr(begin, end - begin);
    }
    if (code == "overloaded")
      overloaded.fetch_add(1, std::memory_order_relaxed);
    else
      errors.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(errors_mutex);
    ++errors_by_code[code];
  }

  /// Requests that will never see a reply (connection failed or died).
  void count_unanswered(long n) {
    if (n <= 0) return;
    errors.fetch_add(n, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(errors_mutex);
    errors_by_code["unanswered"] += n;
  }

  void record_batch_latency(double s) {
    std::lock_guard<std::mutex> lock(latency_mutex);
    batch_latencies_s.push_back(s);
  }
};

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = std::min(
      v.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(v.size())));
  return v[idx];
}

// ---- TCP client -----------------------------------------------------------

int connect_to(const Config& cfg) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg.port);
  if (::inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool send_all(int fd, const std::string& data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until `count` newline-terminated responses have arrived;
/// invokes `on_line` for each. Returns false on connection error.
template <typename F>
bool read_responses(int fd, long count, std::string& buffer, F on_line) {
  long seen = 0;
  char chunk[65536];
  while (seen < count) {
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && seen < count;
         nl = buffer.find('\n', start)) {
      on_line(buffer.substr(start, nl - start));
      start = nl + 1;
      ++seen;
    }
    buffer.erase(0, start);
    if (seen >= count) break;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

/// One round-trip on an otherwise idle connection.
bool request_once(int fd, const std::string& line, std::string& response) {
  if (!send_all(fd, line + "\n")) return false;
  std::string buffer;
  bool got = false;
  if (!read_responses(fd, 1, buffer, [&](std::string body) {
        response = std::move(body);
        got = true;
      }))
    return false;
  return got;
}

/// One non-blocking pipelined connection, multiplexed with its
/// siblings on a client thread. The request stream is a pure function
/// of (seed, global connection index), so the traffic is identical no
/// matter how connections are spread over threads.
struct ClientConn {
  int fd = -1;
  stats::Rng rng{0, 0};
  long remaining = 0;  ///< requests not yet placed in the outbox
  long awaiting = 0;   ///< responses outstanding for the current batch
  double fit_frac = 0.0;       ///< this connection's request mix
  int pipeline = 1;            ///< this connection's batch depth
  bool flood = false;          ///< heavy-starvation: unique-id fits only
  bool observe_heavy = false;  ///< 70/20/10 observe/predict/params mix
  bool batch_predict = false;  ///< predict_batch requests only
  bool trace_replay = false;   ///< sequential GOP trace, no RNG
  std::size_t trace_at = 0;    ///< next trace line (wraps)
  bool record_latency = true;  ///< flood batches stay out of the stats
  long next_unique = 0;        ///< id counter for cache-defeating fits
  std::string outbox;
  std::string inbox;
  std::chrono::steady_clock::time_point batch_start;
  bool failed = false;

  [[nodiscard]] bool done() const noexcept {
    return failed || (remaining == 0 && awaiting == 0 && outbox.empty());
  }
};

/// Drives `conns` (already connected, non-blocking) to completion with
/// a single poll() loop: each connection independently sends a
/// pipelined batch, collects its responses, records the batch latency,
/// and starts the next batch.
void tcp_multiplex_worker(const Pools& pools, std::vector<ClientConn>& conns,
                          Totals& totals) {
  const auto fill_batch = [&](ClientConn& c) {
    const long batch = std::min<long>(c.remaining, c.pipeline);
    for (long i = 0; i < batch; ++i) {
      if (c.flood)
        c.outbox += with_unique_id(
            pools.fits[static_cast<std::size_t>(
                c.rng.below(pools.fits.size()))],
            ++c.next_unique);
      else if (c.observe_heavy)
        c.outbox += pick_observe_heavy(pools, c.rng);
      else if (c.batch_predict)
        c.outbox += pools.batches[static_cast<std::size_t>(
            c.rng.below(pools.batches.size()))];
      else if (c.trace_replay)
        c.outbox += pools.trace[c.trace_at++ % pools.trace.size()];
      else
        c.outbox += pick_request(pools.predicts, pools.fits, c.fit_frac,
                                 c.rng);
      c.outbox += '\n';
    }
    c.remaining -= batch;
    c.awaiting = batch;
    c.batch_start = std::chrono::steady_clock::now();
  };
  const auto fail = [&](ClientConn& c) {
    totals.count_unanswered(c.remaining + c.awaiting);
    c.failed = true;
    ::close(c.fd);
    c.fd = -1;
  };

  for (ClientConn& c : conns)
    if (!c.failed && c.remaining > 0) fill_batch(c);

  std::vector<pollfd> pfds;
  std::vector<ClientConn*> active;
  char chunk[65536];
  for (;;) {
    pfds.clear();
    active.clear();
    for (ClientConn& c : conns) {
      if (c.done()) continue;
      short events = 0;
      if (!c.outbox.empty()) events |= POLLOUT;
      if (c.awaiting > 0) events |= POLLIN;
      pfds.push_back(pollfd{c.fd, events, 0});
      active.push_back(&c);
    }
    if (active.empty()) break;
    const int ready = ::poll(pfds.data(), pfds.size(), 10000);
    if (ready < 0) {
      if (errno == EINTR) continue;
      for (ClientConn* c : active) fail(*c);
      break;
    }
    if (ready == 0) {  // nothing moved for 10 s: server is wedged
      for (ClientConn* c : active) fail(*c);
      break;
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      ClientConn& c = *active[i];
      const short got = pfds[i].revents;
      if (got & (POLLERR | POLLHUP | POLLNVAL)) {
        fail(c);
        continue;
      }
      if ((got & POLLOUT) && !c.outbox.empty()) {
        const ssize_t n = ::send(c.fd, c.outbox.data(), c.outbox.size(),
                                 MSG_NOSIGNAL);
        if (n < 0) {
          if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
            fail(c);
            continue;
          }
        } else {
          c.outbox.erase(0, static_cast<std::size_t>(n));
        }
      }
      if ((got & POLLIN) && c.awaiting > 0) {
        const ssize_t n = ::recv(c.fd, chunk, sizeof chunk, 0);
        if (n <= 0) {
          if (n < 0 &&
              (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
            continue;
          fail(c);
          continue;
        }
        c.inbox.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl = c.inbox.find('\n', start);
             nl != std::string::npos && c.awaiting > 0;
             nl = c.inbox.find('\n', start)) {
          totals.count(c.inbox.substr(start, nl - start));
          start = nl + 1;
          --c.awaiting;
        }
        c.inbox.erase(0, start);
        if (c.awaiting == 0) {
          if (c.record_latency)
            totals.record_batch_latency(
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - c.batch_start)
                    .count());
          if (c.remaining > 0) fill_batch(c);
        }
      }
    }
  }
  for (ClientConn& c : conns)
    if (c.fd >= 0) ::close(c.fd);
}

// ---- In-process mode ------------------------------------------------------

void inproc_worker(const Config& cfg, int thread_id, serve::Server& server,
                   const Pools& pools, long requests, Totals& totals) {
  const bool observe_heavy = cfg.scenario == "observe-heavy";
  const bool batch_predict = cfg.scenario == "batch-predict";
  const bool trace_replay = cfg.scenario == "trace-replay";
  stats::Rng rng(cfg.seed, static_cast<std::uint64_t>(thread_id));
  // Trace replay is sequential; stagger threads one GOP apart so they
  // exercise distinct cache lines while still overlapping.
  std::size_t trace_at = static_cast<std::size_t>(thread_id) * 13;
  for (long i = 0; i < requests; ++i) {
    const std::string& line =
        trace_replay
            ? pools.trace[trace_at++ % pools.trace.size()]
        : batch_predict
            ? pools.batches[static_cast<std::size_t>(
                  rng.below(pools.batches.size()))]
        : observe_heavy
            ? pick_observe_heavy(pools, rng)
            : pick_request(pools.predicts, pools.fits, cfg.fit_frac, rng);
    const auto t0 = std::chrono::steady_clock::now();
    const std::string body = server.handle_now(line);
    totals.count(body);
    if ((i & 1023) == 0)
      totals.record_batch_latency(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count());
  }
}

/// --scenario heavy-starvation, in-process. handle_now() bypasses the
/// queue, so this path goes through Server::submit instead: one flooder
/// thread keeps up to 32 cache-defeating fits in flight (bounded by the
/// heavy lane, which bounces the rest), while `connections - 1` threads
/// run closed-loop predicts and record every per-request latency — the
/// number the per-class lanes are supposed to keep flat.
void inproc_starvation(const Config& cfg, serve::Server& server,
                       const std::vector<std::string>& predicts,
                       const std::vector<std::string>& fits, long per_conn,
                       Totals& totals) {
  std::atomic<bool> stop{false};
  std::thread flooder([&] {
    std::atomic<int> inflight{0};
    long n = 0;
    while (!stop.load(std::memory_order_acquire)) {
      if (inflight.load(std::memory_order_acquire) >= 32) {
        std::this_thread::yield();
        continue;
      }
      ++n;
      std::string line = with_unique_id(
          fits[static_cast<std::size_t>(n) % fits.size()], n);
      inflight.fetch_add(1, std::memory_order_acq_rel);
      const bool admitted = server.submit(
          std::move(line), [&totals, &inflight](std::string&& body) {
            totals.count(body);
            inflight.fetch_sub(1, std::memory_order_acq_rel);
          });
      if (!admitted) {  // heavy lane full — exactly the designed backstop
        inflight.fetch_sub(1, std::memory_order_acq_rel);
        std::this_thread::yield();
      }
    }
    while (inflight.load(std::memory_order_acquire) > 0)
      std::this_thread::yield();
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.connections - 1; ++t)
    threads.emplace_back([&, t] {
      stats::Rng rng(cfg.seed, static_cast<std::uint64_t>(t + 1));
      std::mutex mutex;
      std::condition_variable cv;
      for (long i = 0; i < per_conn; ++i) {
        const std::string& line =
            predicts[static_cast<std::size_t>(rng.below(predicts.size()))];
        bool answered = false;
        const auto t0 = std::chrono::steady_clock::now();
        while (!server.submit(line, [&](std::string&& body) {
          totals.count(body);
          {
            std::lock_guard<std::mutex> lock(mutex);
            answered = true;
          }
          cv.notify_one();
        }))
          std::this_thread::yield();
        {
          std::unique_lock<std::mutex> lock(mutex);
          cv.wait(lock, [&] { return answered; });
        }
        totals.record_batch_latency(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count());
      }
    });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  flooder.join();
}

// ---- Report ---------------------------------------------------------------

void print_stats_line(const std::string& stats_body) {
  try {
    const serve::Json stats = serve::Json::parse(stats_body);
    const serve::Json* lat = stats.find("latency");
    const serve::Json* cache = stats.find("cache");
    if (lat) {
      std::printf("server latency     p50 %.1f us   p95 %.1f us   p99 %.1f us\n",
                  lat->number_or("p50_s", 0) * 1e6,
                  lat->number_or("p95_s", 0) * 1e6,
                  lat->number_or("p99_s", 0) * 1e6);
    }
    if (cache) {
      std::printf("server cache       %.0f hits / %.0f misses (hit rate %.3f)\n",
                  cache->number_or("hits", 0), cache->number_or("misses", 0),
                  cache->number_or("hit_rate", 0));
    }
    std::printf("server completed   %.0f (%.0f req/s lifetime)\n",
                stats.number_or("completed", 0), stats.number_or("qps", 0));
  } catch (const std::exception& e) {
    std::printf("stats response unparsable: %s\n", e.what());
  }
}

/// The --json report: one object, schema mirrored by BENCH_serve.json.
/// Server-side fields come from the end-of-run "stats" request and are
/// omitted when it failed (e.g. the server went away).
void print_json_summary(const Config& cfg, Totals& totals, long done,
                        double elapsed, bool deterministic,
                        const std::string& stats_body) {
  serve::Json out = serve::Json::object();
  out.set("bench", "serve_loadgen");
  out.set("mode", cfg.inproc ? "inproc" : "tcp");
  out.set("scenario", cfg.scenario);
  out.set("requests", done);
  out.set("ok", totals.ok.load());
  out.set("errors", totals.errors.load());
  out.set("overloaded", totals.overloaded.load());
  out.set("elapsed_s", elapsed);
  out.set("req_per_s",
          elapsed > 0 ? static_cast<double>(done) / elapsed : 0.0);
  out.set("deterministic", deterministic);
  out.set("seed", cfg.seed);
  {
    std::lock_guard<std::mutex> lock(totals.latency_mutex);
    serve::Json batch = serve::Json::object();
    batch.set("p50_ms", percentile(totals.batch_latencies_s, 0.50) * 1e3);
    batch.set("p95_ms", percentile(totals.batch_latencies_s, 0.95) * 1e3);
    batch.set("p99_ms", percentile(totals.batch_latencies_s, 0.99) * 1e3);
    batch.set("p999_ms", percentile(totals.batch_latencies_s, 0.999) * 1e3);
    batch.set("batches", totals.batch_latencies_s.size());
    batch.set("pipeline", cfg.inproc || cfg.scenario == "heavy-starvation"
                              ? 1
                              : cfg.pipeline);
    out.set("client_batch_latency", std::move(batch));
  }
  {
    std::lock_guard<std::mutex> lock(totals.errors_mutex);
    serve::Json codes = serve::Json::object();
    for (const auto& [code, n] : totals.errors_by_code) codes.set(code, n);
    out.set("errors_by_code", std::move(codes));
  }
  try {
    const serve::Json stats = serve::Json::parse(stats_body);
    if (const serve::Json* lat = stats.find("latency")) {
      serve::Json server_lat = serve::Json::object();
      server_lat.set("p50_ns", lat->number_or("p50_s", 0) * 1e9);
      server_lat.set("p99_ns", lat->number_or("p99_s", 0) * 1e9);
      server_lat.set("p999_ns", lat->number_or("p999_s", 0) * 1e9);
      server_lat.set("sampled", lat->number_or("count", 0));
      out.set("server_latency", std::move(server_lat));
    }
    if (const serve::Json* cache = stats.find("cache")) {
      serve::Json hits = serve::Json::object();
      hits.set("hits", cache->number_or("hits", 0));
      hits.set("misses", cache->number_or("misses", 0));
      hits.set("hit_rate", cache->number_or("hit_rate", 0));
      out.set("server_cache", std::move(hits));
    }
    out.set("server_completed", stats.number_or("completed", 0));
  } catch (const std::exception&) {
    // no stats response; client-side fields stand alone
  }
  std::printf("%s\n", out.dump().c_str());
}

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port N] [--connections N]\n"
               "          [--threads N] [--requests N] [--pipeline N]\n"
               "          [--keys N] [--fit-frac F] [--seed S]\n"
               "          [--scenario mixed|heavy-starvation|observe-heavy|"
               "batch-predict|trace-replay]\n"
               "          [--inproc] [--json]\n",
               argv0);
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], 2);
      return argv[++i];
    };
    if (arg == "--host") cfg.host = value();
    else if (arg == "--port")
      cfg.port = static_cast<std::uint16_t>(std::atoi(value()));
    else if (arg == "--connections") cfg.connections = std::atoi(value());
    else if (arg == "--threads") cfg.threads = std::atoi(value());
    else if (arg == "--requests") cfg.requests = std::atol(value());
    else if (arg == "--pipeline") cfg.pipeline = std::atoi(value());
    else if (arg == "--keys") cfg.keys = std::atoi(value());
    else if (arg == "--fit-frac") cfg.fit_frac = std::atof(value());
    else if (arg == "--seed")
      cfg.seed = static_cast<std::uint64_t>(std::atoll(value()));
    else if (arg == "--scenario") cfg.scenario = value();
    else if (arg == "--inproc") cfg.inproc = true;
    else if (arg == "--json") cfg.json = true;
    else if (arg == "--help" || arg == "-h") usage(argv[0], 0);
    else usage(argv[0], 2);
  }
  if (cfg.connections < 1 || cfg.requests < 1 || cfg.pipeline < 1 ||
      cfg.keys < 1 || cfg.fit_frac < 0.0 || cfg.fit_frac > 1.0 ||
      cfg.threads < 0)
    usage(argv[0], 2);
  if (cfg.scenario != "mixed" && cfg.scenario != "heavy-starvation" &&
      cfg.scenario != "observe-heavy" && cfg.scenario != "batch-predict" &&
      cfg.scenario != "trace-replay")
    usage(argv[0], 2);
  const bool starvation = cfg.scenario == "heavy-starvation";
  const bool observe_heavy = cfg.scenario == "observe-heavy";
  const bool batch_predict = cfg.scenario == "batch-predict";
  const bool trace_replay = cfg.scenario == "trace-replay";
  // The starvation scenario needs one flooder plus at least one
  // predicting client.
  if (starvation) cfg.connections = std::max(cfg.connections, 2);
  if (cfg.threads == 0)
    cfg.threads = std::min<int>(
        cfg.connections,
        std::max(1u, std::thread::hardware_concurrency()));
  cfg.threads = std::min(cfg.threads, cfg.connections);

  Pools pools;
  pools.predicts = make_predict_pool(cfg.keys);
  pools.fits = make_fit_pool(cfg.fit_keys, cfg.seed);
  if (observe_heavy) {
    pools.observes = make_observe_pool(cfg.keys, cfg.seed);
    pools.params = make_params_pool();
  }
  if (batch_predict) pools.batches = make_batch_predict_pool(cfg.keys);
  if (trace_replay) pools.trace = make_trace_pool();
  Totals totals;

  const long per_conn = cfg.requests / cfg.connections;
  if (cfg.json) {
    // banner suppressed: stdout carries exactly one JSON object
  } else if (cfg.inproc)
    std::printf("serve_loadgen: %ld requests, %d threads (in-process), "
                "%d predict keys + %d fit keys, fit fraction %.2f, "
                "seed %llu\n",
                per_conn * cfg.connections, cfg.connections, cfg.keys,
                cfg.fit_keys, cfg.fit_frac,
                static_cast<unsigned long long>(cfg.seed));
  else
    std::printf("serve_loadgen: %ld requests, %d connections on %d client "
                "threads, pipeline %d, %d predict keys + %d fit keys, "
                "fit fraction %.2f, seed %llu\n",
                per_conn * cfg.connections, cfg.connections, cfg.threads,
                cfg.pipeline, cfg.keys, cfg.fit_keys, cfg.fit_frac,
                static_cast<unsigned long long>(cfg.seed));

  if (!cfg.json && starvation)
    std::printf("scenario           heavy-starvation (one client floods "
                "cache-defeating fits; the rest send predicts one at a "
                "time; batch latency = per-predict latency)\n");
  if (!cfg.json && observe_heavy)
    std::printf("scenario           observe-heavy (70%% observe / 20%% "
                "predict / 10%% params; every connection has its own "
                "PCG32 stream)\n");
  if (!cfg.json && batch_predict)
    std::printf("scenario           batch-predict (pure predict_batch "
                "traffic, batch sizes 1/8/64/256 spread over the key "
                "pool; crosses the Light/Heavy classifier boundary)\n");
  if (!cfg.json && trace_replay)
    std::printf("scenario           trace-replay (codec-like GOP trace: "
                "12 predicts per GOP + policy_advise at each boundary, "
                "%zu lines per cycle, connections staggered one GOP "
                "apart)\n",
                pools.trace.size());

  double elapsed = 0.0;
  std::string stats_body;
  bool deterministic = true;

  if (cfg.inproc) {
    serve::ServerOptions server_options;
    // observe-heavy exercises the full live-learning loop: the
    // background resolver re-solves and publishes while ingest and
    // cached reads are in flight.
    if (observe_heavy) server_options.refit_interval_ms = 50;
    serve::Server server(server_options);
    server.start();
    // Determinism check: byte-identical responses on replay. (Skipped
    // for predict under observe-heavy: a background publish between the
    // two calls legitimately changes the reply.)
    deterministic = observe_heavy
                        ? server.handle_now(pools.observes[0]) ==
                              server.handle_now(pools.observes[0])
                    : batch_predict
                        ? server.handle_now(pools.batches[0]) ==
                              server.handle_now(pools.batches[0])
                    : trace_replay
                        // trace[0] is a policy_advise, trace[1] a predict
                        ? server.handle_now(pools.trace[0]) ==
                                  server.handle_now(pools.trace[0]) &&
                              server.handle_now(pools.trace[1]) ==
                                  server.handle_now(pools.trace[1])
                        : server.handle_now(pools.predicts[0]) ==
                                  server.handle_now(pools.predicts[0]) &&
                              server.handle_now(pools.fits[0]) ==
                                  server.handle_now(pools.fits[0]);
    const auto t0 = std::chrono::steady_clock::now();
    if (starvation) {
      inproc_starvation(cfg, server, pools.predicts, pools.fits, per_conn,
                        totals);
    } else {
      std::vector<std::thread> threads;
      for (int t = 0; t < cfg.connections; ++t)
        threads.emplace_back([&, t] {
          inproc_worker(cfg, t, server, pools, per_conn, totals);
        });
      for (auto& t : threads) t.join();
    }
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
    stats_body = server.handle_now(R"({"type":"stats"})");
    server.shutdown();
  } else {
    // Determinism check over the wire.
    const int probe = connect_to(cfg);
    if (probe < 0) {
      std::fprintf(stderr,
                   "loadgen: cannot connect to %s:%u — is archline_serverd "
                   "running? (or use --inproc)\n",
                   cfg.host.c_str(), cfg.port);
      return 1;
    }
    std::string r1, r2, f1, f2;
    if (observe_heavy) {
      // Observe replies are batch-local by design, so they replay
      // byte-identically even though every call ingests; predict under
      // a live resolver may legitimately change between calls.
      deterministic = request_once(probe, pools.observes[0], r1) &&
                      request_once(probe, pools.observes[0], r2) && r1 == r2;
    } else if (batch_predict) {
      deterministic = request_once(probe, pools.batches[0], r1) &&
                      request_once(probe, pools.batches[0], r2) && r1 == r2;
    } else if (trace_replay) {
      // trace[0] is a policy_advise, trace[1] a predict: both cacheable.
      deterministic = request_once(probe, pools.trace[0], r1) &&
                      request_once(probe, pools.trace[0], r2) &&
                      request_once(probe, pools.trace[1], f1) &&
                      request_once(probe, pools.trace[1], f2) && r1 == r2 &&
                      f1 == f2;
    } else {
      deterministic = request_once(probe, pools.predicts[0], r1) &&
                      request_once(probe, pools.predicts[0], r2) &&
                      request_once(probe, pools.fits[0], f1) &&
                      request_once(probe, pools.fits[0], f2) && r1 == r2 &&
                      f1 == f2;
    }
    ::close(probe);

    // Open every connection up front (the server's accept path is the
    // thing under test), make them non-blocking, and deal them out to
    // the client threads in contiguous groups.
    std::vector<std::vector<ClientConn>> groups(
        static_cast<std::size_t>(cfg.threads));
    for (int i = 0; i < cfg.connections; ++i) {
      ClientConn c;
      c.fd = connect_to(cfg);
      if (c.fd < 0) {
        std::fprintf(stderr, "loadgen: connection %d failed: %s\n", i,
                     std::strerror(errno));
        totals.count_unanswered(per_conn);
        continue;
      }
      const int flags = ::fcntl(c.fd, F_GETFL, 0);
      ::fcntl(c.fd, F_SETFL, flags | O_NONBLOCK);
      c.rng = stats::Rng(cfg.seed, static_cast<std::uint64_t>(i));
      c.remaining = per_conn;
      c.fit_frac = cfg.fit_frac;
      c.pipeline = cfg.pipeline;
      if (starvation) {
        if (i == 0) {  // connection 0 is the flooder
          c.flood = true;
          c.record_latency = false;
        } else {  // the rest send predicts one at a time
          c.fit_frac = 0.0;
          c.pipeline = 1;
        }
      }
      c.observe_heavy = observe_heavy;
      c.batch_predict = batch_predict;
      c.trace_replay = trace_replay;
      // Stagger connections one 13-line GOP apart along the trace.
      if (trace_replay) c.trace_at = static_cast<std::size_t>(i) * 13;
      groups[static_cast<std::size_t>(i % cfg.threads)].push_back(
          std::move(c));
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < cfg.threads; ++t)
      threads.emplace_back([&, t] {
        tcp_multiplex_worker(pools, groups[static_cast<std::size_t>(t)],
                             totals);
      });
    for (auto& t : threads) t.join();
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
    const int stats_fd = connect_to(cfg);
    if (stats_fd >= 0) {
      request_once(stats_fd, R"({"type":"stats"})", stats_body);
      ::close(stats_fd);
    }
  }

  const long done = totals.ok.load() + totals.errors.load() +
                    totals.overloaded.load();
  if (cfg.json) {
    print_json_summary(cfg, totals, done, elapsed, deterministic, stats_body);
  } else {
    std::printf("\nelapsed            %.3f s\n", elapsed);
    std::printf("completed          %ld (%ld ok, %ld errors, %ld overloaded)\n",
                done, totals.ok.load(), totals.errors.load(),
                totals.overloaded.load());
    std::printf("throughput         %.0f req/s\n",
                elapsed > 0 ? static_cast<double>(done) / elapsed : 0.0);
    {
      std::lock_guard<std::mutex> lock(totals.latency_mutex);
      std::printf("client batch lat   p50 %.2f ms   p95 %.2f ms   p99 %.2f ms "
                  "(%zu batches of <= %d)\n",
                  percentile(totals.batch_latencies_s, 0.50) * 1e3,
                  percentile(totals.batch_latencies_s, 0.95) * 1e3,
                  percentile(totals.batch_latencies_s, 0.99) * 1e3,
                  totals.batch_latencies_s.size(),
                  cfg.inproc || starvation ? 1 : cfg.pipeline);
    }
    std::printf("deterministic      %s\n", deterministic ? "yes" : "NO");
    if (!stats_body.empty()) print_stats_line(stats_body);
  }

  return (totals.errors.load() == 0 && deterministic) ? 0 : 1;
}
