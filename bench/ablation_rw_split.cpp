// Ablation: reads vs writes.
//
// The paper: "we currently do not differentiate reads and writes, so
// consider eps_mem as the average of these costs" (§V-B). Here the
// simulator DOES differentiate (writes cost write_energy_factor x reads),
// the symmetric model is fitted anyway, and the fitted eps_mem is
// compared against the traffic-weighted average — validating the paper's
// interpretation and quantifying the bias when workloads differ in write
// mix from the calibration sweep.

#include <cstdio>

#include "bench/common.hpp"
#include "fit/model_fit.hpp"
#include "microbench/intensity.hpp"
#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"
#include "report/table.hpp"
#include "sim/factory.hpp"

namespace {

using namespace archline;
namespace rp = report;

/// Titan-like machine with asymmetric write energy.
sim::SimMachine make_asymmetric(double write_factor) {
  const platforms::PlatformSpec& spec = platforms::platform("GTX Titan");
  sim::NonidealityProfile quiet = sim::default_nonidealities(spec);
  sim::SimMachine base = sim::make_machine(spec, quiet);
  sim::SimConfig cfg = base.config();
  // Keep the AVERAGE per-byte energy at the published eps_mem for a
  // 1/3-write stream, so the ground truth stays comparable.
  const double wf_cal = 1.0 / 3.0;
  cfg.dram.eps_byte =
      cfg.dram.eps_byte / (1.0 + (write_factor - 1.0) * wf_cal);
  cfg.dram.write_energy_factor = write_factor;
  return sim::SimMachine(std::move(cfg));
}

/// Intensity sweep with an explicit write mix.
std::vector<microbench::Observation> sweep(const sim::SimMachine& machine,
                                           double write_fraction,
                                           std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<microbench::Observation> out;
  const sim::SimConfig& cfg = machine.config();
  for (const double intensity : microbench::default_intensity_grid()) {
    const double bytes = microbench::bytes_for_duration(
        intensity, cfg.sp.tau, cfg.sp.eps, cfg.dram.tau_byte,
        cfg.dram.eps_byte, cfg.delta_pi, 0.1);
    sim::KernelDesc k = microbench::intensity_kernel(
        intensity, bytes, core::Precision::Single, core::MemLevel::DRAM);
    k.write_fraction = write_fraction;
    auto obs = microbench::measure_kernel(machine, k, 2, {}, rng);
    out.insert(out.end(), obs.begin(), obs.end());
  }
  return out;
}

}  // namespace

int main() {
  bench::banner(
      "Ablation: read/write energy asymmetry vs the symmetric model",
      "Ground truth writes cost f x reads; the paper's symmetric model is "
      "fitted anyway. Fitted eps_mem tracks the traffic-weighted "
      "average, as §V-B instructs readers to assume.");

  const core::MachineParams published =
      platforms::platform("GTX Titan").machine();

  rp::Table t({"write factor f", "sweep write mix", "true avg eps pJ/B",
               "fitted eps_mem pJ/B", "bias"});
  rp::CsvWriter csv({"write_factor", "write_fraction", "true_avg_pJ",
                     "fitted_pJ", "bias"});

  for (const double f : {1.0, 1.5, 2.0}) {
    const sim::SimMachine machine = make_asymmetric(f);
    const double eps_read = machine.config().dram.eps_byte;
    for (const double wf : {0.0, 1.0 / 3.0, 0.5}) {
      const auto obs = sweep(machine, wf, 20140519);
      fit::FitOptions opt;
      opt.idle_watts_hint = published.pi1;
      for (const auto& o : obs)
        opt.max_watts_hint = std::max(opt.max_watts_hint, o.watts);
      const fit::FitResult r = fit::fit_observations(obs, opt);
      const double true_avg = eps_read * (1.0 + (f - 1.0) * wf);
      const double bias = r.machine.eps_mem / true_avg - 1.0;
      t.add_row({rp::sig_format(f, 2), rp::percent_format(wf),
                 rp::sig_format(true_avg * 1e12, 3),
                 rp::sig_format(r.machine.eps_mem * 1e12, 3),
                 rp::percent_format(bias)});
      csv.add_row({rp::sig_format(f, 3), rp::sig_format(wf, 3),
                   rp::sig_format(true_avg * 1e12, 5),
                   rp::sig_format(r.machine.eps_mem * 1e12, 5),
                   rp::sig_format(bias, 4)});
    }
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "Reading: the symmetric fit recovers the MIX-WEIGHTED average to "
      "within noise,\nconfirming §V-B's guidance — but a model calibrated "
      "on a 1/3-write sweep misstates\nthe energy of a read-only or "
      "write-heavy workload by up to (f-1)/3 per byte.\n\n");
  bench::write_csv(csv, "ablation_rw_split.csv");
  return 0;
}
