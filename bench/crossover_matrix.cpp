// Extension study: the abstract's central claim, tabulated — "critical
// values of arithmetic intensity around which some systems may switch
// from being more to less time- and energy-efficient than others."

#include <cstdio>

#include "bench/common.hpp"
#include "experiments/exp_crossover.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main() {
  using namespace archline;
  namespace ex = experiments;
  namespace rp = report;

  bench::banner(
      "Extension: crossover matrix + Pareto frontier",
      "Pairwise flop/J crossover intensities between all platforms, and "
      "the per-intensity (flop/s, flop/J) Pareto frontier.");

  const ex::CrossoverMatrix m = ex::run_crossover_matrix();
  rp::CsvWriter csv({"row", "col", "crossover_intensity", "row_wins_low"});

  // Render the matrix: cell = crossover intensity where the ROW platform
  // stops/starts beating the COLUMN platform in flop/J.
  std::vector<std::string> header = {"flop/J crossover"};
  for (const std::string& name : m.platforms)
    header.push_back(name.substr(0, 9));
  rp::Table t(header);
  for (const std::string& row : m.platforms) {
    std::vector<std::string> cells = {row};
    for (const std::string& col : m.platforms) {
      if (row == col) {
        cells.push_back(".");
        continue;
      }
      for (const ex::CrossoverCell& c : m.cells) {
        if (c.row_platform != row || c.col_platform != col) continue;
        if (c.crossover) {
          cells.push_back(rp::sig_format(*c.crossover, 2));
          csv.add_row({row, col, rp::sig_format(*c.crossover, 5),
                       c.row_wins_low ? "1" : "0"});
        } else {
          cells.push_back(c.row_wins_low ? "row" : "col");
          csv.add_row({row, col, "", c.row_wins_low ? "1" : "0"});
        }
        break;
      }
    }
    t.add_row(cells);
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf("pairs with a crossover: %d; pairs with one platform "
              "dominating the whole sweep: %d\n\n",
              m.pairs_with_crossover / 2, m.pairs_dominated / 2);

  const auto frontier = ex::run_pareto_frontier();
  rp::Table ft({"intensity", "Pareto frontier (flop/s x flop/J)"});
  rp::CsvWriter fcsv({"intensity", "frontier"});
  for (const ex::ParetoPoint& p : frontier) {
    std::string names;
    for (const std::string& n : p.frontier)
      names += (names.empty() ? "" : ", ") + n;
    ft.add_row({rp::intensity_label(p.intensity), names});
    fcsv.add_row({rp::sig_format(p.intensity, 5), names});
  }
  std::printf("%s\n", ft.to_text().c_str());
  std::printf(
      "Reading: crossovers cluster in the 1-8 flop:B band — exactly the "
      "SpMV-to-FFT\nrange the paper's introduction frames the debate "
      "around.\n\n");

  bench::write_csv(csv, "crossover_matrix.csv");
  bench::write_csv(fcsv, "pareto_frontier.csv");
  return 0;
}
