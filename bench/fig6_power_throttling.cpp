// Regenerates Fig. 6: hypothetical power as the usable power cap shrinks
// to delta_pi / k, k in {1, 2, 4, 8}, per platform.

#include <cstdio>

#include "bench/common.hpp"
#include "experiments/exp_throttle.hpp"
#include "report/ascii_plot.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main() {
  using namespace archline;
  namespace ex = experiments;
  namespace rp = report;

  bench::banner(
      "Figure 6",
      "Power under cap reduction delta_pi/k, k in {1,2,4,8}. Power shrinks "
      "by less than k because pi1 does not scale.");

  const ex::ThrottleResult r = ex::run_throttle_study();
  rp::CsvWriter csv({"platform", "cap_divisor", "intensity", "watts",
                     "regime"});

  for (const ex::ThrottlePanel& p : r.panels) {
    std::printf("-- %s (power shrink at k=8: %sx of the ideal 8x)\n",
                p.platform.c_str(),
                rp::sig_format(p.power_reduction_at_max_divisor, 3).c_str());
    rp::AsciiPlot plot("   power [W]", 64, 10);
    plot.set_y_scale(rp::AxisScale::Log2);
    const char glyphs[] = {'1', '2', '4', '8'};
    std::size_t gi = 0;
    for (const double k : p.cap_divisors) {
      rp::Series s;
      s.name = "dpi/" + rp::sig_format(k, 1);
      s.glyph = glyphs[gi++ % 4];
      for (const core::ThrottlePoint& pt : p.points) {
        if (pt.cap_divisor != k) continue;
        s.x.push_back(pt.intensity);
        s.y.push_back(pt.power);
        csv.add_row({p.platform, rp::sig_format(k, 3),
                     rp::sig_format(pt.intensity, 5),
                     rp::sig_format(pt.power, 5),
                     std::string(1, core::regime_letter(pt.regime))});
      }
      plot.add_series(std::move(s));
    }
    std::printf("%s\n", plot.render().c_str());
  }

  std::printf("most reconfigurable: %s (paper: Arndale GPU)\n",
              r.most_reconfigurable.c_str());
  std::printf("least reconfigurable: %s (paper: Xeon Phi / APU CPU / "
              "APU GPU group)\n\n",
              r.least_reconfigurable.c_str());

  bench::write_csv(csv, "fig6_power_throttling.csv");
  return 0;
}
