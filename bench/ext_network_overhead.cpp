// Extension study: how honest can the Fig. 1 aggregate be about its
// interconnect before losing?
//
// The paper flags its "47 x Arndale GPU" system as a best case that
// "ignores the significant costs of an interconnection network". This
// bench re-runs the Titan-vs-Arndale comparison under per-block network
// power overheads and parallel-efficiency losses, and reports the
// break-even network cost per intensity.

#include <cstdio>

#include "bench/common.hpp"
#include "core/interconnect.hpp"
#include "core/roofline.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main() {
  using namespace archline;
  namespace rp = report;

  bench::banner(
      "Extension: interconnect overhead on the Fig. 1 aggregate",
      "Per-block network power + parallel efficiency vs the aggregate's "
      "advantage over a GTX Titan node.");

  const core::MachineParams titan =
      platforms::platform("GTX Titan").machine();
  const core::MachineParams arndale =
      platforms::platform("Arndale GPU").machine();
  const double budget = titan.pi1 + titan.delta_pi;

  rp::Table t({"net W/block", "par eff", "blocks", "agg/Titan @ I=1/4",
               "agg/Titan @ I=4"});
  rp::CsvWriter csv({"net_watts", "parallel_eff", "blocks",
                     "speedup_low_intensity", "speedup_mid_intensity"});
  for (const double eff : {1.0, 0.9, 0.8, 0.7}) {
    for (const double watts : {0.0, 0.5, 1.0, 2.0, 4.0}) {
      const core::NetworkModel net{.per_block_watts = watts,
                                   .parallel_efficiency = eff};
      const int n = core::blocks_within_budget(arndale, net, budget);
      if (n < 1) continue;
      const core::MachineParams agg =
          core::aggregate_with_network(arndale, n, net);
      const double low = core::performance(agg, 0.25) /
                         core::performance(titan, 0.25);
      const double mid =
          core::performance(agg, 4.0) / core::performance(titan, 4.0);
      t.add_row({rp::sig_format(watts, 2), rp::sig_format(eff, 2),
                 rp::sig_format(n, 3), rp::sig_format(low, 3) + "x",
                 rp::sig_format(mid, 3) + "x"});
      csv.add_row({rp::sig_format(watts, 4), rp::sig_format(eff, 3),
                   rp::sig_format(n, 3), rp::sig_format(low, 5),
                   rp::sig_format(mid, 5)});
    }
  }
  std::printf("%s\n", t.to_text().c_str());

  rp::Table be({"intensity", "break-even net W/block (eff 1.0)",
                "break-even (eff 0.8)"});
  for (const double intensity : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    const double ideal =
        core::break_even_network_watts(titan, arndale, intensity, 1.0);
    const double lossy =
        core::break_even_network_watts(titan, arndale, intensity, 0.8);
    const auto show = [](double w) {
      return w < 0.0 ? std::string("never wins") : rp::sig_format(w, 3);
    };
    be.add_row({rp::intensity_label(intensity), show(ideal), show(lossy)});
  }
  std::printf("Break-even per-block network power (aggregate stops beating "
              "the Titan node):\n%s\n",
              be.to_text().c_str());
  std::printf(
      "Reading: a ~1-2 W NIC/switch share per 6 W board erases the 1.6x "
      "bandwidth-bound\nadvantage — quantifying the paper's own caveat "
      "that the 47-board best case is optimistic.\n\n");
  bench::write_csv(csv, "ext_network_overhead.csv");
  return 0;
}
