// Regenerates the §V-D power-bounding scenario: a GTX Titan node bounded
// to ~140 W vs an Arndale GPU cluster assembled to the same bound,
// compared at bandwidth-bound intensity, plus a bound sweep.

#include <cstdio>

#include "bench/common.hpp"
#include "experiments/exp_powerbound.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main() {
  using namespace archline;
  namespace ex = experiments;
  namespace rp = report;

  bench::banner(
      "SV-D power bounding",
      "Reduce per-node power of a GTX Titan system to a bound; compare "
      "with assembling Arndale GPU boards up to the same bound (I = 1/4).");

  const ex::PowerBoundResult base = ex::run_powerbound();
  rp::Table t({"Quantity", "Value", "Paper"});
  t.add_row({"bound", rp::sig_format(base.options.bound_watts, 3) + " W",
             "140 W"});
  t.add_row({"Titan cap divisor",
             rp::sig_format(base.comparison.big_cap_divisor, 3),
             "~8 (dpi/8)"});
  t.add_row({"Titan slowdown at I=1/4",
             rp::sig_format(base.comparison.big_slowdown, 3) + "x",
             "0.31x (at dpi/8 = 143.5 W node)"});
  t.add_row({"Arndale boards under bound",
             rp::sig_format(base.comparison.small_count, 3), "23"});
  t.add_row({"Arndale cluster speedup",
             rp::sig_format(base.comparison.speedup, 3) + "x", "~2.8x"});
  t.add_row({"unbounded (Fig. 1) speedup",
             rp::sig_format(base.unbounded_speedup, 3) + "x (" +
                 rp::sig_format(base.unbounded_count, 3) + " boards)",
             "~1.6x (47 boards)"});
  std::printf("%s\n", t.to_text().c_str());

  // The paper's exact cap setting, delta_pi / 8.
  const core::MachineParams titan =
      platforms::platform("GTX Titan").machine();
  ex::PowerBoundOptions paper_opt;
  paper_opt.bound_watts = titan.pi1 + titan.delta_pi / 8.0;
  const ex::PowerBoundResult paper_pt = ex::run_powerbound(paper_opt);
  std::printf("At the paper's cap setting dpi/8 (%s node): slowdown %sx "
              "(paper: 0.31x)\n\n",
              rp::si_format(paper_opt.bound_watts, "W", 3).c_str(),
              rp::sig_format(paper_pt.comparison.big_slowdown, 3).c_str());

  // Bound sweep for context.
  const std::vector<double> bounds = {130.0, 140.0, 160.0, 180.0, 220.0,
                                      287.0};
  const auto sweep = ex::run_powerbound_sweep(ex::PowerBoundOptions{},
                                              bounds);
  rp::Table st({"bound W", "Titan k", "Titan slowdown", "Arndale boards",
                "speedup"});
  rp::CsvWriter csv({"bound_watts", "big_cap_divisor", "big_slowdown",
                     "small_count", "speedup"});
  for (const ex::PowerBoundResult& r : sweep) {
    st.add_row({rp::sig_format(r.options.bound_watts, 3),
                rp::sig_format(r.comparison.big_cap_divisor, 3),
                rp::sig_format(r.comparison.big_slowdown, 3) + "x",
                rp::sig_format(r.comparison.small_count, 3),
                rp::sig_format(r.comparison.speedup, 3) + "x"});
    csv.add_row({rp::sig_format(r.options.bound_watts, 5),
                 rp::sig_format(r.comparison.big_cap_divisor, 5),
                 rp::sig_format(r.comparison.big_slowdown, 5),
                 rp::sig_format(r.comparison.small_count, 5),
                 rp::sig_format(r.comparison.speedup, 5)});
  }
  std::printf("Bound sweep:\n%s\n", st.to_text().c_str());

  bench::write_csv(csv, "powerbound_scenario.csv");
  return 0;
}
