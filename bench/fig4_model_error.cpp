// Regenerates Fig. 4: distributions of power-prediction relative error for
// the uncapped (prior) vs capped (this paper) model on each platform, with
// the two-sample Kolmogorov-Smirnov significance verdicts.

#include <cstdio>

#include "bench/common.hpp"
#include "experiments/exp_fig4.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main() {
  using namespace archline;
  namespace ex = experiments;
  namespace rp = report;

  bench::banner(
      "Figure 4",
      "Power-prediction error distributions: uncapped vs capped model, "
      "sorted by uncapped median error; ** = K-S significant at p < .05.");

  const ex::Fig4Result r = ex::run_fig4();

  rp::Table t({"Platform", "unc med [95% CI]", "unc max", "cap med [95% CI]",
               "K-S D", "p-value", "CIs disjoint", "ours", "paper"});
  rp::CsvWriter csv({"platform", "model", "min", "q25", "median", "q75",
                     "max", "ks_D", "ks_p", "significant",
                     "paper_significant"});

  for (const ex::Fig4Platform& p : r.platforms) {
    t.add_row({p.platform,
               rp::sig_format(p.uncapped_summary.median, 3) + " [" +
                   rp::sig_format(p.uncapped_median_ci.lo, 2) + ", " +
                   rp::sig_format(p.uncapped_median_ci.hi, 2) + "]",
               rp::sig_format(p.uncapped_summary.max, 3),
               rp::sig_format(p.capped_summary.median, 3) + " [" +
                   rp::sig_format(p.capped_median_ci.lo, 2) + ", " +
                   rp::sig_format(p.capped_median_ci.hi, 2) + "]",
               rp::sig_format(p.ks.statistic, 3),
               rp::sig_format(p.ks.p_value, 3),
               p.median_cis_disjoint() ? "yes" : "no",
               p.significant ? "**" : "",
               p.significant_in_paper ? "**" : ""});
    const auto emit = [&csv, &p](const char* model,
                                 const stats::FiveNumberSummary& s) {
      csv.add_row({p.platform, model, rp::sig_format(s.min, 5),
                   rp::sig_format(s.q25, 5), rp::sig_format(s.median, 5),
                   rp::sig_format(s.q75, 5), rp::sig_format(s.max, 5),
                   rp::sig_format(p.ks.statistic, 5),
                   rp::sig_format(p.ks.p_value, 5),
                   p.significant ? "1" : "0",
                   p.significant_in_paper ? "1" : "0"});
    };
    emit("uncapped", p.uncapped_summary);
    emit("capped", p.capped_summary);
  }
  std::printf("%s\n", t.to_text().c_str());

  std::printf("capped model improved median |error| on %d / 12 platforms\n",
              r.improved_count);
  std::printf("K-S significant (ours): %d / 12; paper marks %d / 12; "
              "verdicts agree on %d / 12\n\n",
              r.significant_count, r.paper_significant_count,
              r.agreement_count);

  bench::write_csv(csv, "fig4_model_error.csv");
  return 0;
}
