// The reproduction checklist: every headline claim of the paper checked
// programmatically in one run. PASS/FAIL per claim, non-zero exit if any
// claim fails (so CI can gate on it). Deeper detail lives in the
// per-artifact bench binaries; full context in EXPERIMENTS.md.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/analysis.hpp"
#include "core/scenarios.hpp"
#include "experiments/exp_fig1.hpp"
#include "experiments/exp_fig4.hpp"
#include "experiments/exp_fig5.hpp"
#include "experiments/exp_memhier.hpp"
#include "experiments/exp_powerbound.hpp"
#include "experiments/exp_table1.hpp"
#include "experiments/exp_throttle.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"

namespace {

using namespace archline;

struct Check {
  std::string claim;
  std::string paper;
  std::string measured;
  bool pass = false;
};

std::vector<Check> checks;

void check(std::string claim, std::string paper, std::string measured,
           bool pass) {
  checks.push_back(Check{.claim = std::move(claim),
                         .paper = std::move(paper),
                         .measured = std::move(measured),
                         .pass = pass});
}

std::string fmt(double v, int digits = 3) {
  return report::sig_format(v, digits);
}

}  // namespace

int main() {
  bench::banner("Reproduction checklist",
                "Every headline claim, checked programmatically. See the "
                "per-artifact benches for full detail.");

  // --- Fig. 1 -------------------------------------------------------------
  {
    experiments::Fig1Options opt;
    opt.with_measurements = false;
    const auto r = experiments::run_fig1(opt);
    check("Fig1: power-matched aggregate size", "47 boards",
          fmt(r.aggregate_count, 2), r.aggregate_count == 47);
    check("Fig1: aggregate advantage, bandwidth-bound", "up to 1.6x",
          fmt(r.aggregate_peak_speedup) + "x",
          r.aggregate_peak_speedup > 1.3 && r.aggregate_peak_speedup < 2.0);
    check("Fig1: aggregate at compute-bound", "< 1/2 of Titan",
          fmt(r.aggregate_peak_ratio) + "x", r.aggregate_peak_ratio < 0.5);
    check("Fig1: flop/J parity region exists", "to I ~ 4",
          "tie at I = " + fmt(r.efficiency_crossover),
          r.efficiency_crossover > 1.0 && r.efficiency_crossover < 8.0);
  }

  // --- Table I ------------------------------------------------------------
  {
    const auto rows = experiments::run_table1();
    double worst = 0.0;
    std::string worst_name;
    for (const auto& row : rows)
      if (row.worst_identifiable_error() > worst) {
        worst = row.worst_identifiable_error();
        worst_name = row.spec->name;
      }
    check("TableI: identifiable constants recovered", "(pipeline check)",
          "worst " + report::percent_format(worst) + " (" + worst_name +
              ")",
          worst < 0.25);
  }

  // --- Fig. 4 -------------------------------------------------------------
  {
    const auto r = experiments::run_fig4();
    check("Fig4: capped model improves on all platforms", "all 12",
          fmt(r.improved_count, 2) + " / 12", r.improved_count == 12);
    check("Fig4: K-S verdict agreement with paper", "7 marked / 12",
          fmt(r.agreement_count, 2) + " / 12 agree", r.agreement_count >= 6);
  }

  // --- Fig. 5 -------------------------------------------------------------
  {
    experiments::Fig5Options opt;
    opt.with_measurements = false;
    const auto r = experiments::run_fig5(opt);
    check("Fig5: most efficient platform", "GTX Titan at 16 Gflop/J",
          r.panels.front().platform + " at " +
              report::si_format(
                  r.panels.front().summary.peak_flops_per_joule, "flop/J",
                  2),
          r.panels.front().platform == "GTX Titan");
    check("Fig5: least efficient platform", "Desktop CPU at 620 Mflop/J",
          r.panels.back().platform,
          r.panels.back().platform == "Desktop CPU");
    check("Fig5: pi1 over half of max power", "7 of 12 platforms",
          fmt(r.over_half_constant, 2) + " of 12", r.over_half_constant == 7);
    check("Fig5: corr(pi1 fraction, peak eff)", "~ -0.6",
          fmt(r.pi1_fraction_correlation, 2),
          r.pi1_fraction_correlation < -0.4 &&
              r.pi1_fraction_correlation > -0.8);
  }

  // --- Figs. 6/7 ----------------------------------------------------------
  {
    const auto r = experiments::run_throttle_study();
    check("Fig6: most power-reconfigurable block", "Arndale GPU",
          r.most_reconfigurable, r.most_reconfigurable == "Arndale GPU");
    check("Fig6: least reconfigurable block",
          "Xeon Phi / APU CPU / APU GPU", r.least_reconfigurable,
          r.least_reconfigurable == "Xeon Phi" ||
              r.least_reconfigurable == "APU CPU" ||
              r.least_reconfigurable == "APU GPU");
    const double titan = experiments::throttled_perf_ratio(
        platforms::platform("GTX Titan").machine(), 0.25, 8.0);
    check("Fig7a: Titan degrades least at low intensity", "yes",
          report::percent_format(titan) + " retained at I=1/4, dpi/8",
          titan > 0.25);
    const double nuc = experiments::throttled_perf_ratio(
        platforms::platform("NUC CPU").machine(), 128.0, 8.0);
    check("Fig7a: NUC CPU degrades least at high intensity", "yes",
          report::percent_format(nuc) + " retained at I=128, dpi/8",
          nuc > 0.85);
  }

  // --- §V-B ---------------------------------------------------------------
  {
    const auto r = experiments::run_memhier();
    check("SV-B: cheapest raw byte", "Xeon Phi", r.cheapest_raw,
          r.cheapest_raw == "Xeon Phi");
    check("SV-B: cheapest effective byte", "Arndale GPU",
          r.cheapest_effective, r.cheapest_effective == "Arndale GPU");
    bool ordering = true;
    for (const auto& row : r.rows) ordering &= row.level_ordering_holds;
    check("SV-B: eps_L1 <= eps_L2 <= eps_mem", "every system",
          ordering ? "holds" : "violated", ordering);
  }

  // --- §V-D ---------------------------------------------------------------
  {
    const core::MachineParams titan =
        platforms::platform("GTX Titan").machine();
    experiments::PowerBoundOptions opt;
    opt.bound_watts = titan.pi1 + titan.delta_pi / 8.0;
    const auto r = experiments::run_powerbound(opt);
    check("SV-D: Titan at dpi/8 and I=1/4", "0.31x",
          fmt(r.comparison.big_slowdown) + "x",
          std::abs(r.comparison.big_slowdown - 0.31) < 0.02);
    const auto r140 = experiments::run_powerbound();
    check("SV-D: Arndale boards under 140 W", "23",
          fmt(r140.comparison.small_count, 2), r140.comparison.small_count == 23);
    check("SV-D: bounded cluster advantage", "~2.8x",
          fmt(r140.comparison.speedup) + "x",
          r140.comparison.speedup > 2.3 && r140.comparison.speedup < 3.5);
  }

  // --- report -------------------------------------------------------------
  int failed = 0;
  std::printf("%-52s | %-28s | %-34s | %s\n", "claim", "paper", "measured",
              "verdict");
  std::printf("%s\n", std::string(130, '-').c_str());
  for (const Check& c : checks) {
    if (!c.pass) ++failed;
    std::printf("%-52s | %-28s | %-34s | %s\n", c.claim.c_str(),
                c.paper.c_str(), c.measured.c_str(),
                c.pass ? "PASS" : "FAIL");
  }
  std::printf("\n%zu claims checked, %d failed\n\n", checks.size(), failed);
  return failed == 0 ? 0 : 1;
}
