// serve_throughput — in-process microbenchmark of the serving hot path.
//
// Most scenarios drive serve::Server (or one of its parts) directly —
// no sockets, no pipelining — so the numbers isolate per-request cost:
// cache lookup, JSON parse, protocol dispatch, queue hand-off. The
// tcp_* and predict_batch_{1,64,256} scenarios additionally cross the
// real TCP front end. serve_loadgen measures the whole daemon; this
// tool answers "what does one request cost, and where".
//
// Scenarios:
//   cached_hit_1t    handle_now() on a warmed key pool, one thread
//   cached_hit_mt    same, all hardware threads hammering one server
//   worker_pool_mt   submit() through the lane scheduler + worker pool
//   miss_predict_1t  predict with the cache disabled (parse + eval + dump)
//   predict_batch_{1,64,256}  predict_batch with N elements per request
//                    through the TCP front end, one request per round
//                    trip, cache disabled: the client-visible cost.
//                    ops are REQUESTS: per-prediction cost is
//                    1/(ops_per_s*N), and the batching headline is
//                    per-prediction(batch_1) vs per-prediction(batch_256)
//   predict_batch_inproc_{1,64,256}  same pools through bare
//                    handle_into (no transport): the SoA evaluate +
//                    render marginal cost per element
//   json_parse_1t    Json::parse of a representative predict line
//   queue_spsc       LaneScheduler push/pop ping between two threads
//   queue_spsc_batch same, consumer drains with pop_n(64) (server shape)
//   predict_no_flood         closed-loop predict latency, idle server
//   heavy_starvation         same, under a sustained fit flood (lanes ON):
//                            the per-class isolation claim, measured
//   heavy_starvation_unified same flood with the heavy lane disabled —
//                            the pre-lane single-queue behavior, kept as
//                            the A/B baseline showing what lanes buy
//   observe_ingest_1t        "observe" with an 8-tuple batch: parse +
//                            per-tuple RLS update + ring-buffer write,
//                            never cached — the streaming ingest cost
//   observe_under_refit_mt   same ingest on all threads while the
//                            background resolver re-solves and publishes
//                            every 20 ms: observe p99 with snapshot
//                            swaps and cache invalidation in flight
//   policy_advise_hit        policy_advise on a warmed key pool: the
//                            steady-state probe cost of a control loop
//                            re-asking the same question each period
//   policy_advise_miss       same pool, cache off: parse + full ladder
//                            sweep (race/steady/cap plans per operating
//                            point) + argmin + plan-table render
//   tcp_cached_shard{1,2,4}  the front-end scaling scenario: a real
//                            TcpListener with N event-loop shards on
//                            loopback, 2N closed-loop clients pipelining
//                            depth-64 warmed predicts — the shard-scaling
//                            headline (aggregate replies/s vs N). Run on
//                            a multi-core host; a 1-CPU container
//                            serializes the shards and shows ~flat scaling
//
// Each scenario reports ops, ops/s, sampled per-op p50/p99 latency, and
// heap allocations per op (global operator new is instrumented). Output
// is one JSON object (deterministic key order) to stdout and, with
// --out FILE, to a file — machine-readable so BENCH_serve.json can track
// the trajectory across PRs.
//
// Usage: serve_throughput [--seconds S] [--threads N] [--out FILE]

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/roofline.hpp"
#include "platforms/platform_db.hpp"
#include "serve/json.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve/tcp.hpp"

// ---- Allocation counter ----------------------------------------------------
// Counts every global operator new so scenarios can report allocs/op.
// Relaxed atomic: the count only needs to be right, not ordered.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace archline;
using Clock = std::chrono::steady_clock;

struct Config {
  double seconds = 1.0;  ///< wall-clock budget per scenario
  int threads = 0;       ///< 0 = hardware_concurrency
  std::string out;       ///< also write the JSON object here
};

struct ScenarioResult {
  std::string name;
  std::uint64_t ops = 0;
  double seconds = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double allocs_per_op = 0.0;

  [[nodiscard]] double ops_per_s() const noexcept {
    return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0;
  }
};

double percentile_ns(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(samples.size())));
  return samples[idx];
}

/// Runs `op` in a timed loop on one thread. Every 64th op is timed
/// individually for the latency quantiles; the rest run back-to-back so
/// the throughput figure is not dominated by clock reads.
template <typename F>
ScenarioResult run_single(const std::string& name, double budget_s, F&& op) {
  ScenarioResult r;
  r.name = name;
  std::vector<double> samples;
  samples.reserve(1 << 20);
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(budget_s));
  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t ops = 0;
  for (;;) {
    for (int i = 0; i < 63; ++i) op();
    const auto t0 = Clock::now();
    op();
    const auto t1 = Clock::now();
    ops += 64;
    if (samples.size() < samples.capacity())
      samples.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
    if (t1 >= deadline) break;
  }
  const auto end = Clock::now();
  const std::uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);
  r.ops = ops;
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.allocs_per_op =
      static_cast<double>(allocs1 - allocs0) / static_cast<double>(ops);
  r.p50_ns = percentile_ns(samples, 0.50);
  r.p99_ns = percentile_ns(samples, 0.99);
  return r;
}

/// Same loop on `threads` threads against shared state; thread 0
/// contributes the latency samples.
template <typename F>
ScenarioResult run_multi(const std::string& name, double budget_s,
                         int threads, F&& op) {
  ScenarioResult r;
  r.name = name;
  std::vector<double> samples;
  samples.reserve(1 << 20);
  std::atomic<std::uint64_t> total_ops{0};
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(budget_s));
  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      std::uint64_t ops = 0;
      for (;;) {
        for (int i = 0; i < 63; ++i) op(t);
        const auto t0 = Clock::now();
        op(t);
        const auto t1 = Clock::now();
        ops += 64;
        if (t == 0 && samples.size() < samples.capacity())
          samples.push_back(
              std::chrono::duration<double, std::nano>(t1 - t0).count());
        if (t1 >= deadline) break;
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  for (auto& t : pool) t.join();
  const auto end = Clock::now();
  const std::uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);
  r.ops = total_ops.load();
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.allocs_per_op = r.ops ? static_cast<double>(allocs1 - allocs0) /
                                static_cast<double>(r.ops)
                          : 0.0;
  r.p50_ns = percentile_ns(samples, 0.50);
  r.p99_ns = percentile_ns(samples, 0.99);
  return r;
}

/// Distinct predict request lines: platforms x log-spaced intensities
/// (the same shape serve_loadgen uses, so hit-path numbers transfer).
std::vector<std::string> make_predict_pool(int keys) {
  const auto names = platforms::platform_names();
  std::vector<std::string> pool;
  pool.reserve(static_cast<std::size_t>(keys));
  for (int i = 0; i < keys; ++i) {
    serve::Json req = serve::Json::object();
    req.set("type", "predict");
    req.set("platform", names[static_cast<std::size_t>(i) % names.size()]);
    req.set("flops", 1e9);
    req.set("intensity",
            std::exp2(-4.0 + 13.0 * i / std::max(1, keys - 1)));
    pool.push_back(req.dump());
  }
  return pool;
}

/// Distinct predict_batch lines: `batch` workload elements per request
/// spanning the predict pool's intensity range, platforms round-robin.
std::vector<std::string> make_batch_pool(int keys, int batch) {
  const auto names = platforms::platform_names();
  std::vector<std::string> pool;
  pool.reserve(static_cast<std::size_t>(keys));
  for (int i = 0; i < keys; ++i) {
    std::string req = R"({"type":"predict_batch","platform":")";
    req += names[static_cast<std::size_t>(i) % names.size()];
    req += R"(","elements":[)";
    for (int e = 0; e < batch; ++e) {
      if (e != 0) req += ',';
      req += R"({"flops":1e9,"intensity":)";
      serve::Json::append_number(
          req, std::exp2(-4.0 + 13.0 * (i + e) / std::max(1, keys + batch)));
      req += '}';
    }
    req += "]}";
    pool.push_back(std::move(req));
  }
  return pool;
}

/// Distinct observe request lines: per-platform 8-tuple batches
/// generated from the model (the loadgen's observe-heavy shape without
/// the noise — the bench wants identical work per op, not realism).
std::vector<std::string> make_observe_pool(int keys) {
  const auto names = platforms::platform_names();
  std::vector<std::string> pool;
  pool.reserve(static_cast<std::size_t>(keys));
  for (int i = 0; i < keys; ++i) {
    const auto& spec =
        platforms::platform(names[static_cast<std::size_t>(i) % names.size()]);
    const core::MachineParams m = spec.machine();
    serve::Json obs = serve::Json::array();
    for (int p = 0; p < 8; ++p) {
      const core::Workload w =
          core::Workload::from_intensity(1e9, std::exp2(-3.0 + p));
      serve::Json row = serve::Json::object();
      row.set("flops", w.flops);
      row.set("bytes", w.bytes);
      row.set("seconds", core::time(m, w));
      row.set("joules", core::energy(m, w));
      obs.push_back(std::move(row));
    }
    serve::Json req = serve::Json::object();
    req.set("type", "observe");
    req.set("platform", spec.name);
    req.set("observations", std::move(obs));
    pool.push_back(req.dump());
  }
  return pool;
}

/// Distinct policy_advise lines: platforms x objectives x workload
/// sizes, period = 2x the platform's nominal time so every request has
/// a feasible plan set. A miss evaluates race/steady/cap plans over the
/// whole operating-point ladder and renders the full plan table; a hit
/// is one cache probe like any other cacheable endpoint.
std::vector<std::string> make_policy_pool(int keys) {
  static const char* kObjectives[] = {"min_energy", "min_time", "min_edp"};
  const auto names = platforms::platform_names();
  std::vector<std::string> pool;
  pool.reserve(static_cast<std::size_t>(keys));
  for (int i = 0; i < keys; ++i) {
    const auto& spec =
        platforms::platform(names[static_cast<std::size_t>(i) % names.size()]);
    const core::MachineParams m = spec.machine();
    const core::Workload w = core::Workload::from_intensity(
        1e9 * (1 + i % 4), std::exp2(1.0 + i % 5));
    serve::Json req = serve::Json::object();
    req.set("type", "policy_advise");
    req.set("platform", spec.name);
    req.set("objective", kObjectives[static_cast<std::size_t>(i) % 3]);
    req.set("flops", w.flops);
    req.set("bytes", w.bytes);
    req.set("period_s", 2.0 * core::time(m, w));
    pool.push_back(req.dump());
  }
  return pool;
}

// ---- Scenarios -------------------------------------------------------------

ScenarioResult bench_cached_hit_1t(const Config& cfg,
                                   const std::vector<std::string>& pool) {
  serve::Server server;
  for (const std::string& line : pool) (void)server.handle_now(line);  // warm
  std::size_t i = 0;
  std::string out;
  auto r = run_single("cached_hit_1t", cfg.seconds, [&] {
    server.handle_into(pool[i], out);
    if (++i == pool.size()) i = 0;
  });
  return r;
}

ScenarioResult bench_cached_hit_mt(const Config& cfg,
                                   const std::vector<std::string>& pool,
                                   int threads) {
  serve::Server server;
  for (const std::string& line : pool) (void)server.handle_now(line);
  struct PerThread {
    std::size_t i = 0;
    std::string out;
    char pad[64];
  };
  std::vector<PerThread> state(static_cast<std::size_t>(threads));
  auto r = run_multi("cached_hit_mt", cfg.seconds, threads, [&](int t) {
    PerThread& s = state[static_cast<std::size_t>(t)];
    server.handle_into(pool[s.i], s.out);
    if (++s.i == pool.size()) s.i = 0;
  });
  return r;
}

ScenarioResult bench_worker_pool_mt(const Config& cfg,
                                    const std::vector<std::string>& pool,
                                    int producers) {
  serve::Server server;
  server.start();
  for (const std::string& line : pool) (void)server.handle_now(line);
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::size_t next = 0;
  std::mutex next_mutex;
  auto r = run_multi("worker_pool_mt", cfg.seconds, producers, [&](int) {
    std::string line;
    {
      std::lock_guard<std::mutex> lock(next_mutex);
      line = pool[next];
      if (++next == pool.size()) next = 0;
    }
    while (!server.submit(line, [&](std::string&&) {
      completed.fetch_add(1, std::memory_order_relaxed);
    })) {
      std::this_thread::yield();
    }
    submitted.fetch_add(1, std::memory_order_relaxed);
  });
  // Drain: every submitted done must fire before the server dies.
  while (completed.load(std::memory_order_acquire) <
         submitted.load(std::memory_order_acquire))
    std::this_thread::yield();
  server.shutdown();
  return r;
}

ScenarioResult bench_miss_predict_1t(const Config& cfg,
                                     const std::vector<std::string>& pool) {
  serve::ServerOptions opt;
  opt.cache_capacity = 0;  // every request takes the full miss path
  serve::Server server(opt);
  std::size_t i = 0;
  std::string out;
  auto r = run_single("miss_predict_1t", cfg.seconds, [&] {
    server.handle_into(pool[i], out);
    if (++i == pool.size()) i = 0;
  });
  return r;
}

/// predict_batch on the miss path: ops are requests, each carrying a
/// fixed element count, so per-PREDICTION cost is latency / batch size.
ScenarioResult bench_miss_batch_1t(const Config& cfg, const char* name,
                                   const std::vector<std::string>& pool) {
  serve::ServerOptions opt;
  opt.cache_capacity = 0;  // every request takes the full miss path
  serve::Server server(opt);
  std::size_t i = 0;
  std::string out;
  return run_single(name, cfg.seconds, [&] {
    server.handle_into(pool[i], out);
    if (++i == pool.size()) i = 0;
  });
}

ScenarioResult bench_json_parse_1t(const Config& cfg,
                                   const std::vector<std::string>& pool) {
  std::size_t i = 0;
  return run_single("json_parse_1t", cfg.seconds, [&] {
    const serve::Json doc = serve::Json::parse(pool[i]);
    if (doc.type() != serve::Json::Type::Object) std::abort();
    if (++i == pool.size()) i = 0;
  });
}

ScenarioResult bench_json_parse_insitu_1t(const Config& cfg,
                                          const std::vector<std::string>&
                                              pool) {
  std::size_t i = 0;
  return run_single("json_parse_insitu_1t", cfg.seconds, [&] {
    const serve::Json doc = serve::Json::parse_in_situ(pool[i]);
    if (doc.type() != serve::Json::Type::Object) std::abort();
    if (++i == pool.size()) i = 0;
  });
}

/// One producer pushes, one consumer pops, both full-tilt: the
/// scheduler hand-off cost with the notify/wait machinery engaged.
/// Light lane only — the same path a single-class workload takes, so
/// the numbers compare directly with the single-queue predecessor.
/// `batch` is the consumer's pop_n size; 1 uses plain pop() (the
/// pre-batching shape, kept for before/after comparability).
ScenarioResult bench_queue_spsc(const Config& cfg, const char* name,
                                std::size_t batch) {
  serve::LaneScheduler<std::uint64_t> queue(
      std::array<serve::LaneConfig, serve::kLaneCount>{
          serve::LaneConfig{1024, 4}, serve::LaneConfig{64, 1}});
  std::atomic<std::uint64_t> popped{0};
  std::thread consumer([&] {
    std::uint64_t n = 0;
    if (batch <= 1) {
      while (queue.pop(serve::kAllLanes)) ++n;
    } else {
      std::vector<std::uint64_t> items;
      items.reserve(batch);
      for (;;) {
        items.clear();
        const std::size_t got = queue.pop_n(serve::kAllLanes, items, batch);
        if (got == 0) break;  // closed and drained
        n += got;
      }
    }
    popped.store(n, std::memory_order_release);
  });
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(cfg.seconds));
  std::uint64_t pushed = 0;
  while (Clock::now() < deadline) {
    for (int i = 0; i < 256; ++i) {
      if (queue.try_push(serve::kLightLane, pushed))
        ++pushed;
      else
        std::this_thread::yield();
    }
  }
  queue.close();
  consumer.join();
  const auto end = Clock::now();
  ScenarioResult r;
  r.name = name;
  r.ops = popped.load();
  r.seconds = std::chrono::duration<double>(end - start).count();
  return r;
}

/// A small Heavy request: "fit" over 6 synthetic observations, a few
/// hundred microseconds of Levenberg-Marquardt per evaluation. Distinct
/// `seed` values defeat the response cache so every flood request costs
/// real solver time.
std::string make_fit_request(std::uint64_t seed) {
  serve::Json obs = serve::Json::array();
  for (int p = 0; p < 6; ++p) {
    const double intensity = std::exp2(-2.0 + p);
    const double flops = 1e9 + static_cast<double>(seed);
    const double bytes = flops / intensity;
    const double t = std::max(flops * 3e-11, bytes * 1.2e-10);
    serve::Json row = serve::Json::object();
    row.set("flops", flops);
    row.set("bytes", bytes);
    row.set("seconds", t);
    row.set("joules", flops * 4.7e-11 + bytes * 3.8e-10 + 2.7 * t);
    obs.push_back(std::move(row));
  }
  serve::Json req = serve::Json::object();
  req.set("type", "fit");
  req.set("observations", std::move(obs));
  return req.dump();
}

/// Closed-loop predict latency through the full submit -> lane -> worker
/// -> done path (cache warmed, so queueing dominates), optionally under
/// a sustained fit flood that keeps up to 32 Heavy requests in flight.
/// `heavy_lane_capacity` 0 reproduces the unified single-queue baseline:
/// the flood and the predicts then share one lane and each predict waits
/// behind the whole Heavy backlog.
ScenarioResult bench_predict_latency(const char* name, const Config& cfg,
                                     const std::vector<std::string>& pool,
                                     int threads,
                                     std::size_t heavy_lane_capacity,
                                     bool flood) {
  serve::ServerOptions opt;
  opt.threads = threads;
  opt.heavy_lane_capacity = heavy_lane_capacity;
  serve::Server server(opt);
  server.start();
  for (const std::string& line : pool) (void)server.handle_now(line);  // warm

  std::atomic<bool> stop{false};
  std::thread flooder;
  if (flood)
    flooder = std::thread([&] {
      std::atomic<int> inflight{0};
      std::uint64_t seed = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (inflight.load(std::memory_order_acquire) >= 32) {
          std::this_thread::yield();
          continue;
        }
        inflight.fetch_add(1, std::memory_order_relaxed);
        if (!server.submit(make_fit_request(seed++), [&](std::string&&) {
              inflight.fetch_sub(1, std::memory_order_release);
            })) {
          inflight.fetch_sub(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
      }
      // Let the admitted tail drain so shutdown() below stays quick.
      while (inflight.load(std::memory_order_acquire) > 0)
        std::this_thread::yield();
    });

  std::vector<double> samples;
  samples.reserve(1 << 20);
  std::mutex m;
  std::condition_variable cv;
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(cfg.seconds));
  std::size_t i = 0;
  for (;;) {
    bool answered = false;
    const auto t0 = Clock::now();
    while (!server.submit(pool[i], [&](std::string&&) {
      {
        std::lock_guard<std::mutex> lock(m);
        answered = true;
      }
      cv.notify_one();
    })) {
      std::this_thread::yield();
    }
    {
      std::unique_lock<std::mutex> lock(m);
      cv.wait(lock, [&] { return answered; });
    }
    const auto t1 = Clock::now();
    if (samples.size() < samples.capacity())
      samples.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
    if (++i == pool.size()) i = 0;
    if (t1 >= deadline) break;
  }
  const auto end = Clock::now();
  stop.store(true, std::memory_order_release);
  if (flooder.joinable()) flooder.join();
  server.shutdown();

  ScenarioResult r;
  r.name = name;
  r.ops = samples.size();
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.p50_ns = percentile_ns(samples, 0.50);
  r.p99_ns = percentile_ns(samples, 0.99);
  return r;
}

/// policy_advise cost, one thread. `warm` pre-answers the pool so every
/// op is a cache probe (the steady-state cost of a control loop asking
/// the same question each period); without it the cache is off and every
/// op pays the full miss path — parse, ladder sweep (race/steady/cap
/// plans per operating point), argmin, plan-table render.
ScenarioResult bench_policy_advise_1t(const Config& cfg, const char* name,
                                      const std::vector<std::string>& pool,
                                      bool warm) {
  serve::ServerOptions opt;
  if (!warm) opt.cache_capacity = 0;
  serve::Server server(opt);
  if (warm)
    for (const std::string& line : pool) (void)server.handle_now(line);
  std::size_t i = 0;
  std::string out;
  return run_single(name, cfg.seconds, [&] {
    server.handle_into(pool[i], out);
    if (++i == pool.size()) i = 0;
  });
}

/// Streaming ingest cost, one thread: every op is an "observe" with an
/// 8-tuple batch — parse, per-tuple RLS update, ring-buffer write.
/// Never cached, so the number is the pure per-request ingest path.
ScenarioResult bench_observe_ingest_1t(const Config& cfg,
                                       const std::vector<std::string>& pool) {
  serve::Server server;
  std::size_t i = 0;
  std::string out;
  return run_single("observe_ingest_1t", cfg.seconds, [&] {
    server.handle_into(pool[i], out);
    if (++i == pool.size()) i = 0;
  });
}

/// The ingest path under concurrent re-solves: all threads stream
/// observes while the background resolver re-fits dirty platforms every
/// 20 ms and publishes new snapshots (each publish bumps the cache
/// generation). The p99 here is the "observe never waits on a re-solve"
/// claim, measured.
ScenarioResult bench_observe_under_refit_mt(
    const Config& cfg, const std::vector<std::string>& pool, int threads) {
  serve::ServerOptions opt;
  opt.refit_interval_ms = 20;
  serve::Server server(opt);
  server.start();
  struct PerThread {
    std::size_t i = 0;
    std::string out;
    char pad[64];
  };
  std::vector<PerThread> state(static_cast<std::size_t>(threads));
  auto r = run_multi("observe_under_refit_mt", cfg.seconds, threads,
                     [&](int t) {
                       PerThread& s = state[static_cast<std::size_t>(t)];
                       server.handle_into(pool[s.i], s.out);
                       if (++s.i == pool.size()) s.i = 0;
                     });
  server.shutdown();
  return r;
}

/// Blocking loopback client socket (bench-local; the tests have their
/// own copy in serve_tcp_testlib.hpp, which bench targets cannot see).
int tcp_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool tcp_send_all(int fd, const std::string& data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Aggregate cached-hit throughput through the real TCP front end with
/// `shards` event-loop shards: 2*shards closed-loop clients, each
/// pipelining `kPipelineDepth` warmed predicts per round trip. Its
/// ops/s at shard counts 1/2/4 is the front-end scaling claim.
ScenarioResult bench_tcp_cached_shards(const Config& cfg, const char* name,
                                       const std::vector<std::string>& pool,
                                       int shards) {
  constexpr int kPipelineDepth = 64;
  serve::ServerOptions opt;
  opt.threads = 2;  // after warm-up, hits are answered on the shard itself
  serve::Server server(opt);
  server.start();
  serve::TcpOptions tcp;
  tcp.port = 0;
  tcp.shards = shards;
  tcp.poll_interval_ms = 5;
  serve::TcpListener listener(server, tcp);
  std::string error;
  if (!listener.open(&error)) {
    std::fprintf(stderr, "serve_throughput: %s: %s\n", name, error.c_str());
    std::exit(1);
  }
  std::atomic<bool> stop{false};
  std::thread loop([&] { listener.run(stop); });

  const int clients = 2 * shards;
  std::atomic<std::uint64_t> total_ops{0};
  std::vector<double> samples;  // thread 0's per-reply latency estimates
  samples.reserve(1 << 20);
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(cfg.seconds));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const int fd = tcp_connect(listener.port());
      if (fd < 0) return;
      // Each client cycles a distinct window of the warmed pool so the
      // shards serve a mix of keys, not one hot line.
      std::string block;
      std::size_t at = static_cast<std::size_t>(c) * 7 % pool.size();
      std::uint64_t ops = 0;
      char chunk[65536];
      for (;;) {
        block.clear();
        for (int i = 0; i < kPipelineDepth; ++i) {
          block += pool[at];
          block += '\n';
          if (++at == pool.size()) at = 0;
        }
        const auto t0 = Clock::now();
        if (!tcp_send_all(fd, block)) break;
        int newlines = 0;
        while (newlines < kPipelineDepth) {
          const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
          if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            break;
          }
          for (ssize_t b = 0; b < n; ++b)
            if (chunk[b] == '\n') ++newlines;
        }
        if (newlines < kPipelineDepth) break;
        const auto t1 = Clock::now();
        ops += static_cast<std::uint64_t>(kPipelineDepth);
        if (c == 0 && samples.size() < samples.capacity())
          samples.push_back(
              std::chrono::duration<double, std::nano>(t1 - t0).count() /
              kPipelineDepth);
        if (t1 >= deadline) break;
      }
      ::close(fd);
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  const auto end = Clock::now();
  stop.store(true, std::memory_order_release);
  loop.join();
  server.shutdown();

  ScenarioResult r;
  r.name = name;
  r.ops = total_ops.load();
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.p50_ns = percentile_ns(samples, 0.50);
  r.p99_ns = percentile_ns(samples, 0.99);
  return r;
}


/// predict_batch through the real TCP front end, one request per round
/// trip (depth 1, cache off): the per-PREDICTION cost a client actually
/// pays — frame + shard read + queue + SoA evaluate + render + reply
/// write — is latency / batch size. This is the batching headline:
/// every term but the per-element evaluate/render amortizes across the
/// batch, so ops here are REQUESTS and per-prediction cost is
/// 1 / (ops_per_s * batch). The inproc predict_batch_inproc_* trio
/// isolates the handle_into marginal cost without the transport.
ScenarioResult bench_tcp_batch(const Config& cfg, const char* name,
                               const std::vector<std::string>& pool) {
  serve::ServerOptions opt;
  opt.cache_capacity = 0;  // every request takes the full miss path
  opt.threads = 2;
  serve::Server server(opt);
  server.start();
  serve::TcpOptions tcp;
  tcp.port = 0;
  tcp.shards = 1;
  tcp.poll_interval_ms = 5;
  serve::TcpListener listener(server, tcp);
  std::string error;
  if (!listener.open(&error)) {
    std::fprintf(stderr, "serve_throughput: %s: %s\n", name, error.c_str());
    std::exit(1);
  }
  std::atomic<bool> stop{false};
  std::thread loop([&] { listener.run(stop); });

  std::uint64_t ops = 0;
  std::vector<double> samples;
  samples.reserve(1 << 20);
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(cfg.seconds));
  auto end = start;
  const int fd = tcp_connect(listener.port());
  if (fd >= 0) {
    std::size_t at = 0;
    std::string line;
    char chunk[65536];
    for (;;) {
      line.assign(pool[at]);
      line += '\n';
      if (++at == pool.size()) at = 0;
      const auto t0 = Clock::now();
      if (!tcp_send_all(fd, line)) break;
      bool got = false;
      while (!got) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          break;
        }
        for (ssize_t b = 0; b < n; ++b)
          if (chunk[b] == '\n') got = true;
      }
      if (!got) break;
      const auto t1 = Clock::now();
      ++ops;
      if (samples.size() < samples.capacity())
        samples.push_back(
            std::chrono::duration<double, std::nano>(t1 - t0).count());
      if (t1 >= deadline) {
        end = t1;
        break;
      }
    }
    ::close(fd);
  }
  stop.store(true, std::memory_order_release);
  loop.join();
  server.shutdown();

  ScenarioResult r;
  r.name = name;
  r.ops = ops;
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.p50_ns = percentile_ns(samples, 0.50);
  r.p99_ns = percentile_ns(samples, 0.99);
  return r;
}

// ---- Report ----------------------------------------------------------------

serve::Json to_json(const ScenarioResult& r) {
  serve::Json row = serve::Json::object();
  row.set("ops", r.ops);
  row.set("seconds", r.seconds);
  row.set("ops_per_s", r.ops_per_s());
  row.set("p50_ns", r.p50_ns);
  row.set("p99_ns", r.p99_ns);
  row.set("allocs_per_op", r.allocs_per_op);
  return row;
}

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(stderr, "usage: %s [--seconds S] [--threads N] [--out FILE]\n",
               argv0);
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], 2);
      return argv[++i];
    };
    if (arg == "--seconds") cfg.seconds = std::atof(value());
    else if (arg == "--threads") cfg.threads = std::atoi(value());
    else if (arg == "--out") cfg.out = value();
    else if (arg == "--help" || arg == "-h") usage(argv[0], 0);
    else usage(argv[0], 2);
  }
  if (cfg.seconds <= 0.0 || cfg.threads < 0) usage(argv[0], 2);
  const int threads =
      cfg.threads > 0
          ? cfg.threads
          : static_cast<int>(
                std::max(2u, std::thread::hardware_concurrency()));

  const auto pool = make_predict_pool(64);
  std::fprintf(stderr,
               "serve_throughput: %.2f s/scenario, %d threads, "
               "%zu-key predict pool\n",
               cfg.seconds, threads, pool.size());

  std::vector<ScenarioResult> results;
  results.push_back(bench_cached_hit_1t(cfg, pool));
  results.push_back(bench_cached_hit_mt(cfg, pool, threads));
  results.push_back(bench_worker_pool_mt(cfg, pool, std::max(1, threads / 2)));
  results.push_back(bench_miss_predict_1t(cfg, pool));
  // The batching headline, measured where clients feel it: through the
  // TCP front end, one request per round trip, cache off. Everything a
  // request pays once — framing, shard read, queue hop, reply write —
  // amortizes across the batch; per-prediction cost = 1/(ops_per_s*N).
  results.push_back(
      bench_tcp_batch(cfg, "predict_batch_1", make_batch_pool(64, 1)));
  results.push_back(
      bench_tcp_batch(cfg, "predict_batch_64", make_batch_pool(64, 64)));
  results.push_back(
      bench_tcp_batch(cfg, "predict_batch_256", make_batch_pool(16, 256)));
  // The same trio without the transport: bare handle_into marginal
  // cost, isolating the SoA evaluate + render per element.
  results.push_back(bench_miss_batch_1t(cfg, "predict_batch_inproc_1",
                                        make_batch_pool(64, 1)));
  results.push_back(bench_miss_batch_1t(cfg, "predict_batch_inproc_64",
                                        make_batch_pool(64, 64)));
  results.push_back(bench_miss_batch_1t(cfg, "predict_batch_inproc_256",
                                        make_batch_pool(16, 256)));
  results.push_back(bench_json_parse_1t(cfg, pool));
  results.push_back(bench_json_parse_insitu_1t(cfg, pool));
  results.push_back(bench_queue_spsc(cfg, "queue_spsc", 1));
  results.push_back(bench_queue_spsc(cfg, "queue_spsc_batch", 64));
  // The heavy-starvation triple: baseline latency, latency under a fit
  // flood with lanes, and the same flood through a single shared lane.
  // heavy_starvation/predict_no_flood p99 is the isolation headline.
  results.push_back(bench_predict_latency("predict_no_flood", cfg, pool,
                                          threads, 64, false));
  results.push_back(bench_predict_latency("heavy_starvation", cfg, pool,
                                          threads, 64, true));
  results.push_back(bench_predict_latency("heavy_starvation_unified", cfg,
                                          pool, threads, 0, true));
  // The policy engine's endpoint: steady-state (cached) probe cost and
  // the full ladder-sweep miss cost.
  const auto policies = make_policy_pool(64);
  results.push_back(
      bench_policy_advise_1t(cfg, "policy_advise_hit", policies, true));
  results.push_back(
      bench_policy_advise_1t(cfg, "policy_advise_miss", policies, false));
  // Online-fit ingest: per-request cost alone, then with the background
  // resolver publishing re-solves underneath.
  const auto observes = make_observe_pool(64);
  results.push_back(bench_observe_ingest_1t(cfg, observes));
  results.push_back(bench_observe_under_refit_mt(cfg, observes, threads));
  // Front-end shard scaling: the same warmed predict pool through the
  // real TCP transport at 1, 2, and 4 event-loop shards.
  results.push_back(bench_tcp_cached_shards(cfg, "tcp_cached_shard1", pool, 1));
  results.push_back(bench_tcp_cached_shards(cfg, "tcp_cached_shard2", pool, 2));
  results.push_back(bench_tcp_cached_shards(cfg, "tcp_cached_shard4", pool, 4));

  for (const ScenarioResult& r : results)
    std::fprintf(stderr,
                 "  %-22s %12.0f ops/s   p50 %8.0f ns   p99 %8.0f ns   "
                 "%6.2f allocs/op\n",
                 r.name.c_str(), r.ops_per_s(), r.p50_ns, r.p99_ns,
                 r.allocs_per_op);

  serve::Json out = serve::Json::object();
  out.set("bench", "serve_throughput");
  out.set("threads", threads);
  out.set("seconds_per_scenario", cfg.seconds);
  serve::Json scenarios = serve::Json::object();
  for (const ScenarioResult& r : results) scenarios.set(r.name, to_json(r));
  out.set("scenarios", std::move(scenarios));
  const std::string doc = out.dump();
  std::printf("%s\n", doc.c_str());
  if (!cfg.out.empty()) {
    if (std::FILE* f = std::fopen(cfg.out.c_str(), "w")) {
      std::fprintf(f, "%s\n", doc.c_str());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "serve_throughput: cannot write %s\n",
                   cfg.out.c_str());
      return 1;
    }
  }
  return 0;
}
