// Ablation: which simulator nonideality breaks which fitted parameter?
//
// Sweeps the ground-truth machine's noise level, cap-region efficiency
// droop, and OS-interference bursts, refits the capped model each time,
// and reports per-parameter relative errors. This isolates the mechanisms
// behind the paper's worst-fit platforms (droop -> Arndale GPU,
// OS interference -> NUC GPU).

#include <cstdio>

#include "bench/common.hpp"
#include "fit/model_fit.hpp"
#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"
#include "report/table.hpp"
#include "sim/factory.hpp"

namespace {

using namespace archline;
namespace rp = report;

struct Ablation {
  std::string label;
  sim::NonidealityProfile profile;
};

double rel(double got, double want) { return got / want - 1.0; }

}  // namespace

int main() {
  bench::banner(
      "Ablation: simulator nonidealities vs fit quality",
      "Refit the capped model on GTX Titan ground truth under different "
      "nonideality profiles; errors are (refit/published - 1).");

  const platforms::PlatformSpec& spec = platforms::platform("GTX Titan");
  const core::MachineParams truth = spec.machine();

  std::vector<Ablation> ablations;
  {
    Ablation a;
    a.label = "ideal (no noise)";
    a.profile.noise.time_rel_sd = 0.0;
    a.profile.noise.power_rel_sd = 0.0;
    ablations.push_back(a);
  }
  for (const double sd : {0.005, 0.01, 0.02, 0.05}) {
    Ablation a;
    a.label = "noise sd " + rp::sig_format(sd, 2);
    a.profile.noise.time_rel_sd = sd;
    a.profile.noise.power_rel_sd = sd;
    ablations.push_back(a);
  }
  for (const double eta : {0.05, 0.15, 0.3}) {
    Ablation a;
    a.label = "cap droop eta " + rp::sig_format(eta, 2);
    a.profile.noise.time_rel_sd = 0.008;
    a.profile.noise.power_rel_sd = 0.008;
    a.profile.noise.cap_droop_eta = eta;
    ablations.push_back(a);
  }
  {
    Ablation a;
    a.label = "OS bursts (NUC GPU profile)";
    a.profile.noise.time_rel_sd = 0.02;
    a.profile.noise.power_rel_sd = 0.02;
    a.profile.noise.os_burst_rate_hz = 60.0;
    a.profile.noise.os_burst_watts = 2.5;
    a.profile.noise.os_burst_duration_s = 4e-3;
    ablations.push_back(a);
  }

  rp::Table t({"Ablation", "tau_flop", "eps_flop", "tau_mem", "eps_mem",
               "pi1", "delta_pi", "rss"});
  rp::CsvWriter csv({"ablation", "tau_flop_err", "eps_flop_err",
                     "tau_mem_err", "eps_mem_err", "pi1_err",
                     "delta_pi_err", "rss"});

  for (const Ablation& a : ablations) {
    const sim::SimMachine machine = sim::make_machine(spec, a.profile);
    stats::Rng rng(20140519);
    microbench::SuiteOptions opt;
    opt.repeats = 2;
    opt.target_seconds = 0.1;
    opt.include_double = false;
    opt.include_caches = false;
    opt.include_random = false;
    const microbench::SuiteData data =
        microbench::run_suite(machine, opt, rng);
    const fit::FitResult r = fit::fit_observations(data.dram_sp);
    const core::MachineParams& g = r.machine;
    t.add_row({a.label, rp::percent_format(rel(g.tau_flop, truth.tau_flop)),
               rp::percent_format(rel(g.eps_flop, truth.eps_flop)),
               rp::percent_format(rel(g.tau_mem, truth.tau_mem)),
               rp::percent_format(rel(g.eps_mem, truth.eps_mem)),
               rp::percent_format(rel(g.pi1, truth.pi1)),
               rp::percent_format(rel(g.delta_pi, truth.delta_pi)),
               rp::sig_format(r.rss, 3)});
    csv.add_row({a.label, rp::sig_format(rel(g.tau_flop, truth.tau_flop), 4),
                 rp::sig_format(rel(g.eps_flop, truth.eps_flop), 4),
                 rp::sig_format(rel(g.tau_mem, truth.tau_mem), 4),
                 rp::sig_format(rel(g.eps_mem, truth.eps_mem), 4),
                 rp::sig_format(rel(g.pi1, truth.pi1), 4),
                 rp::sig_format(rel(g.delta_pi, truth.delta_pi), 4),
                 rp::sig_format(r.rss, 4)});
  }
  std::printf("%s\n", t.to_text().c_str());
  bench::write_csv(csv, "ablation_nonideality.csv");
  return 0;
}
