// Extension study: the paper's proposed "different model of capping".
//
// §V-C attributes the Arndale GPU's mid-intensity misprediction to
// utilization-dependent efficiency. core::DroopModel implements that
// extension; this bench fits its single parameter eta per platform and
// compares time-prediction error distributions: paper's capped model vs
// the droop extension.

#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "core/droop_model.hpp"
#include "fit/droop_fit.hpp"
#include "microbench/parallel.hpp"
#include "sim/factory.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"
#include "report/table.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace archline;
  namespace rp = report;

  bench::banner(
      "Extension: utilization-dependent capping (paper §V-C future work)",
      "Fit eta per platform; compare worst-case |time error| of the "
      "capped model vs the droop extension.");

  microbench::SuiteOptions suite_opt;
  suite_opt.repeats = 3;
  suite_opt.target_seconds = 0.1;
  suite_opt.include_double = false;
  suite_opt.include_caches = false;
  suite_opt.include_random = false;
  const auto campaign = microbench::run_campaign(
      platforms::all_platforms(), suite_opt, 20140519);

  rp::Table t({"Platform", "fitted eta", "true eta", "max |err| capped",
               "max |err| droop"});
  rp::CsvWriter csv({"platform", "fitted_eta", "true_eta",
                     "max_abs_err_capped", "max_abs_err_droop"});

  for (std::size_t i = 0; i < campaign.size(); ++i) {
    const platforms::PlatformSpec& spec = platforms::all_platforms()[i];
    const microbench::SuiteData& data = campaign[i];
    const core::MachineParams m = spec.machine();
    const double eta = fit::fit_droop_eta(m, data.dram_sp);
    const double true_eta =
        sim::default_nonidealities(spec).noise.cap_droop_eta;

    const auto max_abs_err = [&](double e) {
      const core::DroopModel model{.machine = m, .eta = e};
      double worst = 0.0;
      for (const microbench::Observation& o : data.dram_sp)
        worst = std::max(worst, std::abs(model.time(o.kernel.workload()) /
                                             o.seconds -
                                         1.0));
      return worst;
    };
    const double err_capped = max_abs_err(0.0);
    const double err_droop = max_abs_err(eta);

    t.add_row({spec.name, rp::sig_format(eta, 3),
               rp::sig_format(true_eta, 3),
               rp::percent_format(err_capped),
               rp::percent_format(err_droop)});
    csv.add_row({spec.name, rp::sig_format(eta, 5),
                 rp::sig_format(true_eta, 5),
                 rp::sig_format(err_capped, 5),
                 rp::sig_format(err_droop, 5)});
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "Reading: eta ~ 0 everywhere except the Arndale GPU, whose fitted "
      "eta recovers the\nsimulated efficiency scaling and closes the "
      "paper's <15%% mid-intensity mismatch.\n\n");
  bench::write_csv(csv, "ext_droop_model.csv");
  return 0;
}
