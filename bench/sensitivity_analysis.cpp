// Extension study: which machine constant limits each platform?
//
// Makes the paper's §VI conclusion ("driving down pi1 would be the key
// factor") quantitative: elasticities of performance and energy
// efficiency to every model parameter, per platform, at three workload
// intensities.

#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "core/sensitivity.hpp"
#include "platforms/platform_db.hpp"
#include "report/si.hpp"
#include "report/table.hpp"

int main() {
  using namespace archline;
  namespace rp = report;

  bench::banner(
      "Extension: parameter sensitivity",
      "d log(metric) / d log(parameter): % metric change per % parameter "
      "change. |largest| = what limits the platform at that intensity.");

  rp::CsvWriter csv({"platform", "metric", "intensity", "tau_flop",
                     "eps_flop", "tau_mem", "eps_mem", "pi1", "delta_pi",
                     "dominant"});

  for (const core::Metric metric :
       {core::Metric::Performance, core::Metric::EnergyEfficiency}) {
    const char* metric_name =
        metric == core::Metric::Performance ? "flop/s" : "flop/J";
    std::printf("== sensitivity of %s ==\n", metric_name);
    rp::Table t({"Platform", "I", "tau_flop", "eps_flop", "tau_mem",
                 "eps_mem", "pi1", "delta_pi", "dominant"});
    for (const platforms::PlatformSpec& spec : platforms::all_platforms()) {
      const core::MachineParams m = spec.machine();
      for (const double intensity : {0.25, 4.0, 128.0}) {
        const core::SensitivityProfile s =
            core::sensitivity_profile(m, metric, intensity);
        std::vector<std::string> cells = {spec.name,
                                          rp::intensity_label(intensity)};
        std::vector<std::string> csv_cells = {spec.name, metric_name,
                                              rp::sig_format(intensity, 4)};
        for (const core::Param p : core::kAllParams) {
          cells.push_back(rp::sig_format(s[p], 2));
          csv_cells.push_back(rp::sig_format(s[p], 4));
        }
        cells.push_back(core::to_string(s.dominant()));
        csv_cells.push_back(core::to_string(s.dominant()));
        t.add_row(cells);
        csv.add_row(csv_cells);
      }
    }
    std::printf("%s\n", t.to_text().c_str());
  }

  // The §VI claim: on high-constant-power platforms, pi1 dominates the
  // energy-efficiency sensitivity across the board.
  int pi1_dominant = 0;
  int over_half = 0;
  for (const platforms::PlatformSpec& spec : platforms::all_platforms()) {
    const core::MachineParams m = spec.machine();
    const bool high_pi1 = m.pi1 / (m.pi1 + m.delta_pi) > 0.5;
    const core::SensitivityProfile s = core::sensitivity_profile(
        m, core::Metric::EnergyEfficiency, 4.0);
    if (high_pi1) {
      ++over_half;
      // pi1 ties exactly with the binding tau (they enter as a product),
      // so "dominant" means within numerical noise of the maximum.
      if (std::abs(s[core::Param::Pi1]) >=
          std::abs(s[s.dominant()]) - 1e-9)
        ++pi1_dominant;
    }
  }
  std::printf("platforms with pi1 > 50%% of max power: %d; of those, pi1 "
              "is a dominant\nenergy-efficiency lever (tied or sole max) "
              "on %d — the paper's \"driving down pi1\"\nconclusion, "
              "quantified.\n\n",
              over_half, pi1_dominant);

  bench::write_csv(csv, "sensitivity_analysis.csv");
  return 0;
}
