// Regenerates Fig. 5: normalized power vs intensity for all twelve
// platforms, with the per-panel annotations (peak Gflop/J and GB/J,
// sustained fractions, constant power + cap) and the §V-C cross-platform
// statistics.

#include <cstdio>

#include "bench/common.hpp"
#include "experiments/exp_fig5.hpp"
#include "report/ascii_plot.hpp"
#include "report/si.hpp"
#include "report/svg_plot.hpp"
#include "report/table.hpp"

int main() {
  using namespace archline;
  namespace ex = experiments;
  namespace rp = report;

  bench::banner(
      "Figure 5",
      "Normalized power vs intensity per platform (model line M/C/F "
      "regimes + simulated measurement dots), in decreasing order of peak "
      "energy efficiency.");

  const ex::Fig5Result r = ex::run_fig5();

  rp::CsvWriter csv({"platform", "intensity", "model_power_norm",
                     "measured_power_norm", "regime"});

  for (const ex::Fig5Panel& p : r.panels) {
    std::printf("-- %s: %s, %s | %s sust [%s], %s sust [%s] | "
                "%s (const) + %s (cap), peak measured %s of cap\n",
                p.platform.c_str(),
                rp::si_format(p.summary.peak_flops_per_joule, "flop/J", 2)
                    .c_str(),
                rp::si_format(p.summary.peak_bytes_per_joule, "B/J", 2)
                    .c_str(),
                rp::si_format(p.summary.sustained_flops, "flop/s", 3)
                    .c_str(),
                rp::percent_format(p.sustained_flop_fraction).c_str(),
                rp::si_format(p.summary.sustained_bandwidth, "B/s", 3)
                    .c_str(),
                rp::percent_format(p.sustained_bw_fraction).c_str(),
                rp::si_format(p.summary.pi1, "W", 3).c_str(),
                rp::si_format(p.summary.delta_pi, "W", 3).c_str(),
                rp::percent_format(p.measured_peak_power_fraction).c_str());

    rp::AsciiPlot plot("   power / (pi1 + dpi)", 64, 10);
    rp::Series model{.name = "model", .glyph = '-', .x = {}, .y = {}};
    rp::Series meas{.name = "measured", .glyph = 'o', .x = {}, .y = {}};
    for (std::size_t i = 0; i < p.intensity.size(); ++i) {
      model.x.push_back(p.intensity[i]);
      model.y.push_back(p.model_power_norm[i]);
      if (i < p.measured_power_norm.size()) {
        meas.x.push_back(p.intensity[i]);
        meas.y.push_back(p.measured_power_norm[i]);
      }
      csv.add_row({p.platform, rp::sig_format(p.intensity[i], 5),
                   rp::sig_format(p.model_power_norm[i], 5),
                   i < p.measured_power_norm.size()
                       ? rp::sig_format(p.measured_power_norm[i], 5)
                       : "",
                   std::string(1, core::regime_letter(p.regime[i]))});
    }
    rp::SvgPlot svg("Fig. 5: " + p.platform + " (power, normalized)");
    svg.set_y_label("P / (pi1 + dpi)");
    rp::Series svg_model = model;
    rp::Series svg_meas = meas;
    svg.add_line(std::move(svg_model));
    svg.add_scatter(std::move(svg_meas));
    std::string slug = p.platform;
    for (char& c : slug)
      if (c == ' ') c = '_';
    svg.write_file(archline::bench::output_dir() / "fig5" /
                   ("fig5_" + slug + ".svg"));

    plot.add_series(std::move(model));
    plot.add_series(std::move(meas));
    std::printf("%s\n", plot.render().c_str());
  }

  std::printf("pi1 fraction > 50%% on %d / 12 platforms (paper: 7)\n",
              r.over_half_constant);
  std::printf("corr(pi1 fraction, peak flop/J) = %s (paper: ~ -0.6)\n\n",
              rp::sig_format(r.pi1_fraction_correlation, 2).c_str());

  bench::write_csv(csv, "fig5_power_profiles.csv");
  return 0;
}
